# Developer entry points for the study toolkit.
#
# `make bench` gates the perf benchmarks behind the tier-1 suite: if
# tier-1 fails, the benchmarks never run, so a broken tree can never
# overwrite BENCH_study.json with numbers measured against bad code.
# `make test` is itself gated on `trace-smoke` — a small traced study
# whose JSONL events are validated line-by-line against the event
# schema and whose manifest must round-trip through json.loads — and on
# `pipeline-smoke`, which proves a warm artifact-store rerun replays the
# cold run byte-for-byte.  Both contracts hold before the suite starts.

PYTHON ?= python
JOBS ?= 1
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test trace-smoke pipeline-smoke sqlite-smoke serve-smoke scale-smoke bench bench-mine bench-parallel bench-scale bench-check study clean

test: trace-smoke pipeline-smoke sqlite-smoke serve-smoke
	$(PYTHON) -m pytest -x -q

# small traced study + event-schema validation + manifest round-trip
trace-smoke:
	$(PYTHON) -m repro.obs.smoke

# live-telemetry endpoint gate: a --serve 0 study probed over HTTP
# (/healthz, /metrics against the Prometheus grammar, /status, /runs,
# first-N SSE envelopes + ring replay) and proven byte-identical to an
# unserved run, with a clean port release on shutdown
serve-smoke:
	$(PYTHON) -m repro.obs.serve_smoke

# cold -> warm artifact-store replay: byte-identical reports (serial and
# jobs=4), every clean stage served from the store, invalidation cones,
# and the incremental scenario — mutating one project against the warm
# store recomputes exactly its map shards plus the reduce tail
pipeline-smoke:
	$(PYTHON) -m repro.pipeline.smoke

# workload gate: a --dialect sqlite micro-study runs the full DAG cold
# and replays byte-identical warm (serial and jobs=4), keys disjoint
# from the canonical study in the same store, with explain attributing
# the workload switch to params.dialect
sqlite-smoke:
	$(PYTHON) -m repro.pipeline.sqlite_smoke

# bounded-memory gate: a 2000-project study under --limit-memory 512
# (driver peak RSS asserted from the manifest-visible timings, the
# backpressure window proven bounded, the aggregate spill proven used)
# plus a byte-identical warm rerun; dial with
# REPRO_SCALE_SMOKE_PROJECTS / REPRO_SCALE_SMOKE_LIMIT_MB
scale-smoke:
	$(PYTHON) -m repro.pipeline.scale_smoke

# perf benchmarks (pytest-benchmark harness + BENCH_study.json writer);
# the `test` prerequisite is the overwrite guard.
bench: test
	$(PYTHON) -m pytest benchmarks/test_perf_pipeline.py benchmarks/test_perf_study.py -q -p no:cacheprovider

# mine-only microbenchmark (cold + warm serial mine over the canonical
# corpus, BENCH_mine.json writer); compare against the committed
# pre-incremental-engine record with
#   make bench-check BASELINE=BENCH_mine_baseline.json CANDIDATE=BENCH_mine.json STAGE=mine
bench-mine: test
	$(PYTHON) -m pytest benchmarks/test_perf_mine.py -q -p no:cacheprovider

# same, but through the parallel study driver
bench-parallel: test
	REPRO_STUDY_JOBS=4 $(PYTHON) -m pytest benchmarks/test_perf_pipeline.py benchmarks/test_perf_study.py -q -p no:cacheprovider

# bounded-memory scaling benchmark (capped cold studies over growing
# corpora, BENCH_scale.json writer); compare records with
#   make bench-check BASELINE=BENCH_scale.json CANDIDATE=<fresh record>
bench-scale: test
	$(PYTHON) -m pytest benchmarks/test_perf_scale.py -q -p no:cacheprovider

# perf-regression watchdog: self-comparison of the committed benchmark
# record must always pass (override CANDIDATE with a fresh manifest or
# BENCH payload to compare a real change)
BASELINE ?= BENCH_study.json
CANDIDATE ?= BENCH_study.json
STAGE ?=
bench-check:
	$(PYTHON) -m repro bench-check $(BASELINE) $(CANDIDATE) $(if $(STAGE),--stage $(STAGE))

study:
	$(PYTHON) -m repro study --jobs $(JOBS) --profile

clean:
	rm -rf benchmarks/output .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
