"""Machine-readable JSON export of a full study.

Everything the figures show, as one JSON document — for notebooks,
dashboards or regression diffing between runs.  The schema is stable:
``format`` names the version, and every figure is keyed by its paper
number.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..analysis import StudyResult, taxon_summaries

FORMAT = "repro-study-v1"


def study_as_dict(study: StudyResult) -> dict:
    """The study's figures and headline as plain JSON-serialisable data."""
    fig4 = study.fig4()
    fig6 = study.fig6()
    fig7 = study.fig7()
    fig8 = study.fig8()
    try:
        statistics = study.statistics()
    except ValueError:
        # corpora too small for the §7 battery export without it
        statistics = None
    return {
        "format": FORMAT,
        "projects": len(study),
        "skipped": list(study.skipped),
        "headline": study.headline(),
        "fig4": {
            "theta": fig4.theta,
            "buckets": [bucket.pct_label() for bucket in fig4.buckets],
            "counts": list(fig4.counts),
        },
        "fig5": [
            {
                "duration_months": point.duration_months,
                "sync": point.synchronicity,
                "taxon": point.taxon.value,
            }
            for point in study.fig5()
        ],
        "fig6": {
            "rows": [
                {
                    "range": row.label,
                    "source": row.source_count,
                    "source_cum_pct": row.source_cum_pct,
                    "time": row.time_count,
                    "time_cum_pct": row.time_cum_pct,
                }
                for row in fig6.rows
            ],
            "blank_source": fig6.blank_source,
            "blank_time": fig6.blank_time,
        },
        "fig7": [
            {
                "taxon": row.taxon.value,
                "n": row.total,
                "over_time": row.over_time,
                "over_source": row.over_source,
                "over_both": row.over_both,
            }
            for row in fig7.rows
        ],
        "fig8": {
            "range_labels": list(fig8.range_labels),
            "counts": {
                f"{alpha:g}": list(cells)
                for alpha, cells in fig8.counts.items()
            },
        },
        "statistics": None if statistics is None else {
            "normality": {
                name: result.p_value
                for name, result in statistics.normality.items()
            },
            "kruskal_sync_p": statistics.sync_effect.test.p_value,
            "kruskal_attainment_p": (
                statistics.attainment_effect.test.p_value
            ),
            "tau_sync": statistics.tau_sync.statistic,
            "tau_advance": statistics.tau_advance.statistic,
            "lag_tests": {
                name: {
                    "chi2_p": lag.chi2.p_value,
                    "fisher_p": lag.fisher.p_value,
                }
                for name, lag in statistics.lag_tests.items()
            },
        },
        "taxa": [
            {
                "taxon": row.taxon.value,
                "n": row.count,
                "median_sync10": row.median_sync10,
                "median_attainment75": row.median_attainment75,
                "always_both_rate": row.always_both_rate,
            }
            for row in taxon_summaries(study.projects)
        ],
    }


def export_study_json(study: StudyResult, path: str | Path) -> Path:
    """Write :func:`study_as_dict` to ``path`` (pretty-printed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(study_as_dict(study), indent=2))
    return path


def read_study_json(path: str | Path) -> dict:
    """Load and validate a study JSON document."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != FORMAT:
        raise ValueError(f"unknown study format: {data.get('format')}")
    return data
