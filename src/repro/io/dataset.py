"""On-disk dataset format for corpora.

A saved corpus mirrors what the Schema_Evo_2019 release contains: per
project, the git-log text of the repository and the sequence of DDL file
versions, plus a small metadata record.  Layout::

    <root>/
      manifest.json                 # corpus-level metadata
      <project-slug>/
        meta.json                   # name, taxon, vendor, ddl path
        gitlog.txt                  # `git log --name-status` text
        versions/
          0000.sql, 0001.sql, ...   # DDL file versions, chronological

Saving and loading round-trips exactly: the loader re-parses gitlog.txt
with the same parser used for real clones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..corpus import GeneratedProject
from ..taxa import Taxon
from ..vcs import FileVersion, Repository, parse_repository

MANIFEST_NAME = "manifest.json"


@dataclass
class LoadedProject:
    """A corpus project read back from disk."""

    name: str
    repository: Repository
    true_taxon: Taxon | None
    vendor: str
    ddl_path: str


def _slug(name: str) -> str:
    return name.replace("/", "__")


def save_corpus(projects: list[GeneratedProject], root: str | Path) -> Path:
    """Write a corpus to ``root``; returns the root path."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    manifest = {"format": "repro-corpus-v1", "projects": []}
    for project in projects:
        slug = _slug(project.name)
        directory = root / slug
        versions_dir = directory / "versions"
        versions_dir.mkdir(parents=True, exist_ok=True)
        (directory / "gitlog.txt").write_text(project.git_log_text)
        for i, text in enumerate(project.ddl_versions):
            (versions_dir / f"{i:04d}.sql").write_text(text)
        meta = {
            "name": project.name,
            "taxon": project.true_taxon.value,
            "vendor": project.spec.vendor,
            "ddl_path": project.spec.ddl_path,
            "duration_months": project.spec.duration_months,
        }
        (directory / "meta.json").write_text(json.dumps(meta, indent=2))
        manifest["projects"].append(slug)
    (root / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return root


def load_corpus(root: str | Path) -> list[LoadedProject]:
    """Read a corpus saved by :func:`save_corpus`."""
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {MANIFEST_NAME} under {root}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != "repro-corpus-v1":
        raise ValueError(f"unknown corpus format: {manifest.get('format')}")

    projects: list[LoadedProject] = []
    for slug in manifest["projects"]:
        directory = root / slug
        meta = json.loads((directory / "meta.json").read_text())
        repo = parse_repository(
            meta["name"], (directory / "gitlog.txt").read_text()
        )
        ddl_path = meta["ddl_path"]
        ddl_commits = [
            c for c in repo.commits if c.touches(ddl_path)
        ]
        version_files = sorted((directory / "versions").glob("*.sql"))
        if len(ddl_commits) != len(version_files):
            raise ValueError(
                f"{meta['name']}: {len(version_files)} stored versions but "
                f"{len(ddl_commits)} commits touch {ddl_path!r}"
            )
        for commit, version_file in zip(ddl_commits, version_files):
            repo.record_version(
                ddl_path,
                FileVersion(
                    sha=commit.sha,
                    date=commit.date,
                    content=version_file.read_text(),
                ),
            )
        taxon = Taxon(meta["taxon"]) if meta.get("taxon") else None
        projects.append(
            LoadedProject(
                name=meta["name"],
                repository=repo,
                true_taxon=taxon,
                vendor=meta.get("vendor", "generic"),
                ddl_path=ddl_path,
            )
        )
    return projects
