"""CSV export of study measures (the dataset's aggregate tables)."""

from __future__ import annotations

import csv
from pathlib import Path

from ..analysis import StudyResult

MEASURE_COLUMNS = (
    "name",
    "taxon",
    "true_taxon",
    "duration_months",
    "schema_total_activity",
    "project_total_updates",
    "schema_commits",
    "active_schema_commits",
    "sync_5",
    "sync_10",
    "advance_over_source",
    "advance_over_time",
    "always_over_time",
    "always_over_source",
    "always_over_both",
    "attainment_50",
    "attainment_75",
    "attainment_80",
    "attainment_100",
)


def export_measures_csv(study: StudyResult, path: str | Path) -> Path:
    """Write one CSV row of measures per project."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(MEASURE_COLUMNS)
        for p in study.projects:
            c = p.coevolution
            writer.writerow(
                [
                    p.name,
                    p.taxon.value,
                    p.true_taxon.value if p.true_taxon else "",
                    p.duration_months,
                    p.schema_total_activity,
                    p.project_total_updates,
                    p.schema_commits,
                    p.active_schema_commits,
                    f"{p.sync5:.6f}",
                    f"{p.sync10:.6f}",
                    "" if c.advance_over_source is None
                    else f"{c.advance_over_source:.6f}",
                    "" if c.advance_over_time is None
                    else f"{c.advance_over_time:.6f}",
                    int(c.always_over_time),
                    int(c.always_over_source),
                    int(c.always_over_both),
                    f"{c.attainment[0.50]:.6f}",
                    f"{c.attainment[0.75]:.6f}",
                    f"{c.attainment[0.80]:.6f}",
                    f"{c.attainment[1.00]:.6f}",
                ]
            )
    return path


def read_measures_csv(path: str | Path) -> list[dict[str, str]]:
    """Read an exported measures CSV back as dict rows."""
    with Path(path).open(newline="") as handle:
        return list(csv.DictReader(handle))
