"""Schema_Evo-style dataset export: per-project heartbeat CSVs.

The published Schema_Evolution_Datasets release accompanies the paper
with, per project, the time series of activity plus aggregate measures.
This writer reproduces that shape from a study result::

    <root>/
      projects.csv                  # one row of measures per project
      heartbeats/
        <slug>.csv                  # month, schema/project activity,
                                    # cumulative fractions, time progress

The heartbeat files contain everything needed to recompute the paper's
measures without re-running the mining pipeline.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..analysis import StudyResult
from ..coevolution import JointProgress
from .export import export_measures_csv

HEARTBEAT_COLUMNS = (
    "month",
    "schema_cum_fraction",
    "project_cum_fraction",
    "time_progress",
)


def _slug(name: str) -> str:
    return name.replace("/", "__")


def write_schema_evo_dataset(
    study: StudyResult, root: str | Path
) -> Path:
    """Write the per-project dataset under ``root``."""
    root = Path(root)
    heartbeat_dir = root / "heartbeats"
    heartbeat_dir.mkdir(parents=True, exist_ok=True)
    export_measures_csv(study, root / "projects.csv")
    for project in study.projects:
        path = heartbeat_dir / f"{_slug(project.name)}.csv"
        _write_heartbeat_csv(project.joint, path)
    return root


def _write_heartbeat_csv(joint: JointProgress, path: Path) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(HEARTBEAT_COLUMNS)
        for month, schema, source, time in zip(
            joint.months, joint.schema, joint.project, joint.time
        ):
            writer.writerow(
                [str(month), f"{schema:.6f}", f"{source:.6f}",
                 f"{time:.6f}"]
            )


def read_heartbeat_csv(path: str | Path) -> JointProgress:
    """Rebuild a :class:`JointProgress` from one heartbeat CSV."""
    from ..heartbeat import Month

    with Path(path).open(newline="") as handle:
        rows = list(csv.DictReader(handle))
    if not rows:
        raise ValueError(f"empty heartbeat file: {path}")
    year, month = rows[0]["month"].split("-")
    return JointProgress(
        start=Month(int(year), int(month)),
        schema=tuple(float(r["schema_cum_fraction"]) for r in rows),
        project=tuple(float(r["project_cum_fraction"]) for r in rows),
        time=tuple(float(r["time_progress"]) for r in rows),
    )
