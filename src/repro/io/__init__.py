"""Dataset serialisation: corpus save/load and CSV export."""

from .dataset import MANIFEST_NAME, LoadedProject, load_corpus, save_corpus
from .export import MEASURE_COLUMNS, export_measures_csv, read_measures_csv
from .studyjson import export_study_json, read_study_json, study_as_dict
from .schema_evo import (
    HEARTBEAT_COLUMNS,
    read_heartbeat_csv,
    write_schema_evo_dataset,
)

__all__ = [
    "MANIFEST_NAME",
    "HEARTBEAT_COLUMNS",
    "MEASURE_COLUMNS",
    "read_heartbeat_csv",
    "export_study_json",
    "read_study_json",
    "study_as_dict",
    "write_schema_evo_dataset",
    "LoadedProject",
    "export_measures_csv",
    "load_corpus",
    "read_measures_csv",
    "save_corpus",
]
