"""Inference of an SMO sequence from a schema transition.

The reverse-engineering direction of the SMO algebras the paper cites
(§2.1): given two schema versions, derive a sequence of operators that
transforms the first into the second.  The law ``apply(infer(a, b), a) ≡ b``
(up to the diff engine's notion of identity) is property-tested.

Renames cannot be recovered without an oracle — the diff observes them
as drop+add — so the inferred sequence realises exactly what the diff
sees, mirroring the measurement semantics of the study.
"""

from __future__ import annotations

from ..schema import Schema, Table
from .ops import (
    SMO,
    AddAttribute,
    ChangeType,
    CreateTable,
    DropAttribute,
    DropTable,
    SetPrimaryKey,
)


def infer_smos(old: Schema, new: Schema) -> list[SMO]:
    """A sequence of SMOs transforming ``old`` into ``new``.

    Operator order: table drops first, then per-table attribute
    additions (before drops, so a fully-replaced table never passes
    through an empty state), drops, type changes and primary-key
    updates, then table creations — an order that is always applicable.
    """
    smos: list[SMO] = []
    old_keys = {table.key: table for table in old.tables}
    new_keys = {table.key: table for table in new.tables}

    for table in old.tables:
        if table.key not in new_keys:
            smos.append(DropTable(table.name))

    for key, old_table in old_keys.items():
        new_table = new_keys.get(key)
        if new_table is not None:
            smos.extend(_infer_table_smos(old_table, new_table))

    for table in new.tables:
        if table.key not in old_keys:
            smos.append(CreateTable(table.copy()))
    return smos


def _infer_table_smos(old: Table, new: Table) -> list[SMO]:
    smos: list[SMO] = []
    old_attrs = {attr.key: attr for attr in old.attributes}
    new_attrs = {attr.key: attr for attr in new.attributes}

    for attr in new.attributes:
        if attr.key not in old_attrs:
            smos.append(AddAttribute(old.name, attr))
    for attr in old.attributes:
        if attr.key not in new_attrs:
            smos.append(DropAttribute(old.name, attr.name))
    for key, old_attr in old_attrs.items():
        new_attr = new_attrs.get(key)
        if new_attr is not None and old_attr.data_type != new_attr.data_type:
            smos.append(
                ChangeType(old.name, new_attr.name, new_attr.data_type)
            )
    if old.pk_keys() != new.pk_keys():
        smos.append(SetPrimaryKey(old.name, tuple(new.primary_key)))
    return smos


def infer_from_ddl(old_text: str, new_text: str) -> list[SMO]:
    """Infer the SMO sequence between two DDL scripts."""
    from ..sqlparser import parse_schema

    old = parse_schema(old_text).schema
    new = parse_schema(new_text).schema
    return infer_smos(old, new)
