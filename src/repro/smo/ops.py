"""Schema Modification Operators (SMOs).

An SMO algebra in the spirit of PRISM/CODEX-style work referenced by the
paper (§2.1): each operator is a typed, applicable, invertible and
SQL-emittable description of one schema change.  The corpus generator
drives schema histories by sampling SMO sequences; the migration extension
rewrites queries under an SMO; tests verify the algebraic laws
(apply∘inverse = identity, DDL emission round-trips through the parser).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace

from ..schema import (
    Attribute,
    DataType,
    Schema,
    SchemaError,
    Table,
    normalize_type,
    quote_identifier,
)


class SMOError(SchemaError):
    """Raised when an SMO cannot be applied to a schema."""


class SMO(ABC):
    """One schema modification operator."""

    @abstractmethod
    def apply(self, schema: Schema) -> None:
        """Apply this operator to ``schema`` in place."""

    @abstractmethod
    def inverse(self, schema_before: Schema) -> "SMO":
        """The operator that undoes this one, given the pre-state."""

    @abstractmethod
    def render_sql(self, dialect: str = "generic") -> str:
        """Emit the DDL statement realising this operator."""

    def applied_to(self, schema: Schema) -> Schema:
        """Functional form: return a modified copy."""
        out = schema.copy()
        self.apply(out)
        return out


@dataclass
class CreateTable(SMO):
    table: Table

    def apply(self, schema: Schema) -> None:
        if self.table.key in {t.key for t in schema.tables}:
            raise SMOError(f"CreateTable: {self.table.name!r} exists")
        schema.add_table(self.table.copy())

    def inverse(self, schema_before: Schema) -> "SMO":
        return DropTable(self.table.name)

    def render_sql(self, dialect: str = "generic") -> str:
        return self.table.render_sql()


@dataclass
class DropTable(SMO):
    name: str

    def apply(self, schema: Schema) -> None:
        if self.name not in schema:
            raise SMOError(f"DropTable: no table {self.name!r}")
        schema.drop_table(self.name)

    def inverse(self, schema_before: Schema) -> "SMO":
        return CreateTable(schema_before.table(self.name).copy())

    def render_sql(self, dialect: str = "generic") -> str:
        return f"DROP TABLE {quote_identifier(self.name)};"


@dataclass
class RenameTable(SMO):
    old_name: str
    new_name: str

    def apply(self, schema: Schema) -> None:
        table = schema.get(self.old_name)
        if table is None:
            raise SMOError(f"RenameTable: no table {self.old_name!r}")
        if self.new_name in schema and (
            self.new_name.lower() != self.old_name.lower()
        ):
            raise SMOError(f"RenameTable: {self.new_name!r} exists")
        schema.drop_table(self.old_name)
        table.name = self.new_name
        schema.add_table(table)

    def inverse(self, schema_before: Schema) -> "SMO":
        return RenameTable(self.new_name, self.old_name)

    def render_sql(self, dialect: str = "generic") -> str:
        return (
            f"ALTER TABLE {quote_identifier(self.old_name)} "
            f"RENAME TO {quote_identifier(self.new_name)};"
        )


@dataclass
class AddAttribute(SMO):
    table: str
    attribute: Attribute

    def apply(self, schema: Schema) -> None:
        table = schema.get(self.table)
        if table is None:
            raise SMOError(f"AddAttribute: no table {self.table!r}")
        if self.attribute.name in table:
            raise SMOError(
                f"AddAttribute: {self.table}.{self.attribute.name} exists"
            )
        table.add_attribute(self.attribute)

    def inverse(self, schema_before: Schema) -> "SMO":
        return DropAttribute(self.table, self.attribute.name)

    def render_sql(self, dialect: str = "generic") -> str:
        column = self.attribute.render_sql().strip()
        return (
            f"ALTER TABLE {quote_identifier(self.table)} ADD COLUMN {column};"
        )


@dataclass
class DropAttribute(SMO):
    table: str
    attribute: str

    def apply(self, schema: Schema) -> None:
        table = schema.get(self.table)
        if table is None:
            raise SMOError(f"DropAttribute: no table {self.table!r}")
        if self.attribute not in table:
            raise SMOError(
                f"DropAttribute: no column {self.table}.{self.attribute}"
            )
        if len(table) == 1:
            raise SMOError(
                f"DropAttribute: {self.table!r} would be left empty"
            )
        table.drop_attribute(self.attribute)

    def inverse(self, schema_before: Schema) -> "SMO":
        attr = schema_before.table(self.table).attribute(self.attribute)
        return AddAttribute(self.table, attr)

    def render_sql(self, dialect: str = "generic") -> str:
        return (
            f"ALTER TABLE {quote_identifier(self.table)} "
            f"DROP COLUMN {quote_identifier(self.attribute)};"
        )


@dataclass
class RenameAttribute(SMO):
    table: str
    old_name: str
    new_name: str

    def apply(self, schema: Schema) -> None:
        table = schema.get(self.table)
        if table is None:
            raise SMOError(f"RenameAttribute: no table {self.table!r}")
        old = table.get(self.old_name)
        if old is None:
            raise SMOError(
                f"RenameAttribute: no column {self.table}.{self.old_name}"
            )
        if self.new_name in table and (
            self.new_name.lower() != self.old_name.lower()
        ):
            raise SMOError(
                f"RenameAttribute: {self.table}.{self.new_name} exists"
            )
        table.replace_attribute(self.old_name, replace(old, name=self.new_name))
        table.primary_key = tuple(
            self.new_name if c.lower() == self.old_name.lower() else c
            for c in table.primary_key
        )

    def inverse(self, schema_before: Schema) -> "SMO":
        return RenameAttribute(self.table, self.new_name, self.old_name)

    def render_sql(self, dialect: str = "generic") -> str:
        if dialect == "mysql":
            # MySQL (pre-8.0) requires CHANGE with the full definition;
            # we emit the 8.0+ RENAME COLUMN form for clarity.
            pass
        return (
            f"ALTER TABLE {quote_identifier(self.table)} RENAME COLUMN "
            f"{quote_identifier(self.old_name)} TO "
            f"{quote_identifier(self.new_name)};"
        )


@dataclass
class ChangeType(SMO):
    table: str
    attribute: str
    new_type: DataType

    def __post_init__(self) -> None:
        if isinstance(self.new_type, str):
            self.new_type = normalize_type(self.new_type)

    def apply(self, schema: Schema) -> None:
        table = schema.get(self.table)
        if table is None:
            raise SMOError(f"ChangeType: no table {self.table!r}")
        old = table.get(self.attribute)
        if old is None:
            raise SMOError(
                f"ChangeType: no column {self.table}.{self.attribute}"
            )
        table.replace_attribute(self.attribute, old.with_type(self.new_type))

    def inverse(self, schema_before: Schema) -> "SMO":
        old = schema_before.table(self.table).attribute(self.attribute)
        return ChangeType(self.table, self.attribute, old.data_type)

    def render_sql(self, dialect: str = "generic") -> str:
        if dialect == "mysql":
            return (
                f"ALTER TABLE {quote_identifier(self.table)} MODIFY COLUMN "
                f"{quote_identifier(self.attribute)} "
                f"{self.new_type.render_sql()};"
            )
        return (
            f"ALTER TABLE {quote_identifier(self.table)} ALTER COLUMN "
            f"{quote_identifier(self.attribute)} TYPE "
            f"{self.new_type.render_sql()};"
        )


@dataclass
class SetPrimaryKey(SMO):
    table: str
    columns: tuple[str, ...]

    def apply(self, schema: Schema) -> None:
        table = schema.get(self.table)
        if table is None:
            raise SMOError(f"SetPrimaryKey: no table {self.table!r}")
        for column in self.columns:
            if column not in table:
                raise SMOError(
                    f"SetPrimaryKey: no column {self.table}.{column}"
                )
        table.primary_key = tuple(self.columns)

    def inverse(self, schema_before: Schema) -> "SMO":
        return SetPrimaryKey(
            self.table, tuple(schema_before.table(self.table).primary_key)
        )

    def render_sql(self, dialect: str = "generic") -> str:
        table = quote_identifier(self.table)
        if not self.columns:
            return f"ALTER TABLE {table} DROP PRIMARY KEY;"
        cols = ", ".join(quote_identifier(c) for c in self.columns)
        return (
            f"ALTER TABLE {table} DROP PRIMARY KEY, "
            f"ADD PRIMARY KEY ({cols});"
            if dialect == "mysql"
            else f"ALTER TABLE {table} ADD PRIMARY KEY ({cols});"
        )


def apply_all(schema: Schema, smos: list[SMO]) -> Schema:
    """Apply a sequence of SMOs functionally, returning the final schema."""
    out = schema.copy()
    for smo in smos:
        smo.apply(out)
    return out


def inverse_sequence(schema_before: Schema, smos: list[SMO]) -> list[SMO]:
    """The reversed sequence of inverses, which undoes ``smos``."""
    inverses: list[SMO] = []
    state = schema_before.copy()
    for smo in smos:
        inverses.append(smo.inverse(state))
        smo.apply(state)
    inverses.reverse()
    return inverses
