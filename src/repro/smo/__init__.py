"""Schema Modification Operator algebra."""

from .infer import infer_from_ddl, infer_smos
from .ops import (
    SMO,
    AddAttribute,
    ChangeType,
    CreateTable,
    DropAttribute,
    DropTable,
    RenameAttribute,
    RenameTable,
    SetPrimaryKey,
    SMOError,
    apply_all,
    inverse_sequence,
)

__all__ = [
    "SMO",
    "SMOError",
    "AddAttribute",
    "ChangeType",
    "CreateTable",
    "DropAttribute",
    "DropTable",
    "RenameAttribute",
    "RenameTable",
    "SetPrimaryKey",
    "apply_all",
    "infer_from_ddl",
    "infer_smos",
    "inverse_sequence",
]
