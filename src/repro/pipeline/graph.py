"""The stage-graph runner: plan shards, fingerprint, resolve, replay.

A :class:`Pipeline` binds the stage graph (:mod:`repro.pipeline.stages`)
to one parameter set (seed, scale, jobs, report format) and one artifact
store.  The map stages (``generate``/``mine``/``analyze``) resolve **per
project shard** — one content-addressed artifact per project, planned by
:mod:`repro.pipeline.shards` from the cheap
:func:`~repro.corpus.generator.corpus_specs` sample — and the reduce
stages (``aggregate``/``figures``/``statistics``/``report``) resolve as
whole-corpus artifacts whose fingerprints chain over the sorted shard
digests.

Resolution is lazy and hit-first: resolving a stage checks the store
under the stage's fingerprint *before* touching its dependencies, so a
warm ``aggregate`` artifact short-circuits the entire map phase —
nothing is re-mined just to prove it wouldn't have changed.  Within a
cold aggregate, each shard is itself hit-first (a warm ``analyze`` shard
never probes its ``mine`` or ``generate`` keys), and only the cold
shards enter the process-pool fan-out.  Editing one project of *N*
therefore recomputes O(1) map work plus the reduce tail, and peak
memory holds one project's history at a time, never the whole corpus.

Artifacts carry their observability side-channels in the envelope meta:
the warnings raised while computing and the stage's metrics delta.  On
a hit both replay — warnings into the live recorder (so a warm run's
manifest lists the same ``empty-history`` skips as the cold one) and the
delta into the study metrics — while ``artifact.hit`` / ``artifact.miss``
counters and per-stage :class:`~repro.perf.timing.ArtifactStats` record
what was reused versus recomputed, split map versus reduce.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import replace

from ..corpus.generator import DEFAULT_SEED, corpus_specs, iter_corpus_specs
from ..corpus.profiles import corpus_size, scaled_profiles, sized_profiles
from ..obs.bus import get_bus
from ..obs.events import get_recorder
from ..obs.metrics import MetricsSnapshot, get_metrics
from ..obs.progress import ProgressTracker
from ..obs.provenance import PROVENANCE_FORMAT, explain_target
from ..obs.resources import MemoryWatchdog, get_monitor
from ..obs.trace import get_tracer
from ..perf.cache import get_cache
from ..perf.parallel import (
    ShardResult,
    ShardTask,
    WindowStats,
    map_shard,
    window_map,
)
from ..perf.pool import warm_pool
from ..perf.timing import StudyTimings
from ..workload import get_workload
from .codec import SHARD_CODECS
from .fingerprint import family_fingerprint, stage_fingerprint
from .shards import ShardSpec, iter_shards, plan_shards
from .stages import (
    CODE_VERSIONS,
    MAP_STAGE_NAMES,
    REDUCE_STAGE_NAMES,
    STAGE_NAMES,
    STAGES,
    MinedProject,
    analyze_one,
    dependents_of,
    stage_source_digest,
)
from .store import Artifact, ArtifactStore, get_store


class Pipeline:
    """One parameterised pass over the sharded stage graph.

    A ``Pipeline`` accumulates timings, metrics and warnings across the
    stages it resolves, so :meth:`study` hands back a
    ``StudyResult`` whose side-channels describe this run — including
    how much of it came warm from the store.  Instances are cheap;
    build a fresh one per run rather than reusing across parameter
    changes.

    ``project_overrides`` maps project name → replacement per-project
    seed: the named projects' specs are re-seeded before shard planning,
    so exactly their map cones (plus the reduce tail) re-key — the
    surgical "edit one project" scenario.  ``plan`` injects an explicit
    ``(spec, profile)`` list instead of sampling ``corpus_specs``
    (degenerate-corpus tests and ad-hoc project sets).
    """

    def __init__(
        self,
        *,
        seed: int = DEFAULT_SEED,
        scale: int = 1,
        jobs: int = 1,
        report_format: str = "markdown",
        store: ArtifactStore | None = None,
        code_versions: dict[str, str] | None = None,
        project_overrides: dict[str, int] | None = None,
        plan: list[tuple] | None = None,
        projects: int | None = None,
        limit_memory_mb: int | None = None,
        window: int | None = None,
        dialect: str | None = None,
    ):
        self.seed = seed
        self.scale = scale
        #: The workload's dialect (``--dialect``); ``None`` is the
        #: canonical MySQL/Postgres workload, whose shard keys and
        #: artifacts predate — and must stay byte-identical to — the
        #: workload interface.  Non-default dialects re-key the whole
        #: map family (vendor in ``spec_digest`` + the ``dialect``
        #: identity component), and the reduce tail re-keys with it
        #: through the family fingerprints, zero reduce changes needed.
        self.dialect = dialect
        self.workload = get_workload(dialect)
        #: Scale-out knob: an absolute corpus size (``--projects N``,
        #: the canonical taxa mix re-sized); ``None`` keeps the
        #: ``scale`` divisor semantics.
        self.projects = projects
        #: Driver memory cap in MiB (``--limit-memory``): enforced by a
        #: warn-then-fail watchdog in the streaming map loop, and turns
        #: on the aggregate accumulator's disk spill.
        self.limit_memory_mb = limit_memory_mb
        #: In-flight window for the backpressured fan-out; ``None``
        #: derives ``max(2, 2 * jobs)``.
        self.window = window
        self.jobs = max(1, jobs)
        self.report_format = report_format
        self.store = store if store is not None else get_store()
        self.code_versions = {**CODE_VERSIONS, **(code_versions or {})}
        self.project_overrides = dict(project_overrides or {})
        self.timings = StudyTimings(jobs=self.jobs)
        self.metrics = MetricsSnapshot()
        self.warnings: list[dict] = []
        #: Where the aggregate accumulator spills row batches; set for
        #: the duration of a bounded-memory aggregate recompute.
        self.spill_dir: str | None = None
        self._plan = plan
        self._shards: list[ShardSpec] | None = None
        self._fingerprints: dict[str, str] = {}
        self._resolved: dict[str, Artifact] = {}
        self._map_delta = MetricsSnapshot()
        self._study = None

    # -- planning ------------------------------------------------------
    def _profiles(self):
        """The corpus composition this pipeline samples from."""
        if self.projects is not None:
            return sized_profiles(self.projects)
        return scaled_profiles(self.scale)

    def n_projects(self) -> int:
        """How many projects the plan covers — O(1), nothing sampled."""
        if self._shards is not None:
            return len(self._shards)
        if self._plan is not None:
            return len(self._plan)
        return corpus_size(self._profiles())

    def iter_shards(self):
        """Stream the shard plan in corpus order, one spec at a time.

        The streaming twin of :meth:`shards`: on the default sampling
        path nothing is memoised — specs stream off
        :func:`~repro.corpus.generator.iter_corpus_specs` and each
        :class:`ShardSpec` is released after its consumer folds it, so
        a 100k-project plan never exists as a list.  Injected plans and
        override re-seeding fall back to the memoised list (they hold
        the pairs anyway).
        """
        if (
            self._shards is not None
            or self._plan is not None
            or self.project_overrides
        ):
            yield from self.shards()
            return
        yield from iter_shards(
            iter_corpus_specs(
                seed=self.seed,
                profiles=self._profiles(),
                dialect=self.dialect,
            ),
            self.code_versions,
            self.dialect,
        )

    def shards(self) -> list[ShardSpec]:
        """The per-project shard plan, in corpus order (memoised).

        Planning samples only project *specs* — no commit is generated —
        so a fully warm run never pays for generation.  Overridden
        projects are re-seeded here, before keys are derived.
        """
        if self._shards is None:
            pairs = (
                list(self._plan)
                if self._plan is not None
                else corpus_specs(
                    seed=self.seed,
                    profiles=self._profiles(),
                    dialect=self.dialect,
                )
            )
            if self.project_overrides:
                known = {spec.name for spec, _ in pairs}
                unknown = sorted(set(self.project_overrides) - known)
                if unknown:
                    raise ValueError(
                        "project_overrides name unknown project(s): "
                        + ", ".join(unknown)
                    )
                pairs = [
                    (
                        replace(
                            spec,
                            seed=self.project_overrides.get(
                                spec.name, spec.seed
                            ),
                        ),
                        profile,
                    )
                    for spec, profile in pairs
                ]
            self._shards = plan_shards(
                pairs, self.code_versions, self.dialect
            )
        return self._shards

    # -- keys ----------------------------------------------------------
    def params_for(self, stage: str) -> dict:
        """The parameter subset stage ``stage`` declares it consumes."""
        return {name: getattr(self, name) for name in STAGES[stage].params}

    def fingerprint(self, stage: str) -> str:
        """The stage's content address under this parameter set.

        Map stages address their shard *family* — the digest of their
        sorted per-shard keys — which is what the reduce chain folds;
        the per-shard keys themselves live on :meth:`shards`.
        """
        cached = self._fingerprints.get(stage)
        if cached is None:
            spec = STAGES[stage]
            if spec.kind == "map":
                self._ensure_map_fingerprints()
                cached = self._fingerprints[stage]
            else:
                cached = stage_fingerprint(
                    stage,
                    self.code_versions[stage],
                    self.params_for(stage),
                    {dep: self.fingerprint(dep) for dep in spec.deps},
                )
            self._fingerprints[stage] = cached
        return cached

    def _ensure_map_fingerprints(self) -> None:
        """Family fingerprints for all map stages in one streaming pass.

        The family digest needs every shard key, so this is the one
        place planning must visit the whole corpus — but it retains
        only the key strings (all three stages per pass), never the
        specs, keeping the footprint a few dozen bytes per project.
        """
        if all(stage in self._fingerprints for stage in MAP_STAGE_NAMES):
            return
        keys: dict[str, list[str]] = {
            stage: [] for stage in MAP_STAGE_NAMES
        }
        for shard in self.iter_shards():
            for stage in MAP_STAGE_NAMES:
                keys[stage].append(shard.keys[stage])
        for stage in MAP_STAGE_NAMES:
            self._fingerprints[stage] = family_fingerprint(
                stage, keys[stage]
            )

    # -- resolution ----------------------------------------------------
    def resolve(self, stage: str) -> Artifact:
        """The stage's artifact: from the store when warm, else computed.

        The store lookup happens before dependency resolution, so a hit
        on this stage never recurses upstream.  Map stages have no
        whole-corpus artifact — they resolve shard by shard inside
        ``aggregate`` — so asking for one is a programming error.
        """
        spec = STAGES[stage]
        if spec.kind == "map":
            raise ValueError(
                f"map stage {stage!r} resolves per shard; "
                "resolve 'aggregate' for the folded corpus"
            )
        done = self._resolved.get(stage)
        if done is not None:
            return done
        if stage == "aggregate":
            return self._resolve_aggregate()
        key = self.fingerprint(stage)
        load_start = time.perf_counter()
        artifact = self.store.get(key)
        if artifact is not None:
            return self._consume_hit(
                stage, key, artifact, time.perf_counter() - load_start
            )
        self._count_miss(stage)
        inputs = {dep: self.resolve(dep).payload for dep in spec.deps}
        recorder = get_recorder()
        mark = recorder.mark()
        with get_tracer().span(
            f"stage:{stage}", artifact="recompute", fingerprint=key[:12]
        ), get_monitor().window() as window:
            start = time.perf_counter()
            output = spec.compute(self, inputs)
            seconds = time.perf_counter() - start
        self.timings.record_resource(stage, window.sample)
        if not output.self_timed:
            self.timings.record(stage, seconds)
        window = recorder.since(mark)
        self.warnings.extend(window)
        self.metrics = self.metrics + output.metrics
        artifact = self._put(
            stage, key, output.payload,
            seconds=seconds, warnings=window, metrics=output.metrics,
        )
        self._resolved[stage] = artifact
        return artifact

    def _resolve_aggregate(self) -> Artifact:
        """Resolve ``aggregate``: warm hit, or streaming map + fold.

        On a miss the recorder is marked *before* the map phase, so the
        stored meta window spans every shard warning — replayed warm
        ones and freshly raised ones alike — and a later warm aggregate
        hit replays the full map phase's warnings and metrics without
        touching a single shard key.

        The fold *consumes the map generator*: each shard's ``analyze``
        payload streams into the aggregate accumulator and is released,
        so driver memory holds the in-flight window plus the
        accumulated rows, never the corpus.  The recorded ``aggregate``
        seconds stay fold-only (producer time is measured out), keeping
        the stage breakdown comparable with pre-streaming records.
        """
        from .stages import compute_aggregate

        stage = "aggregate"
        key = self.fingerprint(stage)
        load_start = time.perf_counter()
        artifact = self.store.get(key)
        if artifact is not None:
            return self._consume_hit(
                stage, key, artifact, time.perf_counter() - load_start
            )
        self._count_miss(stage)
        recorder = get_recorder()
        mark = recorder.mark()
        self._map_delta = MetricsSnapshot()
        produced = [0.0]

        def timed_payloads():
            source = self._iter_map_payloads()
            while True:
                tick = time.perf_counter()
                try:
                    payload = next(source)
                except StopIteration:
                    produced[0] += time.perf_counter() - tick
                    return
                produced[0] += time.perf_counter() - tick
                yield payload

        spill = None
        if self.limit_memory_mb:
            spill = tempfile.TemporaryDirectory(prefix="repro-spill-")
        try:
            if spill is not None:
                self.spill_dir = spill.name
            with get_tracer().span(
                f"stage:{stage}", artifact="recompute", fingerprint=key[:12]
            ), get_monitor().window() as window:
                fold_start = time.perf_counter()
                output = compute_aggregate(
                    self, {"analyze": timed_payloads()}
                )
                seconds = (
                    time.perf_counter() - fold_start - produced[0]
                )
        finally:
            self.spill_dir = None
            if spill is not None:
                spill.cleanup()
        # the window spans map + fold: the map phase is where the
        # driver's footprint actually peaks (shard payloads in flight)
        self.timings.record_resource(stage, window.sample)
        self.timings.record(stage, max(0.0, seconds))
        window = recorder.since(mark)
        self.warnings.extend(window)
        metrics_out = self._map_delta + output.metrics
        self.metrics = self.metrics + metrics_out
        artifact = self._put(
            stage, key, output.payload,
            seconds=seconds, warnings=window, metrics=metrics_out,
        )
        self._resolved[stage] = artifact
        return artifact

    def map_window(self) -> int:
        """The fan-out's initial in-flight window (the memory bound)."""
        if self.window is not None:
            return max(1, self.window)
        return max(2, 2 * self.jobs)

    def _iter_map_payloads(self):
        """Stream every shard's ``analyze`` payload, warmest path first.

        Per shard: a warm ``analyze`` artifact wins outright (its
        ``mine``/``generate`` keys are never probed); a warm ``mine``
        artifact re-analyzes driver-side; otherwise the shard joins the
        backpressured fan-out — carrying its warm ``generate`` payload
        if one exists, generating in the worker if not.  The fan-out
        runs through :func:`~repro.perf.parallel.window_map`, so at
        most :meth:`map_window` shards are in flight at once, the
        planner is not advanced while the window is full, and each
        payload is yielded — then released — in corpus order, exactly
        the order the fused engine folds.

        Under ``--limit-memory`` a
        :class:`~repro.obs.resources.MemoryWatchdog` probes the driver
        RSS after every fold: crossing the warn line halves the window
        (floor 1) and drops the parse cache's in-memory layers — pure
        memoisation, so releasing them costs re-parses, never bytes —
        while crossing the cap raises
        :class:`~repro.obs.resources.MemoryLimitExceeded`.  On the
        serial path the parse cache is the one driver-side structure
        that grows with corpus size, so the release is what keeps RSS
        roughly flat as N climbs.
        """
        total = self.n_projects()
        stats = WindowStats()
        limit = [self.map_window()]
        cache_clears = 0
        watchdog = None
        if self.limit_memory_mb:
            watchdog = MemoryWatchdog(self.limit_memory_mb * 2 ** 20)
        tracker = ProgressTracker(
            "map", total, timings=self.timings,
            parallelism=min(self.jobs, limit[0]),
        )
        executor = warm_pool(self.jobs) if self.jobs > 1 else None

        def planned():
            for shard in self.iter_shards():
                warm_analyze = self._load_shard("analyze", shard)
                if warm_analyze is not None:
                    yield (shard, "ready", ("analyze", warm_analyze.payload))
                    continue
                warm_mine = self._load_shard("mine", shard)
                if warm_mine is not None:
                    yield (shard, "ready", ("mine", warm_mine.payload))
                    continue
                warm_generate = self._load_shard("generate", shard)
                yield (
                    shard,
                    "task",
                    ShardTask(
                        spec=shard.spec,
                        profile=shard.profile,
                        project=(
                            None if warm_generate is None
                            else warm_generate.payload
                        ),
                        source=self.workload.source,
                    ),
                )

        try:
            with get_tracer().span("map", shards=total):
                for shard, value in window_map(
                    map_shard,
                    planned(),
                    executor=executor,
                    window=lambda: limit[0],
                    stats=stats,
                ):
                    if isinstance(value, ShardResult):
                        payload = self._finish_shard(shard, value)
                        tracker.update(value.name, value.mined.seconds)
                        self._publish_metrics()
                    else:
                        kind, warm = value
                        if kind == "analyze":
                            payload = warm
                        else:
                            payload = self._analyze_shard(shard, warm)
                        tracker.update(shard.project)
                    if watchdog is not None:
                        if watchdog.check() == "pressure":
                            if limit[0] > 1:
                                limit[0] = max(1, limit[0] // 2)
                                tracker.set_parallelism(
                                    min(self.jobs, limit[0])
                                )
                            cache = get_cache()
                            if len(cache):
                                # shards are mined whole, so a clear
                                # between folds never splits a
                                # project's cross-version reuse
                                cache.clear()
                                cache_clears += 1
                    yield payload
            tracker.finish()
        finally:
            self.timings.record_streaming(
                "window",
                {
                    "initial": self.map_window(),
                    "final": limit[0],
                    **stats.as_dict(),
                },
            )
            if watchdog is not None:
                self.timings.record_streaming(
                    "memory_watchdog",
                    {**watchdog.as_dict(), "cache_clears": cache_clears},
                )

    def _finish_shard(self, shard: ShardSpec, result) -> dict:
        """Store one fan-out result's artifacts and analyze the shard."""
        tracer = get_tracer()
        recorder = get_recorder()
        if result.generated is not None:
            project = result.generated
            if project.trace is not None:
                tracer.attach(project.trace, emit=self.jobs > 1)
                project.trace = None
            self.timings.record("generate", result.generate_seconds)
            generated_delta = MetricsSnapshot(
                counters={"projects.generated": 1}
            )
            self._map_delta = self._map_delta + generated_delta
            self._store_shard(
                "generate", shard, project,
                seconds=result.generate_seconds,
                warnings=(), metrics=generated_delta,
            )
        mined = result.mined
        self.timings.record("mine", mined.seconds)
        self.timings.merge_cache(mined.cache)
        if mined.resources is not None:
            # worker peaks fold by max into one "workers" scope: the
            # pool's footprint is its worst process, not their sum
            self.timings.record_resource("workers", mined.resources)
        self._map_delta = self._map_delta + mined.metrics
        if mined.trace is not None:
            tracer.attach(mined.trace, emit=self.jobs > 1)
        if mined.warnings and self.jobs > 1:
            # worker warnings replay here so the driver's recorder (and
            # any --log-json sink) sees them exactly once
            for record in mined.warnings:
                recorder.replay(record)
        entry = MinedProject(
            name=mined.name,
            history=mined.history,
            true_taxon=mined.true_taxon,
        )
        self._store_shard(
            "mine", shard, entry,
            seconds=mined.seconds,
            warnings=mined.warnings, metrics=mined.metrics,
        )
        return self._analyze_shard(shard, entry)

    def _analyze_shard(self, shard: ShardSpec, mined: MinedProject) -> dict:
        """Analyze one shard driver-side and store its artifact."""
        registry = get_metrics()
        recorder = get_recorder()
        before = registry.snapshot()
        mark = recorder.mark()
        start = time.perf_counter()
        payload = analyze_one(mined)
        seconds = time.perf_counter() - start
        self.timings.record("analyze", seconds)
        delta = registry.snapshot() - before
        self._map_delta = self._map_delta + delta
        self._store_shard(
            "analyze", shard, payload,
            seconds=seconds,
            warnings=recorder.since(mark), metrics=delta,
        )
        return payload

    def _load_shard(self, stage: str, shard: ShardSpec) -> Artifact | None:
        """One shard-key probe: hit replays its meta, miss counts one.

        Shard-hit warnings replay into the live recorder only — the
        aggregate's meta window (marked before the map phase) picks
        them up, and ``self.warnings`` receives them once when that
        window lands.  Metrics deltas fold into the map delta for the
        same reason; hit/miss *counters* go straight to the live run
        accounting, never into stored meta.
        """
        key = shard.keys[stage]
        load_start = time.perf_counter()
        artifact = self.store.get(key)
        if artifact is None:
            self._count_miss(stage)
            return None
        load_seconds = time.perf_counter() - load_start
        get_metrics().inc("artifact.hit")
        self.metrics = self.metrics + MetricsSnapshot(
            counters={"artifact.hit": 1}
        )
        self.timings.record_artifact(stage, hit=True)
        self.timings.record(stage, load_seconds)
        self._publish_artifact(
            stage, "hit", project=shard.project, key=key
        )
        recorder = get_recorder()
        for record in artifact.meta.get("warnings") or ():
            recorder.replay(record)
        delta = artifact.meta.get("metrics")
        if delta is not None:
            self._map_delta = self._map_delta + delta
        return artifact

    # -- provenance ----------------------------------------------------
    def _reduce_provenance(self, stage: str) -> dict:
        """The current plan's fingerprint breakdown for a reduce stage."""
        spec = STAGES[stage]
        return {
            "format": PROVENANCE_FORMAT,
            "stage": stage,
            "kind": "reduce",
            "code_version": self.code_versions[stage],
            "params": dict(self.params_for(stage)),
            "upstream": {
                dep: self.fingerprint(dep) for dep in spec.deps
            },
            "source_digest": stage_source_digest(stage),
        }

    def _shard_provenance(self, stage: str, shard: ShardSpec) -> dict:
        """One shard's breakdown: identity params + map-cone upstream."""
        return {
            "format": PROVENANCE_FORMAT,
            "stage": stage,
            "kind": "map",
            "project": shard.project,
            "code_version": self.code_versions[stage],
            # only generate folds the identity into its params; the
            # downstream cone inherits it through the upstream chain
            "params": (
                dict(shard.identity) if stage == "generate" else {}
            ),
            "upstream": shard.upstream(stage),
            "source_digest": stage_source_digest(stage),
        }

    def explain(
        self, stage: str, *, project: str | None = None
    ) -> list[dict]:
        """Why each target of ``stage`` is warm, stale, or cold.

        Reduce stages yield one record; map stages one per shard
        (narrowed to one project with ``project``).  Each record diffs
        the stored breakdown of the best-matching prior artifact
        against the current plan — see
        :func:`repro.obs.provenance.explain_target`.
        """
        if stage not in STAGES:
            raise KeyError(stage)
        if STAGES[stage].kind == "map":
            shards = self.shards()
            if project is not None:
                shards = [s for s in shards if s.project == project]
                if not shards:
                    raise KeyError(project)
            return [
                explain_target(
                    self.store,
                    stage,
                    shard.keys[stage],
                    self._shard_provenance(stage, shard),
                    project=shard.project,
                )
                for shard in shards
            ]
        if project is not None:
            raise ValueError(
                f"reduce stage {stage!r} has no per-project shards"
            )
        return [
            explain_target(
                self.store,
                stage,
                self.fingerprint(stage),
                self._reduce_provenance(stage),
            )
        ]

    # -- live telemetry ------------------------------------------------
    def _publish_artifact(
        self,
        stage: str,
        outcome: str,
        *,
        project: str | None = None,
        key: str | None = None,
    ) -> None:
        """One ``artifact`` bus event per store hit / recompute.

        Gated on live consumers: with nothing subscribed (no server, no
        dashboard, no event log) this is one attribute check, so the
        unobserved hot path stays unobserved.  These events never reach
        the JSONL event log — its bus sink filters them out — so log
        bytes are unchanged by serving.
        """
        bus = get_bus()
        if not bus.active:
            return
        data: dict = {
            "event": "artifact",
            "ts": round(time.time(), 6),
            "stage": stage,
            "outcome": outcome,
        }
        if project is not None:
            data["project"] = project
        if key is not None:
            data["fingerprint"] = key[:16]
        bus.publish("artifact", data)

    def _publish_metrics(self) -> None:
        """A cumulative counter snapshot for live rate displays.

        Published after each shard completes (and once at study end) so
        ``repro obs top`` can show parse-cache and statement-reuse
        rates while the run is still going.  Same gating as
        :meth:`_publish_artifact`.
        """
        bus = get_bus()
        if not bus.active:
            return
        counters = dict(
            MetricsSnapshot().fold_cache(self.timings.cache).counters
        )
        for name in ("artifact.hit", "artifact.miss"):
            if self.metrics.counters.get(name):
                counters[name] = self.metrics.counters[name]
        bus.publish(
            "metrics",
            {
                "event": "metrics",
                "ts": round(time.time(), 6),
                "counters": counters,
            },
        )

    # -- store plumbing ------------------------------------------------
    def _consume_hit(
        self, stage: str, key: str, artifact: Artifact, load_seconds: float
    ) -> Artifact:
        """Account one reduce-stage hit and replay its side-channels."""
        get_metrics().inc("artifact.hit")
        self.metrics = self.metrics + MetricsSnapshot(
            counters={"artifact.hit": 1}
        )
        self._publish_artifact(stage, "hit", key=key)
        self.timings.record_artifact(stage, hit=True)
        # the honest cost of a hit: just the load
        self.timings.record(stage, load_seconds)
        with get_tracer().span(
            f"stage:{stage}", artifact="hit", fingerprint=key[:12]
        ):
            pass
        recorder = get_recorder()
        for record in artifact.meta.get("warnings") or ():
            # warm runs surface the cold run's warnings — the manifest
            # of a replayed study matches the original
            recorder.replay(record)
            self.warnings.append(record)
        delta = artifact.meta.get("metrics")
        if delta is not None:
            self.metrics = self.metrics + delta
        self._resolved[stage] = artifact
        return artifact

    def _count_miss(self, stage: str) -> None:
        get_metrics().inc("artifact.miss")
        self.metrics = self.metrics + MetricsSnapshot(
            counters={"artifact.miss": 1}
        )
        self.timings.record_artifact(stage, hit=False)

    def _put(
        self, stage: str, key: str, payload, *,
        seconds: float, warnings, metrics: MetricsSnapshot,
    ) -> Artifact:
        self._publish_artifact(stage, "recompute", key=key)
        meta = {
            "stage": stage,
            "params": self.params_for(stage),
            "code_version": self.code_versions[stage],
            "source_digest": stage_source_digest(stage),
            "provenance": self._reduce_provenance(stage),
            "seconds": round(seconds, 6),
            "warnings": list(warnings),
            "metrics": metrics,
        }
        if self.dialect is not None:
            # non-default workloads stamp their (dialect, source) pair;
            # canonical meta stays byte-compatible with old stores
            meta["dialect"] = self.dialect
            meta["source"] = self.workload.source
        return self.store.put(key, payload, meta=meta)

    def _store_shard(
        self, stage: str, shard: ShardSpec, payload, *,
        seconds: float, warnings, metrics: MetricsSnapshot,
    ) -> Artifact:
        self._publish_artifact(
            stage, "recompute",
            project=shard.project, key=shard.keys[stage],
        )
        meta = {
            "stage": stage,
            "project": shard.project,
            "code_version": self.code_versions[stage],
            "source_digest": stage_source_digest(stage),
            "provenance": self._shard_provenance(stage, shard),
            "seconds": round(seconds, 6),
            "warnings": list(warnings),
            "metrics": metrics,
        }
        if self.dialect is not None:
            meta["dialect"] = self.dialect
            meta["source"] = self.workload.source
        codec = SHARD_CODECS.get(stage)
        if codec is not None:
            # mine shards go to disk through the compact tuple codec
            # (MemoryStore keeps the live object and ignores the tag)
            meta["codec"] = codec
        return self.store.put(shard.keys[stage], payload, meta=meta)

    # -- whole-study entry points --------------------------------------
    def study(self):
        """Resolve aggregate + figures + statistics into a ``StudyResult``.

        The result's figures, headline and statistics are primed from
        the resolved artifacts, so accessors replay stored values
        instead of recomputing.  Memoised per pipeline: a second call
        returns the same object.
        """
        from ..analysis.study import StudyResult

        if self._study is not None:
            return self._study
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span(
            "pipeline", seed=self.seed, scale=self.scale, jobs=self.jobs
        ), get_monitor().window() as window:
            aggregate = self.resolve("aggregate")
            figures = self.resolve("figures")
            statistics = self.resolve("statistics")
        self.timings.record_resource("driver", window.sample)
        self.metrics.fold_cache(self.timings.cache)
        self.timings.record_wall(time.perf_counter() - start)
        self._publish_metrics()
        result = StudyResult(
            projects=list(aggregate.payload["rows"]),
            skipped=list(aggregate.payload["skipped"]),
            timings=self.timings,
            metrics=self.metrics,
            warnings=list(self.warnings),
        )
        result.prime_artifacts(
            figures=figures.payload, statistics=statistics.payload
        )
        self._study = result
        return result

    def report(self) -> str:
        """The rendered report text (``report_format``), store-resolved."""
        return self.resolve("report").payload

    # -- maintenance ---------------------------------------------------
    def status(self) -> list[dict]:
        """One row per stage: fingerprint, warm/cold, stored size.

        Map rows carry the shard totals (``shards`` planned versus
        ``warm_shards`` stored, ``size_bytes`` summed over the warm
        ones) and count as warm only when *every* shard is; reduce rows
        keep the one-artifact shape with ``shards`` set to ``None``.
        """
        rows = []
        shards = self.shards()
        for name in STAGE_NAMES:
            key = self.fingerprint(name)
            if STAGES[name].kind == "map":
                warm_keys = [
                    shard.keys[name] for shard in shards
                    if self.store.contains(shard.keys[name])
                ]
                rows.append(
                    {
                        "stage": name,
                        "kind": "map",
                        "code_version": self.code_versions[name],
                        "fingerprint": key,
                        "shards": len(shards),
                        "warm_shards": len(warm_keys),
                        "warm": bool(shards)
                        and len(warm_keys) == len(shards),
                        "size_bytes": (
                            sum(
                                self.store.size_of(k) or 0
                                for k in warm_keys
                            )
                            if warm_keys else None
                        ),
                    }
                )
            else:
                warm = self.store.contains(key)
                rows.append(
                    {
                        "stage": name,
                        "kind": "reduce",
                        "code_version": self.code_versions[name],
                        "fingerprint": key,
                        "shards": None,
                        "warm_shards": None,
                        "warm": warm,
                        "size_bytes": (
                            self.store.size_of(key) if warm else None
                        ),
                    }
                )
        return rows

    def shard_status(
        self, *, limit: int | None = None, offset: int = 0
    ) -> list[dict]:
        """Per-project warmth: one row per shard, one flag per map stage.

        ``limit``/``offset`` paginate over the *streamed* plan — a
        50k-shard store answers a one-page status probe without
        planning (or printing) 50k rows.  The defaults keep the full
        listing for small corpora and existing callers.
        """
        rows: list[dict] = []
        for shard in self.iter_shards():
            if shard.index < offset:
                continue
            if limit is not None and len(rows) >= limit:
                break
            rows.append(
                {
                    "project": shard.project,
                    **{
                        stage: self.store.contains(shard.keys[stage])
                        for stage in MAP_STAGE_NAMES
                    },
                }
            )
        return rows

    def version_drift(self) -> list[dict]:
        """Stages whose stored source digest disagrees with the code.

        The drift guard behind ``pipeline status``: a stage is *stale*
        when a stored artifact carries the current ``code_version`` but
        a different source digest — the module changed and nobody
        bumped the constant, so warm artifacts silently replay the old
        computation.  Map stages check their first warm shard (all
        shards of a stage share one code path); stages with no warm
        artifact have nothing to drift.
        """
        drifted = []
        for name in STAGE_NAMES:
            if STAGES[name].kind == "map":
                meta = None
                for shard in self.shards():
                    meta = self.store.meta_of(shard.keys[name])
                    if meta is not None:
                        break
            else:
                meta = self.store.meta_of(self.fingerprint(name))
            if not meta:
                continue
            stored = meta.get("source_digest")
            current = stage_source_digest(name)
            if (
                stored
                and stored != current
                and meta.get("code_version") == self.code_versions[name]
            ):
                drifted.append(
                    {
                        "stage": name,
                        "code_version": self.code_versions[name],
                        "stored": stored,
                        "current": current,
                    }
                )
        return drifted

    def invalidate(
        self, stage: str | None = None, *, project: str | None = None
    ) -> int:
        """Drop artifacts and everything downstream of them.

        ``project`` names one shard: its ``generate``/``mine``/
        ``analyze`` artifacts plus the whole reduce tail go (the
        surgical single-project invalidation).  ``stage`` drops that
        stage — every shard of it, for a map stage — and its
        dependents; ``None`` (and no project) drops everything.  Only
        artifacts keyed by the *current* fingerprints are touched —
        other seeds' entries survive.  Returns how many entries were
        actually removed.
        """
        if project is not None:
            if stage is not None:
                raise ValueError("pass either stage or project, not both")
            shard = next(
                (s for s in self.shards() if s.project == project), None
            )
            if shard is None:
                raise KeyError(project)
            keys = list(shard.keys.values()) + [
                self.fingerprint(name) for name in REDUCE_STAGE_NAMES
            ]
        else:
            if stage is None:
                targets = set(STAGE_NAMES)
            else:
                if stage not in STAGES:
                    raise KeyError(stage)
                targets = {stage} | dependents_of(stage)
            keys = []
            for name in STAGE_NAMES:
                if name not in targets:
                    continue
                if STAGES[name].kind == "map":
                    keys.extend(
                        shard.keys[name] for shard in self.shards()
                    )
                else:
                    keys.append(self.fingerprint(name))
        removed = sum(bool(self.store.delete(key)) for key in keys)
        self._resolved.clear()
        self._study = None
        return removed


def pipeline_study(
    *,
    seed: int = DEFAULT_SEED,
    scale: int = 1,
    jobs: int = 1,
    store: ArtifactStore | None = None,
    code_versions: dict[str, str] | None = None,
    project_overrides: dict[str, int] | None = None,
    projects: int | None = None,
    limit_memory_mb: int | None = None,
    dialect: str | None = None,
):
    """One-call stage-graph study (the pipeline twin of ``run_study``)."""
    return Pipeline(
        seed=seed,
        scale=scale,
        jobs=jobs,
        store=store,
        code_versions=code_versions,
        project_overrides=project_overrides,
        projects=projects,
        limit_memory_mb=limit_memory_mb,
        dialect=dialect,
    ).study()
