"""The stage-graph runner: fingerprint, resolve, replay.

A :class:`Pipeline` binds the stage graph (:mod:`repro.pipeline.stages`)
to one parameter set (seed, scale, jobs, report format) and one artifact
store.  Resolution is lazy and hit-first: resolving a stage checks the
store under the stage's fingerprint *before* touching its dependencies,
so a warm ``report`` artifact short-circuits the entire upstream chain —
nothing is re-mined just to prove it wouldn't have changed.

Fingerprints chain: a stage's key digests its code version, the
parameters it consumes and the fingerprints of its dependencies
(:func:`repro.pipeline.fingerprint.stage_fingerprint`).  Changing the
seed therefore re-keys every stage, while bumping only the figures
code version re-keys figures and report but leaves generate, mine,
analyze and statistics artifacts warm.

Artifacts carry their observability side-channels in the envelope meta:
the warnings raised while computing and the stage's metrics delta.  On
a hit both replay — warnings into the live recorder (so a warm run's
manifest lists the same ``empty-history`` skips as the cold one) and the
delta into the study metrics — while ``artifact.hit`` / ``artifact.miss``
counters and per-stage :class:`~repro.perf.timing.ArtifactStats` record
what was reused versus recomputed.
"""

from __future__ import annotations

import time

from ..corpus.generator import DEFAULT_SEED
from ..obs.events import get_recorder
from ..obs.metrics import MetricsSnapshot, get_metrics
from ..obs.trace import get_tracer
from ..perf.timing import StudyTimings
from .fingerprint import stage_fingerprint
from .stages import CODE_VERSIONS, STAGE_NAMES, STAGES, dependents_of
from .store import Artifact, ArtifactStore, get_store


class Pipeline:
    """One parameterised pass over the stage graph.

    A ``Pipeline`` accumulates timings, metrics and warnings across the
    stages it resolves, so :meth:`study` hands back a
    ``StudyResult`` whose side-channels describe this run — including
    how much of it came warm from the store.  Instances are cheap;
    build a fresh one per run rather than reusing across parameter
    changes.
    """

    def __init__(
        self,
        *,
        seed: int = DEFAULT_SEED,
        scale: int = 1,
        jobs: int = 1,
        report_format: str = "markdown",
        store: ArtifactStore | None = None,
        code_versions: dict[str, str] | None = None,
    ):
        self.seed = seed
        self.scale = scale
        self.jobs = max(1, jobs)
        self.report_format = report_format
        self.store = store if store is not None else get_store()
        self.code_versions = {**CODE_VERSIONS, **(code_versions or {})}
        self.timings = StudyTimings(jobs=self.jobs)
        self.metrics = MetricsSnapshot()
        self.warnings: list[dict] = []
        self._fingerprints: dict[str, str] = {}
        self._resolved: dict[str, Artifact] = {}
        self._study = None

    # -- keys ----------------------------------------------------------
    def params_for(self, stage: str) -> dict:
        """The parameter subset stage ``stage`` declares it consumes."""
        return {name: getattr(self, name) for name in STAGES[stage].params}

    def fingerprint(self, stage: str) -> str:
        """The stage's content address under this parameter set."""
        cached = self._fingerprints.get(stage)
        if cached is None:
            spec = STAGES[stage]
            cached = self._fingerprints[stage] = stage_fingerprint(
                stage,
                self.code_versions[stage],
                self.params_for(stage),
                {dep: self.fingerprint(dep) for dep in spec.deps},
            )
        return cached

    # -- resolution ----------------------------------------------------
    def resolve(self, stage: str) -> Artifact:
        """The stage's artifact: from the store when warm, else computed.

        The store lookup happens before dependency resolution, so a hit
        on this stage never recurses upstream.
        """
        done = self._resolved.get(stage)
        if done is not None:
            return done
        key = self.fingerprint(stage)
        registry = get_metrics()
        tracer = get_tracer()
        load_start = time.perf_counter()
        artifact = self.store.get(key)
        if artifact is not None:
            load_seconds = time.perf_counter() - load_start
            registry.inc("artifact.hit")
            self.metrics = self.metrics + MetricsSnapshot(
                counters={"artifact.hit": 1}
            )
            self.timings.record_artifact(stage, hit=True)
            # the honest cost of a hit: just the load
            self.timings.record(stage, load_seconds)
            with tracer.span(
                f"stage:{stage}", artifact="hit", fingerprint=key[:12]
            ):
                pass
            recorder = get_recorder()
            for record in artifact.meta.get("warnings") or ():
                # warm runs surface the cold run's warnings — the
                # manifest of a replayed study matches the original
                recorder.replay(record)
                self.warnings.append(record)
            delta = artifact.meta.get("metrics")
            if delta is not None:
                self.metrics = self.metrics + delta
            self._resolved[stage] = artifact
            return artifact

        registry.inc("artifact.miss")
        self.metrics = self.metrics + MetricsSnapshot(
            counters={"artifact.miss": 1}
        )
        self.timings.record_artifact(stage, hit=False)
        spec = STAGES[stage]
        inputs = {dep: self.resolve(dep).payload for dep in spec.deps}
        recorder = get_recorder()
        mark = recorder.mark()
        with tracer.span(
            f"stage:{stage}", artifact="recompute", fingerprint=key[:12]
        ):
            start = time.perf_counter()
            output = spec.compute(self, inputs)
            seconds = time.perf_counter() - start
        if not output.self_timed:
            self.timings.record(stage, seconds)
        window = recorder.since(mark)
        self.warnings.extend(window)
        self.metrics = self.metrics + output.metrics
        artifact = self.store.put(
            key,
            output.payload,
            meta={
                "stage": stage,
                "params": self.params_for(stage),
                "code_version": self.code_versions[stage],
                "seconds": round(seconds, 6),
                "warnings": list(window),
                "metrics": output.metrics,
            },
        )
        self._resolved[stage] = artifact
        return artifact

    # -- whole-study entry points --------------------------------------
    def study(self):
        """Resolve analyze + figures + statistics into a ``StudyResult``.

        The result's figures, headline and statistics are primed from
        the resolved artifacts, so accessors replay stored values
        instead of recomputing.  Memoised per pipeline: a second call
        returns the same object.
        """
        from ..analysis.study import StudyResult

        if self._study is not None:
            return self._study
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span(
            "pipeline", seed=self.seed, scale=self.scale, jobs=self.jobs
        ):
            analyze = self.resolve("analyze")
            figures = self.resolve("figures")
            statistics = self.resolve("statistics")
        self.metrics.fold_cache(self.timings.cache)
        self.timings.record_wall(time.perf_counter() - start)
        result = StudyResult(
            projects=list(analyze.payload["rows"]),
            skipped=list(analyze.payload["skipped"]),
            timings=self.timings,
            metrics=self.metrics,
            warnings=list(self.warnings),
        )
        result.prime_artifacts(
            figures=figures.payload, statistics=statistics.payload
        )
        self._study = result
        return result

    def report(self) -> str:
        """The rendered report text (``report_format``), store-resolved."""
        return self.resolve("report").payload

    # -- maintenance ---------------------------------------------------
    def status(self) -> list[dict]:
        """One row per stage: fingerprint, warm/cold, stored size."""
        rows = []
        for name in STAGE_NAMES:
            key = self.fingerprint(name)
            warm = self.store.contains(key)
            rows.append(
                {
                    "stage": name,
                    "code_version": self.code_versions[name],
                    "fingerprint": key,
                    "warm": warm,
                    "size_bytes": self.store.size_of(key) if warm else None,
                }
            )
        return rows

    def invalidate(self, stage: str | None = None) -> int:
        """Drop ``stage`` and everything downstream (all stages if None).

        Only artifacts keyed by the *current* fingerprints are touched —
        other seeds' entries survive.  Returns how many entries were
        actually removed.
        """
        if stage is None:
            targets = set(STAGE_NAMES)
        else:
            if stage not in STAGES:
                raise KeyError(stage)
            targets = {stage} | dependents_of(stage)
        removed = 0
        for name in targets:
            removed += bool(self.store.delete(self.fingerprint(name)))
            self._resolved.pop(name, None)
        self._study = None
        return removed


def pipeline_study(
    *,
    seed: int = DEFAULT_SEED,
    scale: int = 1,
    jobs: int = 1,
    store: ArtifactStore | None = None,
    code_versions: dict[str, str] | None = None,
):
    """One-call stage-graph study (the pipeline twin of ``run_study``)."""
    return Pipeline(
        seed=seed,
        scale=scale,
        jobs=jobs,
        store=store,
        code_versions=code_versions,
    ).study()
