"""Sharded stage-graph pipeline with a persistent artifact store.

The study is a map/reduce DAG of typed stages: the **map** stages
(``generate → mine → analyze``) produce one content-addressed artifact
*per project shard*, and the **reduce** stages (``aggregate →
figures/statistics → report``) fold the shard family into whole-corpus
artifacts.  Each key fingerprints its code version, the parameters it
consumes and its upstream keys (a project's identity, for shard keys;
the sorted shard digests, for the reduce chain), so a rerun replays
clean work from the store and recomputes exactly the dirty shards plus
the reduce tail.  See ``docs/architecture.md`` for the DAG, the
shard-key recipe and the on-disk layout.

Import layering: this package's leaves (:mod:`.store`,
:mod:`.fingerprint`) import nothing from the analysis layer, while the
graph modules (:mod:`.stages`, :mod:`.graph`) reach into it lazily at
compute time — so ``repro.analysis`` and ``repro.perf`` may import the
leaves at module level without a cycle, and the graph names below load
on first attribute access (PEP 562).
"""

from .fingerprint import (
    FINGERPRINT_FORMAT,
    canonical_params,
    digest_text,
    family_fingerprint,
    stage_fingerprint,
)
from .store import (
    ARTIFACT_FORMAT,
    STORE_DIR_ENV,
    Artifact,
    ArtifactStore,
    DirStore,
    MemoryStore,
    StoreStats,
    configure_store,
    get_store,
)

_LAZY = {
    "Pipeline": "graph",
    "pipeline_study": "graph",
    "CODE_VERSIONS": "stages",
    "MAP_STAGE_NAMES": "stages",
    "REDUCE_STAGE_NAMES": "stages",
    "STAGES": "stages",
    "STAGE_NAMES": "stages",
    "StageOutput": "stages",
    "StageSpec": "stages",
    "MinedProject": "stages",
    "analyze_one": "stages",
    "dependents_of": "stages",
    "stage_source_digest": "stages",
    "ShardSpec": "shards",
    "plan_shards": "shards",
    "shard_batches": "shards",
    "spec_digest": "shards",
    "profile_digest": "shards",
}

__all__ = [
    "ARTIFACT_FORMAT",
    "Artifact",
    "ArtifactStore",
    "CODE_VERSIONS",
    "DirStore",
    "FINGERPRINT_FORMAT",
    "MAP_STAGE_NAMES",
    "MemoryStore",
    "MinedProject",
    "Pipeline",
    "REDUCE_STAGE_NAMES",
    "STAGES",
    "STAGE_NAMES",
    "STORE_DIR_ENV",
    "ShardSpec",
    "StageOutput",
    "StageSpec",
    "StoreStats",
    "analyze_one",
    "canonical_params",
    "configure_store",
    "dependents_of",
    "digest_text",
    "family_fingerprint",
    "get_store",
    "pipeline_study",
    "plan_shards",
    "profile_digest",
    "shard_batches",
    "spec_digest",
    "stage_fingerprint",
    "stage_source_digest",
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)
