"""Stage-graph pipeline with a persistent artifact store.

The study is a DAG of typed stages (``generate → mine → analyze →
figures/statistics → report``) whose outputs are content-addressed
artifacts: each stage's key fingerprints its code version, the
parameters it consumes and its upstream keys, so a rerun replays clean
stages from the store and recomputes exactly the dirty ones.  See
``docs/architecture.md`` for the DAG, the fingerprint recipe and the
on-disk layout.

Import layering: this package's leaves (:mod:`.store`,
:mod:`.fingerprint`) import nothing from the analysis layer, while the
graph modules (:mod:`.stages`, :mod:`.graph`) reach into it lazily at
compute time — so ``repro.analysis`` and ``repro.perf`` may import the
leaves at module level without a cycle, and the graph names below load
on first attribute access (PEP 562).
"""

from .fingerprint import (
    FINGERPRINT_FORMAT,
    canonical_params,
    digest_text,
    stage_fingerprint,
)
from .store import (
    ARTIFACT_FORMAT,
    STORE_DIR_ENV,
    Artifact,
    ArtifactStore,
    DirStore,
    MemoryStore,
    StoreStats,
    configure_store,
    get_store,
)

_LAZY = {
    "Pipeline": "graph",
    "pipeline_study": "graph",
    "CODE_VERSIONS": "stages",
    "STAGES": "stages",
    "STAGE_NAMES": "stages",
    "StageOutput": "stages",
    "StageSpec": "stages",
    "MinedProject": "stages",
    "dependents_of": "stages",
}

__all__ = [
    "ARTIFACT_FORMAT",
    "Artifact",
    "ArtifactStore",
    "CODE_VERSIONS",
    "DirStore",
    "FINGERPRINT_FORMAT",
    "MemoryStore",
    "MinedProject",
    "Pipeline",
    "STAGES",
    "STAGE_NAMES",
    "STORE_DIR_ENV",
    "StageOutput",
    "StageSpec",
    "StoreStats",
    "canonical_params",
    "configure_store",
    "dependents_of",
    "digest_text",
    "get_store",
    "pipeline_study",
    "stage_fingerprint",
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)
