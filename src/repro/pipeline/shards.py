"""Per-project shard planning for the map stages of the pipeline.

The sharded pipeline keys its map work (``generate``/``mine``/
``analyze``) **per project**: each project's shard carries one
content-addressed key per map stage, chained generate → mine → analyze
exactly like whole-corpus stage fingerprints chain across the DAG.  A
shard key's parameters are the project's *identity* — its name plus
digests of its sampled :class:`~repro.corpus.generator.ProjectSpec` and
its :class:`~repro.corpus.profiles.TaxonProfile` — so editing one
project's seed (or spec, or profile) re-keys exactly that project's
map cone and nothing else.

Planning is cheap by construction: :func:`plan_shards` consumes the
``(spec, profile)`` pairs of :func:`~repro.corpus.generator.corpus_specs`
— sampled from the corpus RNG without realising a single commit — so a
fully warm run never pays for generation at all.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..corpus.generator import ProjectSpec
from ..corpus.profiles import TaxonProfile
from .fingerprint import canonical_params, digest_text, stage_fingerprint

#: The map stages, in chaining order (generate feeds mine feeds analyze).
SHARD_STAGES = ("generate", "mine", "analyze")


def spec_digest(spec: ProjectSpec) -> str:
    """A content digest of one project spec (identity, not payload).

    Folds every spec field through the canonical-params JSON (enums and
    ``Month`` stringify), so any sampled property — per-project seed,
    duration, vendor, start month — re-keys the project's shards.
    """
    return digest_text("project-spec", canonical_params(
        dataclasses.asdict(spec)
    ))


def profile_digest(profile: TaxonProfile) -> str:
    """A content digest of one taxon profile's generative parameters."""
    return digest_text("taxon-profile", canonical_params(
        dataclasses.asdict(profile)
    ))


@dataclass(frozen=True)
class ShardSpec:
    """One project's shard: identity plus its per-stage artifact keys.

    ``keys`` maps each map stage to the shard's content-addressed store
    key.  The keys chain: ``mine`` folds the ``generate`` key as its
    upstream, ``analyze`` folds ``mine``, so a changed spec re-keys all
    three while every other shard stays warm.
    """

    index: int
    project: str
    spec: ProjectSpec = field(compare=False)
    profile: TaxonProfile = field(compare=False)
    keys: dict = field(compare=False)
    #: The identity params the ``generate`` key folds (project name +
    #: spec/profile digests) — kept on the shard so provenance records
    #: can name *which* digest moved when a shard re-keys.
    identity: dict = field(compare=False, default_factory=dict)

    def key(self, stage: str) -> str:
        return self.keys[stage]

    def upstream(self, stage: str) -> dict[str, str]:
        """The stage's upstream keys within this shard's map cone."""
        i = SHARD_STAGES.index(stage)
        if i == 0:
            return {}
        previous = SHARD_STAGES[i - 1]
        return {previous: self.keys[previous]}


def plan_shard(
    index: int,
    spec: ProjectSpec,
    profile: TaxonProfile,
    code_versions: dict[str, str],
    dialect: str | None = None,
) -> ShardSpec:
    """Plan one project's :class:`ShardSpec` (the per-shard unit).

    Each shard is planned from its own identity alone, so planning
    streams: the pipeline can plan, execute and release one shard at a
    time without ever holding the whole plan.

    ``dialect`` is the workload's shard-identity component: non-default
    workloads fold it into the ``generate`` key's params (so ``pipeline
    explain`` attributes a workload switch to ``params.dialect``), on
    top of the vendor already folded through ``spec_digest``.  The
    default workload passes ``None`` and the identity — and with it
    every canonical store key — is byte-identical to the pre-workload
    layout.
    """
    identity = {
        "project": spec.name,
        "spec": spec_digest(spec),
        "profile": profile_digest(profile),
    }
    if dialect is not None:
        identity["dialect"] = dialect
    generate_key = stage_fingerprint(
        "generate", code_versions["generate"], identity, {}
    )
    mine_key = stage_fingerprint(
        "mine", code_versions["mine"], {}, {"generate": generate_key}
    )
    analyze_key = stage_fingerprint(
        "analyze", code_versions["analyze"], {}, {"mine": mine_key}
    )
    return ShardSpec(
        index=index,
        project=spec.name,
        spec=spec,
        profile=profile,
        keys={
            "generate": generate_key,
            "mine": mine_key,
            "analyze": analyze_key,
        },
        identity=identity,
    )


def iter_shards(pairs, code_versions: dict[str, str], dialect: str | None = None):
    """Stream one :class:`ShardSpec` per ``(spec, profile)`` pair.

    ``pairs`` may be any iterable — in the streaming pipeline it is the
    :func:`~repro.corpus.generator.iter_corpus_specs` generator, so a
    100k-project plan is never held whole.  Shards keep corpus order
    (the reduce stages fold rows in corpus order, matching the fused
    engine byte for byte); the *family* fingerprint over shard keys
    sorts internally, so ordering here is presentation, not addressing.
    """
    for index, (spec, profile) in enumerate(pairs):
        yield plan_shard(index, spec, profile, code_versions, dialect)


def plan_shards(
    pairs: list[tuple[ProjectSpec, TaxonProfile]],
    code_versions: dict[str, str],
    dialect: str | None = None,
) -> list[ShardSpec]:
    """Plan one :class:`ShardSpec` per ``(spec, profile)`` pair.

    The list form of :func:`iter_shards`, for callers that hold the
    whole plan anyway (status tables, invalidation, tests).
    """
    return list(iter_shards(pairs, code_versions, dialect))


def shard_batches(items: list, count: int) -> list[list]:
    """Split ``items`` into at most ``count`` contiguous batches.

    Degenerate inputs stay well-formed: ``count`` larger than the item
    count yields singletons, an empty list yields no batches, and every
    batch is non-empty (sizes differ by at most one).
    """
    if not items or count <= 0:
        return []
    count = min(count, len(items))
    size, extra = divmod(len(items), count)
    batches: list[list] = []
    start = 0
    for i in range(count):
        stop = start + size + (1 if i < extra else 0)
        batches.append(list(items[start:stop]))
        start = stop
    return batches
