"""Compact tuple codecs for artifact payloads.

Mine shards dominate the on-disk store: each one pickles a full
``ProjectHistory`` — dozens of ``Schema`` objects, each a graph of
dataclasses (``Table`` → ``Attribute`` → ``DataType`` → …).  Pickling
that graph spends most of its time on per-object class references and
``__reduce__`` machinery, and the resulting bytes repeat the same type
metadata thousands of times.

The ``mine-tuple-v1`` codec flattens the payload to nested tuples of
primitives before pickling (and rebuilds the dataclasses after
unpickling).  Two explicit intern pools make the encoding compact *and*
faithful to the live object graph:

* the **table pool** stores each distinct ``Table`` object once, keyed
  by identity — the structural sharing the incremental parser creates
  (consecutive versions holding the very same ``Table``) survives the
  round trip, so the diff engine's ``old_table is new_table`` fast path
  stays armed on histories re-diffed from a warm store;
* the **type pool** stores each distinct ``DataType`` spelling once
  (keyed on all five fields, including the non-comparing ``raw``, so
  re-emission stays byte-faithful).

Pickling tuples of str/int/float is a single fast opcode stream; on the
195-project corpus the encoded mine shards are roughly 3× smaller and
decode noticeably faster than the direct dataclass pickle.

A store that writes an encoded payload records the codec name in its
envelope; readers decode through :func:`decode_payload`, and an unknown
codec name is treated like corruption (recompute, never guess).
"""

from __future__ import annotations

from datetime import datetime

#: Codec name for mine-shard payloads (``MinedProject``).
MINE_CODEC = "mine-tuple-v1"

#: Which map stage's shard payloads are stored encoded, and with what.
SHARD_CODECS: dict[str, str] = {"mine": MINE_CODEC}


# ----------------------------------------------------------------------
# mine-tuple-v1: MinedProject <-> nested primitive tuples

def _encode_type(dtype, pool: dict, items: list) -> int:
    key = (dtype.family, dtype.params, dtype.is_array, dtype.unsigned,
           dtype.raw)
    idx = pool.get(key)
    if idx is None:
        idx = pool[key] = len(items)
        items.append(key)
    return idx


def _encode_table(table, type_pool: dict, type_items: list) -> tuple:
    return (
        table.name,
        tuple(
            (
                attr.name,
                _encode_type(attr.data_type, type_pool, type_items),
                attr.nullable,
                attr.default,
                attr.auto_increment,
                attr.position,
            )
            for attr in table.attributes
        ),
        tuple(table.primary_key),
        tuple(
            (fk.columns, fk.ref_table, fk.ref_columns, fk.name)
            for fk in table.foreign_keys
        ),
        tuple(
            (ix.columns, ix.name, ix.unique, ix.kind)
            for ix in table.indexes
        ),
        tuple(table.options.items()),
    )


def _encode_heartbeat(hb) -> tuple:
    return (hb.start.year, hb.start.month, tuple(hb.values), hb.label)


def encode_mined(payload) -> tuple:
    """``MinedProject`` → a pure-primitive tuple tree."""
    table_pool: dict[int, int] = {}
    table_items: list[tuple] = []
    type_pool: dict[tuple, int] = {}
    type_items: list[tuple] = []

    def table_index(table) -> int:
        idx = table_pool.get(id(table))
        if idx is None:
            idx = table_pool[id(table)] = len(table_items)
            table_items.append(
                _encode_table(table, type_pool, type_items)
            )
        return idx

    history = payload.history
    sh = history.schema_history
    versions = tuple(
        (
            v.sha,
            v.date.isoformat(),
            v.schema.dialect,
            tuple(table_index(t) for t in v.schema.tables),
            tuple((issue.line, issue.message) for issue in v.issues),
        )
        for v in sh.versions
    )
    transitions = tuple(
        (
            t.index,
            t.date.isoformat(),
            tuple(
                (c.kind.value, c.table, c.attribute, c.detail)
                for c in t.delta.changes
            ),
        )
        for t in sh.transitions
    )
    return (
        payload.name,
        (
            history.name,
            history.ddl_path,
            _encode_heartbeat(history.project_heartbeat),
            _encode_heartbeat(history.schema_heartbeat),
        ),
        tuple(type_items),
        tuple(table_items),
        versions,
        transitions,
        payload.true_taxon.value,
    )


def _decode_table(data: tuple, types: list):
    from ..schema.model import Attribute, ForeignKey, Index, Table

    name, attrs, pk, fks, ixs, options = data
    return Table(
        name=name,
        attributes=[
            Attribute(
                name=a_name,
                data_type=types[type_idx],
                nullable=nullable,
                default=default,
                auto_increment=auto_inc,
                position=position,
            )
            for a_name, type_idx, nullable, default, auto_inc, position
            in attrs
        ],
        primary_key=pk,
        foreign_keys=[
            ForeignKey(
                columns=cols, ref_table=ref, ref_columns=ref_cols, name=n
            )
            for cols, ref, ref_cols, n in fks
        ],
        indexes=[
            Index(columns=cols, name=n, unique=unique, kind=kind)
            for cols, n, unique, kind in ixs
        ],
        options=dict(options),
    )


def _decode_heartbeat(data: tuple):
    from ..heartbeat import Heartbeat, Month

    year, month, values, label = data
    return Heartbeat(start=Month(year, month), values=list(values),
                     label=label)


def decode_mined(data: tuple):
    """The inverse of :func:`encode_mined` (shared tables restored)."""
    from ..diff.changes import AtomicChange, ChangeKind, SchemaDelta
    from ..mining.history import (
        SchemaHistory,
        SchemaTransition,
        SchemaVersion,
    )
    from ..mining.miner import ProjectHistory
    from ..schema import Schema
    from ..schema.types import DataType
    from ..taxa.model import Taxon
    from .stages import MinedProject

    (name, history_head, type_items, table_items, versions, transitions,
     taxon_value) = data
    types = [
        DataType(family=family, params=params, is_array=is_array,
                 unsigned=unsigned, raw=raw)
        for family, params, is_array, unsigned, raw in type_items
    ]
    tables = [_decode_table(item, types) for item in table_items]
    decoded_versions = [
        SchemaVersion(
            sha=sha,
            date=datetime.fromisoformat(date_text),
            schema=Schema(
                tables=[tables[i] for i in table_idxs], dialect=dialect
            ),
            issues=[
                _decode_issue(line, message) for line, message in issues
            ],
        )
        for sha, date_text, dialect, table_idxs, issues in versions
    ]
    decoded_transitions = [
        SchemaTransition(
            index=index,
            date=datetime.fromisoformat(date_text),
            delta=SchemaDelta(
                changes=[
                    AtomicChange(
                        kind=ChangeKind(kind_value),
                        table=table,
                        attribute=attribute,
                        detail=detail,
                    )
                    for kind_value, table, attribute, detail in changes
                ]
            ),
        )
        for index, date_text, changes in transitions
    ]
    hist_name, ddl_path, project_hb, schema_hb = history_head
    history = ProjectHistory(
        name=hist_name,
        ddl_path=ddl_path,
        project_heartbeat=_decode_heartbeat(project_hb),
        schema_heartbeat=_decode_heartbeat(schema_hb),
        schema_history=SchemaHistory(
            versions=decoded_versions, transitions=decoded_transitions
        ),
    )
    return MinedProject(
        name=name, history=history, true_taxon=Taxon(taxon_value)
    )


def _decode_issue(line: int, message: str):
    from ..sqlparser import ParseIssue

    return ParseIssue(line, message)


# ----------------------------------------------------------------------
# codec registry (store-facing)

_CODECS = {MINE_CODEC: (encode_mined, decode_mined)}


def encode_payload(codec: str, payload):
    """Encode ``payload`` with the named codec (KeyError on unknown)."""
    return _CODECS[codec][0](payload)


def decode_payload(codec: str, data):
    """Decode ``data`` with the named codec (KeyError on unknown)."""
    return _CODECS[codec][1](data)
