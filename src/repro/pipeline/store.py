"""Pluggable artifact stores backing the stage pipeline.

An artifact is one stage's output — the generated corpus, the mined
histories, the analysis rows, a rendered report — addressed by the
stage fingerprint (:mod:`repro.pipeline.fingerprint`) and carried with
a metadata envelope (stage name, parameters, warnings raised while
computing, the stage's metrics delta and compute seconds), so a warm
run can replay the observability side-channels of the cold one.

Two implementations share the interface:

* :class:`MemoryStore` — a process-local dict; the default, and what
  tests use.  Payloads are stored as live objects (no pickle round
  trip), so repeated lookups return the *same* object — callers treat
  artifacts as immutable, exactly like parse-cache entries.
* :class:`DirStore` — an on-disk store rooted at ``--store-dir`` /
  :data:`STORE_DIR_ENV`.  Entries are single files written atomically
  (temp file + ``os.replace``), each a pickled envelope whose payload
  bytes carry their own SHA-256: a truncated or bit-flipped entry
  fails the digest (or the unpickle) and is treated as a miss with a
  ``store-corrupt`` warning — the pipeline recomputes, it never serves
  bad bytes.  An unusable root degrades to memory-only with a
  ``store-dir-degraded`` warning, mirroring the parse cache.

The atomic pickle-file helpers (:func:`atomic_write_pickle`,
:func:`read_pickle`) are shared with :class:`repro.perf.cache.ParseCache`
— the parse cache is just another client of the same storage idiom.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable enabling the on-disk store for the default store.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Format tag of the on-disk artifact envelope.
ARTIFACT_FORMAT = "repro-artifact-v1"


# ----------------------------------------------------------------------
# shared atomic pickle-file I/O (also used by the parse cache)

def atomic_write_pickle(path: Path, obj: object) -> None:
    """Pickle ``obj`` to ``path`` atomically (temp file + replace).

    Raises ``OSError`` on an unwritable destination — callers decide
    whether that degrades or propagates.
    """
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_pickle(path: Path) -> object | None:
    """Unpickle ``path``; ``None`` on any read/format problem."""
    try:
        with path.open("rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None


# ----------------------------------------------------------------------
# the store interface

@dataclass(frozen=True)
class StoreStats:
    """Monotone counters of one store's life so far."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __add__(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writes=self.writes + other.writes,
            corrupt=self.corrupt + other.corrupt,
        )

    def __sub__(self, other: "StoreStats") -> "StoreStats":
        return StoreStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            writes=self.writes - other.writes,
            corrupt=self.corrupt - other.corrupt,
        )

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class Artifact:
    """One stored stage output: the payload plus its envelope metadata."""

    key: str
    payload: object
    meta: dict = field(default_factory=dict)


class ArtifactStore:
    """Interface + shared counters; concrete stores implement `_raw_*`."""

    kind = "null"

    def __init__(self) -> None:
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt = 0

    @property
    def stats(self) -> StoreStats:
        return StoreStats(
            hits=self._hits,
            misses=self._misses,
            writes=self._writes,
            corrupt=self._corrupt,
        )

    # -- the public protocol -------------------------------------------
    def get(self, key: str) -> Artifact | None:
        """The artifact under ``key``, or ``None`` (counted as a miss)."""
        artifact = self._raw_get(key)
        if artifact is None:
            self._misses += 1
        else:
            self._hits += 1
        return artifact

    def put(self, key: str, payload: object, meta: dict | None = None
            ) -> Artifact:
        """Store a payload; returns the stored artifact."""
        artifact = Artifact(key=key, payload=payload, meta=dict(meta or {}))
        self._raw_put(artifact)
        self._writes += 1
        return artifact

    def contains(self, key: str) -> bool:
        """Whether ``key`` is present — no hit/miss accounting."""
        raise NotImplementedError

    def meta_of(self, key: str) -> dict | None:
        """The envelope meta under ``key`` without touching the payload.

        Introspection only (like :meth:`contains`): no hit/miss
        accounting, and implementations avoid materialising the payload
        where they can — the stage-version drift guard reads metas for
        every stage and must not deserialise whole corpus shards to do
        it.  ``None`` when absent or unreadable.
        """
        artifact = self._raw_get(key)
        return None if artifact is None else dict(artifact.meta)

    def delete(self, key: str) -> bool:
        """Drop ``key``; True when an entry was actually removed."""
        raise NotImplementedError

    def keys(self) -> list[str]:
        raise NotImplementedError

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = 0
        for key in self.keys():
            removed += bool(self.delete(key))
        return removed

    def size_of(self, key: str) -> int | None:
        """Approximate stored size in bytes, when knowable."""
        return None

    # -- implemented by subclasses -------------------------------------
    def _raw_get(self, key: str) -> Artifact | None:
        raise NotImplementedError

    def _raw_put(self, artifact: Artifact) -> None:
        raise NotImplementedError


class MemoryStore(ArtifactStore):
    """Process-local artifact store (the default; also the test double)."""

    kind = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._entries: dict[str, Artifact] = {}

    def _raw_get(self, key: str) -> Artifact | None:
        return self._entries.get(key)

    def _raw_put(self, artifact: Artifact) -> None:
        self._entries[artifact.key] = artifact

    def contains(self, key: str) -> bool:
        return key in self._entries

    def delete(self, key: str) -> bool:
        return self._entries.pop(key, None) is not None

    def keys(self) -> list[str]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class DirStore(ArtifactStore):
    """On-disk artifact store shared across processes and runs.

    Layout: ``root/objects/<key[:2]>/<key>.pkl``, one envelope file per
    artifact.  The envelope records the payload bytes *and* their
    SHA-256, so corruption is detected before any payload object is
    materialised.  When the root is unusable the store degrades to a
    memory-backed one (with a warning) rather than failing the run.
    """

    kind = "dir"

    def __init__(self, root: str | Path):
        super().__init__()
        self.root: Path | None = None
        self._memory: dict[str, Artifact] = {}
        self._degrade_warned = False
        try:
            (Path(root) / "objects").mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            self._warn_degraded(root, exc)
        else:
            self.root = Path(root)

    # -- warnings ------------------------------------------------------
    def _warn_degraded(self, root, exc: OSError) -> None:
        if self._degrade_warned:
            return
        self._degrade_warned = True
        from ..obs.events import warn

        warn(
            "store-dir-degraded",
            f"artifact store dir {str(root)!r} unusable "
            f"({exc.__class__.__name__}: {exc}); running memory-only",
            store_dir=str(root),
        )

    def _warn_corrupt(self, key: str, path: Path, reason: str) -> None:
        self._corrupt += 1
        from ..obs.events import warn

        warn(
            "store-corrupt",
            f"artifact {key[:12]} unreadable ({reason}); "
            "entry dropped, stage will recompute",
            key=key,
            path=str(path),
        )
        try:
            path.unlink()
        except OSError:
            pass

    # -- layout --------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        assert self.root is not None
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    # -- protocol ------------------------------------------------------
    def _raw_get(self, key: str) -> Artifact | None:
        if self.root is None:
            return self._memory.get(key)
        path = self._path_for(key)
        if not path.exists():
            return None
        envelope = read_pickle(path)
        if not isinstance(envelope, dict):
            self._warn_corrupt(key, path, "not an artifact envelope")
            return None
        if (
            envelope.get("format") != ARTIFACT_FORMAT
            or envelope.get("key") != key
        ):
            self._warn_corrupt(key, path, "envelope header mismatch")
            return None
        payload_bytes = envelope.get("payload")
        digest = envelope.get("payload_sha256")
        if (
            not isinstance(payload_bytes, bytes)
            or hashlib.sha256(payload_bytes).hexdigest() != digest
        ):
            self._warn_corrupt(key, path, "payload digest mismatch")
            return None
        try:
            payload = pickle.loads(payload_bytes)
        except Exception:  # digest passed but unpicklable: treat as corrupt
            self._warn_corrupt(key, path, "payload does not unpickle")
            return None
        codec = envelope.get("codec")
        if codec is not None:
            from .codec import decode_payload

            try:
                payload = decode_payload(codec, payload)
            except Exception:
                # unknown codec name or undecodable bytes: recompute,
                # never serve a half-decoded payload
                self._warn_corrupt(key, path, f"payload codec {codec!r}")
                return None
        return Artifact(
            key=key, payload=payload, meta=dict(envelope.get("meta") or {})
        )

    def _raw_put(self, artifact: Artifact) -> None:
        if self.root is None:
            self._memory[artifact.key] = artifact
            return
        payload = artifact.payload
        codec = artifact.meta.get("codec")
        if codec is not None:
            from .codec import encode_payload

            payload = encode_payload(codec, payload)
        payload_bytes = pickle.dumps(
            payload, protocol=pickle.HIGHEST_PROTOCOL
        )
        envelope = {
            "format": ARTIFACT_FORMAT,
            "key": artifact.key,
            "meta": artifact.meta,
            "payload_sha256": hashlib.sha256(payload_bytes).hexdigest(),
            "payload": payload_bytes,
        }
        if codec is not None:
            envelope["codec"] = codec
        path = self._path_for(artifact.key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_pickle(path, envelope)
        except OSError as exc:
            # a read-only or full store keeps the artifact in memory
            self._warn_degraded(path.parent, exc)
            self._memory[artifact.key] = artifact

    def contains(self, key: str) -> bool:
        if self.root is None:
            return key in self._memory
        return key in self._memory or self._path_for(key).exists()

    def meta_of(self, key: str) -> dict | None:
        if key in self._memory:
            return dict(self._memory[key].meta)
        if self.root is None:
            return None
        path = self._path_for(key)
        if not path.exists():
            return None
        envelope = read_pickle(path)
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != ARTIFACT_FORMAT
            or envelope.get("key") != key
        ):
            return None
        # the payload stays opaque bytes — metas are cheap to sweep
        return dict(envelope.get("meta") or {})

    def delete(self, key: str) -> bool:
        removed = self._memory.pop(key, None) is not None
        if self.root is not None:
            path = self._path_for(key)
            if path.exists():
                try:
                    path.unlink()
                    removed = True
                except OSError:
                    pass
        return removed

    def keys(self) -> list[str]:
        found = set(self._memory)
        if self.root is not None:
            found.update(
                path.stem
                for path in (self.root / "objects").glob("*/*.pkl")
            )
        return sorted(found)

    def size_of(self, key: str) -> int | None:
        if self.root is None:
            return None
        path = self._path_for(key)
        try:
            return path.stat().st_size
        except OSError:
            return None


# ----------------------------------------------------------------------
# the process-global default store

_active: ArtifactStore | None = None


def get_store() -> ArtifactStore:
    """The process's active artifact store (created on first use).

    Honours :data:`STORE_DIR_ENV` at creation time, so library calls and
    CLI invocations alike resolve through the same disk store when one
    is configured in the environment.
    """
    global _active
    if _active is None:
        store_dir = os.environ.get(STORE_DIR_ENV) or None
        _active = DirStore(store_dir) if store_dir else MemoryStore()
    return _active


def configure_store(store_dir: str | Path | None = None) -> ArtifactStore:
    """Replace the active store (fresh counters, optional disk root).

    Also exports :data:`STORE_DIR_ENV` so worker processes spawned later
    agree on the store location (workers never write artifacts — stages
    are driver-side — but the manifest they help build records it).
    """
    global _active
    if store_dir is not None:
        os.environ[STORE_DIR_ENV] = str(store_dir)
        _active = DirStore(store_dir)
    else:
        os.environ.pop(STORE_DIR_ENV, None)
        _active = MemoryStore()
    return _active
