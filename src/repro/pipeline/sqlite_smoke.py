"""The ``make sqlite-smoke`` entry point: the workload contract.

``python -m repro.pipeline.sqlite_smoke`` runs the scaled-down study
under the sqlite workload (``--dialect sqlite``) cold into a temporary
on-disk artifact store, then checks the (dialect, source) plumbing end
to end:

1. the cold sqlite run recomputes every shard and reduce stage and
   persists one artifact per planned key — the full DAG executes under
   a non-default workload with zero reduce-stage changes;
2. a warm serial rerun is **byte-identical** and serves everything from
   the store (zero recomputes), and a warm ``jobs=4`` rerun replays the
   same bytes — parallelism is not a fingerprint input for workloads
   either;
3. sqlite and canonical plans never share a store key: the dialect is a
   shard-identity component, so the two studies co-exist in one store
   without cross-talk (and the sqlite report differs from canonical —
   the workload actually changed the corpus);
4. every mined history under the sqlite source detects as sqlite and
   the generated DDL carries the dialect's conventions (PRAGMA
   preamble);
5. ``pipeline explain`` against the warm canonical artifacts attributes
   the workload switch to ``params.dialect`` on the generate shards;
6. artifact meta and the run registry carry the (dialect, source) pair
   for sqlite runs and stay shape-identical for canonical ones.

Exit status 0 on success, 1 with a diagnosis on the first violation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from .smoke import SMOKE_JOBS, SMOKE_SCALE, SMOKE_SEED

DIALECT = "sqlite"


def main() -> int:
    from ..obs.events import reset_recorder
    from ..obs.metrics import reset_metrics
    from .graph import Pipeline
    from .stages import MAP_STAGE_NAMES, REDUCE_STAGE_NAMES
    from .store import DirStore

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    with tempfile.TemporaryDirectory(prefix="repro-sqlite-smoke-") as tmp:
        store_dir = Path(tmp) / "artifacts"

        def pipeline(jobs: int = 1, **kwargs) -> Pipeline:
            reset_recorder()
            reset_metrics()
            kwargs.setdefault("seed", SMOKE_SEED)
            kwargs.setdefault("dialect", DIALECT)
            return Pipeline(
                scale=SMOKE_SCALE,
                jobs=jobs,
                store=DirStore(store_dir),
                **kwargs,
            )

        # 1. cold: the full DAG executes under the sqlite workload
        cold = pipeline()
        cold_text = cold.report()
        shards = cold.shards()
        n = len(shards)
        totals = cold.timings.artifact_totals
        expected_cold = len(MAP_STAGE_NAMES) * n + len(REDUCE_STAGE_NAMES)
        check(totals.hits == 0, f"cold sqlite run claimed {totals.hits} hits")
        check(
            totals.recomputes == expected_cold,
            f"cold sqlite run recomputed {totals.recomputes} artifacts, "
            f"expected {expected_cold} ({n} shards)",
        )
        check(
            all(
                shard.identity.get("dialect") == DIALECT
                for shard in shards
            ),
            "some sqlite shard identity lost its dialect component",
        )

        # 2. warm serial and warm parallel replay byte-identically
        warm = pipeline()
        warm.study()
        check(
            warm.report() == cold_text,
            "warm serial sqlite report differs from the cold run",
        )
        check(
            warm.timings.artifact_totals.recomputes == 0,
            "warm serial sqlite run recomputed a clean stage",
        )
        warm_parallel = pipeline(jobs=SMOKE_JOBS)
        warm_parallel.study()
        check(
            warm_parallel.report() == cold_text,
            f"warm jobs={SMOKE_JOBS} sqlite report differs from the "
            "cold run",
        )
        check(
            warm_parallel.timings.artifact_totals.recomputes == 0,
            f"warm jobs={SMOKE_JOBS} sqlite run recomputed a clean stage",
        )

        # 3. canonical and sqlite studies co-exist keyed apart
        sqlite_keys = set(warm.store.keys())
        canonical = pipeline(dialect=None)
        canonical_text = canonical.report()
        canonical_keys = set(canonical.store.keys()) - sqlite_keys
        check(
            len(canonical_keys) == expected_cold,
            "the canonical run over a sqlite-warm store shared a key "
            "with the sqlite study",
        )
        check(
            canonical_text != cold_text,
            "the sqlite report is byte-identical to canonical — the "
            "workload changed nothing",
        )

        # 4. the generated corpus really is sqlite-dialected, and the
        # sqlite history source mines it as such
        study = warm.study()
        check(
            len(study.projects) + len(study.skipped) == n,
            "the sqlite study lost or duplicated projects",
        )
        from ..corpus import generate_corpus
        from ..corpus.profiles import scaled_profiles
        from ..mining import get_source
        from ..sqlparser import detect_dialect

        corpus = generate_corpus(
            seed=SMOKE_SEED,
            profiles=scaled_profiles(SMOKE_SCALE),
            dialect=DIALECT,
        )
        _, history = get_source(DIALECT).mine_schema_history(
            corpus[0].repository
        )
        check(
            all(
                version.schema.dialect == DIALECT
                for version in history.versions
            ),
            "the sqlite source mined a non-sqlite schema version",
        )
        check(
            all(
                detect_dialect(version) == DIALECT
                for project in corpus
                for version in project.ddl_versions
            ),
            "a generated sqlite DDL version does not detect as sqlite",
        )
        check(
            all(
                "PRAGMA foreign_keys" in project.ddl_versions[-1]
                for project in corpus
            ),
            "a generated sqlite DDL lost the PRAGMA preamble",
        )

        # 5. explain attributes the workload switch to params.dialect
        probe = pipeline()
        (gen_rec,) = probe.explain("generate", project=shards[0].project)
        check(
            gen_rec["state"] == "warm",
            "a warm sqlite plan should explain its generate shard warm",
        )
        # canonical store is warm too (step 3), so the *canonical* plan
        # explained against it is warm while the sqlite plan diffing a
        # canonical artifact names params.dialect: rebuild a store with
        # only canonical artifacts to force that match
        with tempfile.TemporaryDirectory(
            prefix="repro-sqlite-smoke-canon-"
        ) as tmp2:
            canon_store = DirStore(Path(tmp2) / "artifacts")
            reset_recorder()
            reset_metrics()
            Pipeline(
                seed=SMOKE_SEED, scale=SMOKE_SCALE, store=canon_store
            ).report()
            reset_recorder()
            reset_metrics()
            switcher = Pipeline(
                seed=SMOKE_SEED,
                scale=SMOKE_SCALE,
                store=canon_store,
                dialect=DIALECT,
            )
            (switch_rec,) = switcher.explain(
                "generate", project=shards[0].project
            )
            components = [
                c["component"] for c in switch_rec["causes"]
            ]
            check(
                switch_rec["state"] == "stale"
                and "params.dialect" in components,
                "switching workloads over a warm canonical store "
                "should blame params.dialect, got "
                f"{switch_rec['state']}/{components}",
            )

        # 6. artifact meta and registry records carry (dialect, source)
        meta = warm.store.meta_of(shards[0].keys["generate"]) or {}
        check(
            meta.get("dialect") == DIALECT
            and meta.get("source") == DIALECT,
            f"sqlite shard meta lost the (dialect, source) pair: {meta}",
        )
        canon_meta = canonical.store.meta_of(
            canonical.shards()[0].keys["generate"]
        ) or {}
        check(
            "dialect" not in canon_meta and "source" not in canon_meta,
            "canonical shard meta grew workload keys — old stores are "
            f"no longer shape-identical: {canon_meta}",
        )
        from ..obs.registry import RunRegistry, build_run_record

        registry = RunRegistry(store_dir)
        registry.append(build_run_record(
            command="sqlite-smoke", study=study,
            seed=SMOKE_SEED, scale=SMOKE_SCALE, dialect=DIALECT,
        ))
        registry.append(build_run_record(
            command="sqlite-smoke", study=canonical.study(),
            seed=SMOKE_SEED, scale=SMOKE_SCALE,
        ))
        sqlite_rec, canon_rec = registry.records()[-2:]
        check(
            sqlite_rec.get("dialect") == DIALECT
            and "dialect" not in canon_rec,
            "registry records mis-carry the workload dialect",
        )

    reset_recorder()
    reset_metrics()
    if failures:
        for failure in failures:
            print(f"sqlite-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "sqlite-smoke ok: the sqlite workload ran the full DAG cold "
        f"({len(MAP_STAGE_NAMES)}x{n}+{len(REDUCE_STAGE_NAMES)} artifacts) "
        f"and replayed byte-identical warm, serial and jobs={SMOKE_JOBS}; "
        "sqlite and canonical studies co-exist keyed apart in one store; "
        "every history mines as sqlite; explain blames params.dialect on "
        "a workload switch; meta and registry carry (dialect, source) "
        "only for non-default runs"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
