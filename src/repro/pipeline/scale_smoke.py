"""The ``make scale-smoke`` entry point: the bounded-memory contract.

``python -m repro.pipeline.scale_smoke`` runs a sized-up study —
``REPRO_SCALE_SMOKE_PROJECTS`` projects, default 2000 — cold into a
temporary on-disk artifact store **under a memory cap**
(``REPRO_SCALE_SMOKE_LIMIT_MB``, default 512), then re-resolves it
warm, and checks the streaming-execution contract end to end:

1. the cold run finishes under ``--limit-memory`` without tripping the
   watchdog, and the driver's peak RSS recorded in the timings payload
   (what the run manifest carries) stays below the cap;
2. the backpressure window actually bounded the fan-out: the streaming
   block reports every shard submitted through the window and an
   in-flight high-water mark no larger than the initial window;
3. the aggregate accumulator spilled row batches to disk (the cap turns
   the spill on; at this corpus size at least one batch must hit disk)
   and the spilled fold still produced a well-formed study;
4. a warm rerun under the same cap is **byte-identical** to the cold
   run and recomputes nothing — streaming changed scheduling, never
   artifact bytes.

Exit status 0 on success, 1 with a diagnosis on the first violation.
The corpus size and cap are env-tunable so CI can dial the gate.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

#: Env overrides for the gate's corpus size and memory cap.
PROJECTS_ENV = "REPRO_SCALE_SMOKE_PROJECTS"
LIMIT_MB_ENV = "REPRO_SCALE_SMOKE_LIMIT_MB"

DEFAULT_PROJECTS = 2000
DEFAULT_LIMIT_MB = 512
SMOKE_SEED = 195_2023

#: Spill batches are 1024 rows; above this corpus size the cold
#: aggregate must have written at least one batch to disk.
SPILL_ASSERT_FLOOR = 1200


def main() -> int:
    from ..mining.aggregates import AggregateAccumulator
    from ..obs.events import reset_recorder
    from ..obs.metrics import reset_metrics
    from .graph import Pipeline
    from .store import DirStore

    n_projects = int(os.environ.get(PROJECTS_ENV, DEFAULT_PROJECTS))
    limit_mb = int(os.environ.get(LIMIT_MB_ENV, DEFAULT_LIMIT_MB))
    spill_batch = AggregateAccumulator().spill_batch

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    with tempfile.TemporaryDirectory(prefix="repro-scale-smoke-") as tmp:
        store_dir = Path(tmp) / "artifacts"

        def pipeline() -> Pipeline:
            reset_recorder()
            reset_metrics()
            return Pipeline(
                seed=SMOKE_SEED,
                projects=n_projects,
                limit_memory_mb=limit_mb,
                store=DirStore(store_dir),
            )

        # 1. cold under the cap: finishes, and the manifest-visible
        # driver peak stays below the limit
        cold = pipeline()
        cold_text = cold.report()
        cold.study()
        payload = cold.timings.as_dict()
        check(
            cold.n_projects() == n_projects,
            f"sized corpus holds {cold.n_projects()} projects, "
            f"expected {n_projects}",
        )
        resources = payload.get("resources") or {}
        peak = resources.get("peak_rss_bytes")
        driver_peak = (
            (resources.get("scopes") or {})
            .get("driver", {})
            .get("peak_rss_bytes")
        )
        check(
            peak is not None and driver_peak is not None,
            "the cold run recorded no RSS telemetry",
        )
        cap_bytes = limit_mb * 2**20
        if driver_peak is not None:
            check(
                driver_peak < cap_bytes,
                f"driver peak RSS {driver_peak / 2**20:.0f} MiB breaches "
                f"the {limit_mb} MiB cap",
            )

        # 2. the window bounded the fan-out
        streaming = payload.get("streaming") or {}
        window = streaming.get("window")
        check(
            window is not None,
            "the cold run recorded no streaming window block",
        )
        if window is not None:
            check(
                window["submitted"] == n_projects,
                f"window submitted {window['submitted']} shards, "
                f"expected {n_projects}",
            )
            check(
                0 < window["max_in_flight"] <= window["initial"],
                f"in-flight high-water {window['max_in_flight']} exceeds "
                f"the initial window {window['initial']}",
            )
        check(
            "memory_watchdog" in streaming,
            "the capped run recorded no watchdog state",
        )

        # 3. the capped aggregate spilled at least one row batch
        if n_projects >= max(SPILL_ASSERT_FLOOR, spill_batch + 1):
            spill = streaming.get("aggregate_spill")
            check(
                spill is not None and spill["spilled_rows"] >= spill_batch,
                f"a {n_projects}-project capped fold should spill "
                f">= {spill_batch} rows, got {spill}",
            )
        study = cold._study
        check(
            study is not None
            and len(study.projects) + len(study.skipped) == n_projects,
            "the spilled fold lost or duplicated projects",
        )

        # 4. warm rerun under the same cap: byte-identical, zero work
        warm = pipeline()
        warm.study()
        check(
            warm.report() == cold_text,
            "the warm capped rerun is not byte-identical to the cold run",
        )
        check(
            warm.timings.artifact_totals.recomputes == 0,
            "the warm capped rerun recomputed a clean stage",
        )

    reset_recorder()
    reset_metrics()
    if failures:
        for failure in failures:
            print(f"scale-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    peak_mib = (peak or 0) / 2**20
    print(
        f"scale-smoke ok: {n_projects} projects under a {limit_mb} MiB "
        f"cap (peak RSS {peak_mib:.0f} MiB); window held "
        f"{window['max_in_flight']}/{window['initial']} in flight over "
        f"{window['submitted']} shards; aggregate spilled "
        f"{(streaming.get('aggregate_spill') or {}).get('spilled_rows', 0)} "
        "rows; warm rerun byte-identical with zero recomputes"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
