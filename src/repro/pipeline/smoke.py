"""The ``make pipeline-smoke`` entry point: the warm-replay contract.

``python -m repro.pipeline.smoke`` runs a scaled-down study cold into a
temporary on-disk artifact store, then re-resolves it warm — serial and
with ``jobs=4`` — and checks the incremental-study contract end to end:

1. the cold run recomputes every map shard and every reduce stage (no
   phantom hits) and persists one artifact per shard per map stage plus
   one per reduce stage;
2. a warm serial rerun is **byte-identical** to the cold run and serves
   everything from the store: the warm ``aggregate`` hit short-circuits
   the whole map phase (zero shard lookups), zero recomputes anywhere;
3. a warm ``jobs=4`` rerun reuses the *same* artifacts — parallelism is
   not a fingerprint input — and is byte-identical too;
4. the warm run's hit rate surfaces in the timings payload (what the
   manifest and ``BENCH_study.json`` carry for ``repro bench-check``);
5. a code-version bump dirties exactly the dependent cone: bumping
   ``figures`` leaves ``aggregate`` and ``statistics`` warm;
6. changing the seed re-keys every stage fingerprint;
7. **incremental**: mutating one project's seed against the warm store
   recomputes exactly that project's generate/mine/analyze shards plus
   the reduce tail — every other shard serves warm — and a second run
   of the same mutation replays fully warm;
8. **provenance explain** attributes each recompute to its true cause:
   a warm plan explains all-warm, a project override blames the
   upstream generate digest (on mine) and the identity params (on
   generate), and a stage version bump blames ``code_version``;
9. the **run registry** accepts one record per run and folds a
   median-of-history baseline that ``bench-check --against-history``
   can consume.

Exit status 0 on success, 1 with a diagnosis on the first violation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

#: Same shrink factor as the obs smoke: 195 projects / 16 ≈ 12.
SMOKE_SCALE = 16
SMOKE_SEED = 195_2023
SMOKE_JOBS = 4


def main() -> int:
    from ..obs.events import reset_recorder
    from ..obs.metrics import reset_metrics
    from .graph import Pipeline
    from .stages import MAP_STAGE_NAMES, REDUCE_STAGE_NAMES, STAGE_NAMES
    from .store import DirStore

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    with tempfile.TemporaryDirectory(prefix="repro-pipeline-smoke-") as tmp:
        store_dir = Path(tmp) / "artifacts"

        def pipeline(jobs: int = 1, **kwargs) -> Pipeline:
            reset_recorder()
            reset_metrics()
            kwargs.setdefault("seed", SMOKE_SEED)
            return Pipeline(
                scale=SMOKE_SCALE,
                jobs=jobs,
                store=DirStore(store_dir),
                **kwargs,
            )

        # 1. cold: every shard and stage recomputes, everything persists
        cold = pipeline()
        cold_text = cold.report()
        shards = cold.shards()
        n = len(shards)
        totals = cold.timings.artifact_totals
        expected_cold = len(MAP_STAGE_NAMES) * n + len(REDUCE_STAGE_NAMES)
        check(totals.hits == 0, f"cold run claimed {totals.hits} hits")
        check(
            totals.recomputes == expected_cold,
            f"cold run recomputed {totals.recomputes} artifacts, "
            f"expected {expected_cold} ({n} shards)",
        )
        expected_keys = sorted(
            [
                shard.keys[stage]
                for shard in shards
                for stage in MAP_STAGE_NAMES
            ]
            + [cold.fingerprint(stage) for stage in REDUCE_STAGE_NAMES]
        )
        check(
            sorted(cold.store.keys()) == expected_keys,
            "cold store contents do not match the planned shard and "
            "reduce keys",
        )

        # 2. warm serial: byte-identical, aggregate hit skips the map
        warm = pipeline()
        warm.study()
        warm_text = warm.report()
        check(
            warm_text == cold_text,
            "warm serial report differs from the cold run",
        )
        for stage in REDUCE_STAGE_NAMES:
            stats = warm.timings.artifacts.get(stage)
            check(
                stats is not None and stats.hits >= 1,
                f"warm serial run did not hit the {stage} artifact",
            )
        for stage in MAP_STAGE_NAMES:
            check(
                stage not in warm.timings.artifacts,
                f"warm serial run probed {stage} shards despite the "
                "warm aggregate",
            )
        check(
            warm.timings.artifact_totals.recomputes == 0,
            "warm serial run recomputed a clean stage",
        )

        # 3. warm parallel: jobs is not a fingerprint input
        warm_parallel = pipeline(jobs=SMOKE_JOBS)
        warm_parallel.study()
        check(
            warm_parallel.report() == cold_text,
            f"warm jobs={SMOKE_JOBS} report differs from the cold run",
        )
        check(
            warm_parallel.timings.artifact_totals.recomputes == 0,
            f"warm jobs={SMOKE_JOBS} run recomputed a clean stage",
        )

        # 4. the hit rate the manifest / BENCH payload will carry
        payload = warm.timings.as_dict()
        store_block = payload.get("artifact_store")
        check(
            store_block is not None and store_block["hit_rate"] == 1.0,
            f"warm run hit rate not 1.0 in timings payload: {store_block}",
        )

        # 5. a code-version bump dirties exactly the dependent cone
        bumped = pipeline(code_versions={"figures": "smoke"})
        bumped.study()
        stats = bumped.timings.artifacts
        check(
            stats.get("aggregate") is not None
            and stats["aggregate"].hits == 1,
            "aggregate should stay warm under a figures version bump",
        )
        check(
            stats.get("figures") is not None
            and stats["figures"].recomputes == 1,
            "figures should recompute under its own version bump",
        )
        check(
            stats.get("statistics") is not None
            and stats["statistics"].hits == 1,
            "statistics should stay warm under a figures version bump",
        )

        # 6. the seed re-keys everything
        reseeded = pipeline(seed=SMOKE_SEED + 1)
        check(
            all(
                reseeded.fingerprint(stage) != cold.fingerprint(stage)
                for stage in STAGE_NAMES
            ),
            "a seed change left some stage fingerprint unchanged",
        )

        # 7. incremental: one mutated project recomputes exactly its
        # map cone plus the reduce tail against the warm store
        target = shards[0].project
        override = {target: SMOKE_SEED + 999}
        touched = pipeline(project_overrides=override)
        touched.study()
        touched_text = touched.report()
        stats = touched.timings.artifacts
        for stage in MAP_STAGE_NAMES:
            got = stats.get(stage)
            check(
                got is not None and got.recomputes == 1,
                f"mutating {target} should recompute exactly one "
                f"{stage} shard, got {got}",
            )
        check(
            stats.get("analyze") is not None
            and stats["analyze"].hits == n - 1,
            f"mutating {target} should serve {n - 1} analyze shards "
            f"warm, got {stats.get('analyze')}",
        )
        for stage in ("generate", "mine"):
            check(
                stats.get(stage) is not None and stats[stage].hits == 0,
                f"warm analyze shards should never probe {stage} keys",
            )
        for stage in REDUCE_STAGE_NAMES:
            got = stats.get(stage)
            check(
                got is not None and got.recomputes == 1,
                f"mutating {target} should recompute the {stage} "
                f"reduce stage, got {got}",
            )
        study = touched._study
        check(
            study is not None
            and len(study.projects) + len(study.skipped) == n,
            "the mutated run lost or duplicated projects",
        )

        # ... and re-running the same mutation replays fully warm
        retouched = pipeline(project_overrides=override)
        retouched.study()
        check(
            retouched.report() == touched_text,
            "re-running the mutated corpus is not byte-identical",
        )
        check(
            retouched.timings.artifact_totals.recomputes == 0,
            "re-running the mutated corpus recomputed a clean stage",
        )

        # 8. provenance explain names the true recompute cause
        explained = retouched.explain("mine")
        check(
            all(r["state"] == "warm" for r in explained),
            "a fully warm plan should explain every mine shard warm",
        )
        probe = pipeline(
            project_overrides={target: SMOKE_SEED + 1000}
        )
        (mine_rec,) = probe.explain("mine", project=target)
        check(
            mine_rec["state"] == "stale"
            and [c["component"] for c in mine_rec["causes"]]
            == ["upstream.generate"],
            "a project override should blame exactly the upstream "
            f"generate digest on its mine shard, got {mine_rec}",
        )
        (gen_rec,) = probe.explain("generate", project=target)
        check(
            gen_rec["state"] == "stale"
            and gen_rec["causes"]
            and all(
                c["component"].startswith("params.")
                for c in gen_rec["causes"]
            ),
            "a project override should blame the identity params on "
            f"its generate shard, got {gen_rec}",
        )
        bump = pipeline(code_versions={"mine": "smoke"})
        bump_records = bump.explain("mine")
        check(
            bump_records
            and all(
                r["state"] == "stale"
                and [c["component"] for c in r["causes"]]
                == ["code_version"]
                for r in bump_records
            ),
            "a mine version bump should blame code_version on every "
            "mine shard",
        )

        # 9. the run registry accumulates records and folds a baseline
        from ..obs.registry import (
            RunRegistry,
            build_run_record,
            history_baseline,
        )
        from ..obs.regress import sample_from_dict

        registry = RunRegistry(store_dir)
        for run in (cold, warm, retouched):
            registry.append(build_run_record(
                command="smoke", study=run.study(),
                seed=SMOKE_SEED, scale=SMOKE_SCALE,
            ))
        check(
            len(registry) == 3,
            f"registry holds {len(registry)} records, expected 3",
        )
        baseline = sample_from_dict(
            history_baseline(registry.records(limit=3)),
            source="history-median[3]",
        )
        check(
            baseline.stages.get("total", 0) > 0,
            "the median-of-history baseline lost the total stage row",
        )
        check(
            (baseline.peak_rss_bytes or 0) > 0,
            "the median-of-history baseline lost the peak-RSS figure",
        )

    reset_recorder()
    reset_metrics()
    if failures:
        for failure in failures:
            print(f"pipeline-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "pipeline-smoke ok: cold run persisted "
        f"{len(MAP_STAGE_NAMES)}x{n}+{len(REDUCE_STAGE_NAMES)} artifacts; "
        f"warm serial and jobs={SMOKE_JOBS} replays byte-identical with a "
        "100% hit rate and zero shard probes; version bump and reseed "
        "invalidate exactly their cones; a one-project mutation recomputes "
        "one shard per map stage plus the reduce tail; explain attributes "
        "override/version-bump/identity causes correctly; the run registry "
        "folds a 3-record median baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
