"""The ``make pipeline-smoke`` entry point: the warm-replay contract.

``python -m repro.pipeline.smoke`` runs a scaled-down study cold into a
temporary on-disk artifact store, then re-resolves it warm — serial and
with ``jobs=4`` — and checks the incremental-study contract end to end:

1. the cold run recomputes every stage (no phantom hits) and persists
   one artifact per resolved stage;
2. a warm serial rerun is **byte-identical** to the cold run and serves
   every clean stage from the store (at least one artifact hit per
   stage, zero recomputes);
3. a warm ``jobs=4`` rerun reuses the *same* artifacts — parallelism is
   not a fingerprint input — and is byte-identical too;
4. the warm run's hit rate surfaces in the timings payload (what the
   manifest and ``BENCH_study.json`` carry for ``repro bench-check``);
5. bumping one stage's code version invalidates exactly that stage and
   its dependents: upstream artifacts stay warm;
6. changing the seed re-keys every stage fingerprint.

Exit status 0 on success, 1 with a diagnosis on the first violation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

#: Same shrink factor as the obs smoke: 195 projects / 16 ≈ 12.
SMOKE_SCALE = 16
SMOKE_SEED = 195_2023
SMOKE_JOBS = 4


def main() -> int:
    from ..obs.events import reset_recorder
    from ..obs.metrics import reset_metrics
    from .graph import Pipeline
    from .stages import STAGE_NAMES
    from .store import DirStore

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    with tempfile.TemporaryDirectory(prefix="repro-pipeline-smoke-") as tmp:
        store_dir = Path(tmp) / "artifacts"

        def pipeline(jobs: int = 1, **kwargs) -> Pipeline:
            reset_recorder()
            reset_metrics()
            return Pipeline(
                seed=SMOKE_SEED,
                scale=SMOKE_SCALE,
                jobs=jobs,
                store=DirStore(store_dir),
                **kwargs,
            )

        # 1. cold: every stage recomputes, every stage persists
        cold = pipeline()
        cold_text = cold.report()
        totals = cold.timings.artifact_totals
        check(totals.hits == 0, f"cold run claimed {totals.hits} hits")
        check(
            totals.recomputes == len(STAGE_NAMES),
            f"cold run recomputed {totals.recomputes} stages, "
            f"expected {len(STAGE_NAMES)}",
        )
        check(
            sorted(cold.store.keys())
            == sorted(cold.fingerprint(stage) for stage in STAGE_NAMES),
            "cold store contents do not match the stage fingerprints",
        )

        # 2. warm serial: byte-identical, every clean stage hits
        warm = pipeline()
        warm.study()
        warm_text = warm.report()
        check(
            warm_text == cold_text,
            "warm serial report differs from the cold run",
        )
        for stage in ("analyze", "figures", "statistics", "report"):
            stats = warm.timings.artifacts.get(stage)
            check(
                stats is not None and stats.hits >= 1,
                f"warm serial run did not hit the {stage} artifact",
            )
        check(
            warm.timings.artifact_totals.recomputes == 0,
            "warm serial run recomputed a clean stage",
        )

        # 3. warm parallel: jobs is not a fingerprint input
        warm_parallel = pipeline(jobs=SMOKE_JOBS)
        warm_parallel.study()
        check(
            warm_parallel.report() == cold_text,
            f"warm jobs={SMOKE_JOBS} report differs from the cold run",
        )
        check(
            warm_parallel.timings.artifact_totals.recomputes == 0,
            f"warm jobs={SMOKE_JOBS} run recomputed a clean stage",
        )

        # 4. the hit rate the manifest / BENCH payload will carry
        payload = warm.timings.as_dict()
        store_block = payload.get("artifact_store")
        check(
            store_block is not None and store_block["hit_rate"] == 1.0,
            f"warm run hit rate not 1.0 in timings payload: {store_block}",
        )

        # 5. a code-version bump dirties exactly the dependent cone
        bumped = pipeline(code_versions={"figures": "smoke"})
        bumped.study()
        stats = bumped.timings.artifacts
        check(
            stats.get("analyze") is not None
            and stats["analyze"].hits == 1,
            "analyze should stay warm under a figures version bump",
        )
        check(
            stats.get("figures") is not None
            and stats["figures"].recomputes == 1,
            "figures should recompute under its own version bump",
        )
        check(
            stats.get("statistics") is not None
            and stats["statistics"].hits == 1,
            "statistics should stay warm under a figures version bump",
        )

        # 6. the seed re-keys everything
        reseeded = pipeline()
        reseeded.seed = SMOKE_SEED + 1
        check(
            all(
                reseeded.fingerprint(stage) != cold.fingerprint(stage)
                for stage in STAGE_NAMES
            ),
            "a seed change left some stage fingerprint unchanged",
        )

    reset_recorder()
    reset_metrics()
    if failures:
        for failure in failures:
            print(f"pipeline-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "pipeline-smoke ok: cold run persisted "
        f"{len(STAGE_NAMES)} artifacts; warm serial and jobs={SMOKE_JOBS} "
        "replays byte-identical with a 100% stage hit rate; version bump "
        "and reseed invalidate exactly their cones"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
