"""Content-addressed fingerprints for pipeline stage artifacts.

Every artifact the pipeline stores is keyed by a fingerprint of
*everything that can change its bytes*:

* the stage name;
* the stage's **code version** (a hand-bumped constant in
  :mod:`repro.pipeline.stages` — bump it when a stage's computation
  changes and every artifact of that stage, plus everything downstream,
  is dirty);
* the stage's **declared parameters**, canonicalised as sorted JSON, so
  only the parameters a stage actually consumes participate (the seed
  dirties ``generate`` and — through the upstream digests — everything
  after it; the report format dirties only ``report``);
* the fingerprints of the stage's upstream artifacts, in declared
  dependency order.

Because an upstream fingerprint already determines the upstream bytes,
chaining fingerprints gives the whole-DAG invalidation property without
ever hashing artifact payloads: a changed seed re-keys ``generate`` and
cascades; a bumped ``analyze`` code version re-keys ``analyze`` and its
dependents while ``generate``/``mine`` artifacts stay warm.

The map stages (``generate``/``mine``/``analyze``) are keyed **per
project shard**: each shard's key is a :func:`stage_fingerprint` whose
params are the project's identity (name + spec digest + profile
digest), chained shard-to-shard through the map cone.  A map stage's
*family* fingerprint (:func:`family_fingerprint`) digests its sorted
shard keys, so the reduce stages chain over the whole shard set — edit
one project and exactly one shard per map stage plus the reduce tail
re-keys.
"""

from __future__ import annotations

import hashlib
import json

#: Version tag mixed into every fingerprint; bump to invalidate every
#: artifact ever stored (a format change, not a code change).  v2:
#: per-project shard keys for the map stages, reduce keys chain over
#: the sorted shard digests.
FINGERPRINT_FORMAT = "repro-fingerprint-v2"


def canonical_params(params: dict) -> str:
    """Parameters as deterministic JSON (sorted keys, no whitespace)."""
    return json.dumps(
        params, sort_keys=True, separators=(",", ":"), default=str
    )


def stage_fingerprint(
    stage: str,
    code_version: str,
    params: dict,
    upstream: dict[str, str],
) -> str:
    """The artifact key for one stage instantiation (sha256 hex).

    ``upstream`` maps dependency stage name → that stage's fingerprint;
    the recipe folds them in sorted name order so the result does not
    depend on declaration order.
    """
    hasher = hashlib.sha256()
    for part in (
        FINGERPRINT_FORMAT,
        stage,
        code_version,
        canonical_params(params),
        ",".join(f"{name}={fp}" for name, fp in sorted(upstream.items())),
    ):
        hasher.update(part.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def digest_text(*parts: str) -> str:
    """A content digest over text fragments (corpus-content keying)."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode("utf-8", errors="surrogateescape"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def family_fingerprint(stage: str, shard_keys: list[str] | tuple) -> str:
    """The whole-family digest of one map stage's shard keys.

    Folds the shard keys in *sorted* order, so the family address is a
    function of the shard set, not of corpus iteration order.  This is
    what the reduce stages chain over: any shard key change (one
    project's seed, spec or profile) re-keys the family and therefore
    the whole reduce tail, while the other shards stay warm.  An empty
    corpus is a valid (empty) family.
    """
    return digest_text(
        FINGERPRINT_FORMAT, "shard-family", stage, *sorted(shard_keys)
    )
