"""The typed stages of the study dataflow graph.

The study is a fixed pipeline::

    generate ──► mine ──► analyze ──┬─► figures ──┐
                                    ├─► statistics ┤
                                    └──────────────┴─► report

Each :class:`StageSpec` declares its dependencies, the pipeline
parameters it actually consumes (only those participate in its
fingerprint — the seed dirties ``generate`` and everything downstream,
the report format dirties only ``report``) and a hand-bumped **code
version**: bump the constant when a stage's computation changes and
every stored artifact of that stage, plus everything downstream of it,
is invalidated while upstream artifacts stay warm.

``jobs`` is deliberately *not* a fingerprint parameter: every stage is
jobs-invariant by construction (proven by the serial/parallel
equivalence tests), so a ``--jobs 4`` run may reuse artifacts a serial
run stored and vice versa.

Compute functions receive the owning
:class:`~repro.pipeline.graph.Pipeline` (for parameters, timings and
the fan-out width) plus the payloads of their resolved dependencies,
and return a :class:`StageOutput` carrying the payload and an explicit
metrics delta — explicit because worker-process counters never reach
the driver registry, exactly as in ``run_study``.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable

from ..heartbeat import ZeroTotalError
from ..obs.events import get_recorder, warn
from ..obs.metrics import MetricsSnapshot, get_metrics
from ..obs.progress import ProgressTracker
from ..obs.trace import get_tracer

# Per-stage code versions.  Bump a constant when the stage's computation
# changes in a way that affects its artifact bytes; the fingerprint
# chain invalidates the stage and its dependents, nothing else.
GENERATE_VERSION = "1"
MINE_VERSION = "1"
ANALYZE_VERSION = "1"
FIGURES_VERSION = "1"
STATISTICS_VERSION = "1"
REPORT_VERSION = "1"


@dataclass
class StageOutput:
    """What a stage compute hands back to the graph runner."""

    payload: object
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: True when the compute recorded its own stage seconds (the mine
    #: stage records summed worker seconds, like ``run_study``).
    self_timed: bool = False


@dataclass(frozen=True)
class StageSpec:
    """One node of the stage graph: identity, wiring and compute."""

    name: str
    deps: tuple[str, ...]
    params: tuple[str, ...]
    code_version: str
    compute: Callable


@dataclass
class MinedProject:
    """One entry of the ``mine`` artifact: history plus ground truth.

    Deliberately slimmer than the worker-transport
    :class:`~repro.perf.parallel.MinedHistory` — per-worker seconds,
    cache deltas and span trees are run observability, not artifact
    content, so they live in the artifact *meta*, never the payload.
    """

    name: str
    history: object
    true_taxon: object


# ----------------------------------------------------------------------
# stage computes

def compute_generate(pipe, inputs: dict) -> StageOutput:
    """``generate``: the synthetic corpus for (seed, scale)."""
    from ..corpus.generator import generate_corpus
    from ..corpus.profiles import scaled_profiles

    corpus = generate_corpus(
        seed=pipe.seed, profiles=scaled_profiles(pipe.scale), jobs=pipe.jobs
    )
    # generation may fan out to workers, whose registry increments never
    # reach the driver — record the corpus delta explicitly
    delta = MetricsSnapshot(counters={"projects.generated": len(corpus)})
    return StageOutput(payload=corpus, metrics=delta)


def compute_mine(pipe, inputs: dict) -> StageOutput:
    """``mine``: every project's history, in corpus order.

    Fans out over a ``ProcessPoolExecutor`` when ``pipe.jobs > 1`` with
    the same order-preserving lazy collection as ``run_study``, so the
    artifact is identical for every jobs value.  Worker-summed mine
    seconds and parse-cache deltas flow into the pipeline's timings;
    detached project spans reattach under the driver's stage span.
    """
    from ..perf.parallel import mine_one, pool_chunksize, worker_init

    corpus = inputs["generate"]
    tracer = get_tracer()
    recorder = get_recorder()
    tracker = ProgressTracker("mine", len(corpus), timings=pipe.timings)
    delta = MetricsSnapshot()
    entries: list[MinedProject] = []
    with ExitStack() as stack:
        if pipe.jobs <= 1:
            mined = map(mine_one, corpus)
        else:
            from concurrent.futures import ProcessPoolExecutor

            executor = stack.enter_context(
                ProcessPoolExecutor(
                    max_workers=pipe.jobs, initializer=worker_init
                )
            )
            mined = executor.map(
                mine_one,
                corpus,
                chunksize=pool_chunksize(len(corpus), pipe.jobs),
            )
        for result in mined:
            entries.append(
                MinedProject(
                    name=result.name,
                    history=result.history,
                    true_taxon=result.true_taxon,
                )
            )
            pipe.timings.record("mine", result.seconds)
            pipe.timings.merge_cache(result.cache)
            delta = delta + result.metrics
            if result.trace is not None:
                tracer.attach(result.trace, emit=pipe.jobs > 1)
            if result.warnings and pipe.jobs > 1:
                # worker warnings replay here so the driver's recorder
                # (and any --log-json sink) sees them exactly once
                for record in result.warnings:
                    recorder.replay(record)
            tracker.update(result.name, result.seconds)
    tracker.finish()
    return StageOutput(payload=entries, metrics=delta, self_timed=True)


def compute_analyze(pipe, inputs: dict) -> StageOutput:
    """``analyze``: per-project measures, skips carried in-band.

    Runs driver-side (analysis is orders of magnitude cheaper than
    mining); the empty-history skip decision — and its warning — lives
    here, with the exact message ``run_study`` emits.
    """
    from ..analysis.measures import analyze_project

    registry = get_metrics()
    before = registry.snapshot()
    rows = []
    skipped: list[str] = []
    for item in inputs["mine"]:
        try:
            rows.append(
                analyze_project(item.history, true_taxon=item.true_taxon)
            )
        except ZeroTotalError:
            skipped.append(item.name)
            registry.inc("projects.skipped")
            warn(
                "empty-history",
                f"{item.name}: zero total activity on one side; "
                "project skipped",
                project=item.name,
            )
    return StageOutput(
        payload={"rows": rows, "skipped": skipped},
        metrics=registry.snapshot() - before,
    )


def compute_figures(pipe, inputs: dict) -> StageOutput:
    """``figures``: every default-parameter figure plus the headline."""
    from ..analysis.figures import (
        fig4_sync_histogram,
        fig5_duration_scatter,
        fig6_advance_table,
        fig7_always_advance,
        fig8_attainment,
        headline_numbers,
    )

    rows = inputs["analyze"]["rows"]
    figures = {
        "fig4": fig4_sync_histogram(rows),
        "fig5": fig5_duration_scatter(rows),
        "fig6": fig6_advance_table(rows),
        "fig7": fig7_always_advance(rows),
        "fig8": fig8_attainment(rows),
    }
    figures["headline"] = headline_numbers(
        rows,
        fig4=figures["fig4"],
        fig7=figures["fig7"],
        fig8=figures["fig8"],
    )
    return StageOutput(payload=figures)


def compute_statistics(pipe, inputs: dict) -> StageOutput:
    """``statistics``: the §7 battery, or its error in storable form.

    Tiny corpora legitimately fail the battery (Shapiro-Wilk needs at
    least 3 observations); the artifact stores the outcome either way so
    a warm run replays the same ``ValueError`` without recomputing.
    """
    from ..analysis.statistics import sec7_statistics

    try:
        payload = {"ok": True, "report": sec7_statistics(
            inputs["analyze"]["rows"]
        )}
    except ValueError as exc:
        payload = {"ok": False, "error": str(exc)}
    return StageOutput(payload=payload)


def compute_report(pipe, inputs: dict) -> StageOutput:
    """``report``: the rendered document (``pipe.report_format``)."""
    from ..analysis.study import StudyResult
    from ..report import build_html_report, build_study_report

    study = StudyResult(
        projects=list(inputs["analyze"]["rows"]),
        skipped=list(inputs["analyze"]["skipped"]),
    )
    study.prime_artifacts(
        figures=inputs["figures"], statistics=inputs["statistics"]
    )
    if pipe.report_format == "html":
        text = build_html_report(study)
    else:
        text = build_study_report(study)
    return StageOutput(payload=text)


# ----------------------------------------------------------------------
# the graph

STAGES: dict[str, StageSpec] = {
    spec.name: spec
    for spec in (
        StageSpec(
            "generate", (), ("seed", "scale"),
            GENERATE_VERSION, compute_generate,
        ),
        StageSpec("mine", ("generate",), (), MINE_VERSION, compute_mine),
        StageSpec(
            "analyze", ("mine",), (), ANALYZE_VERSION, compute_analyze,
        ),
        StageSpec(
            "figures", ("analyze",), (), FIGURES_VERSION, compute_figures,
        ),
        StageSpec(
            "statistics", ("analyze",), (),
            STATISTICS_VERSION, compute_statistics,
        ),
        StageSpec(
            "report", ("analyze", "figures", "statistics"),
            ("report_format",), REPORT_VERSION, compute_report,
        ),
    )
}

#: Stage names in declaration (topological) order.
STAGE_NAMES: tuple[str, ...] = tuple(STAGES)

#: The default code-version per stage (overridable per Pipeline).
CODE_VERSIONS: dict[str, str] = {
    name: spec.code_version for name, spec in STAGES.items()
}


def dependents_of(stage: str) -> set[str]:
    """Every stage downstream of ``stage`` (transitive, exclusive)."""
    downstream: set[str] = set()
    frontier = {stage}
    while frontier:
        current = frontier.pop()
        for name, spec in STAGES.items():
            if current in spec.deps and name not in downstream:
                downstream.add(name)
                frontier.add(name)
    return downstream
