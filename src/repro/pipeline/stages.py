"""The typed stages of the study dataflow graph.

The study is a sharded map/reduce pipeline::

    per project shard (×N)                 whole corpus
    ┌───────────────────────────┐   ┌──────────────────────────┐
    generate ──► mine ──► analyze ──► aggregate ─┬─► figures ──┐
                                                 ├─► statistics┤
                                                 └─────────────┴─► report

The **map** stages (``generate``/``mine``/``analyze``) produce one
content-addressed artifact *per project shard* — their keys are planned
by :mod:`repro.pipeline.shards` from the project's identity, so editing
one project re-keys exactly its own map cone.  The **reduce** stages
each produce one whole-corpus artifact whose fingerprint chains over
the sorted shard digests of the map family (via
:func:`~repro.pipeline.fingerprint.family_fingerprint`), so any shard
change also re-keys the reduce tail while the untouched shards stay
warm.

Each :class:`StageSpec` declares its dependencies, the pipeline
parameters it actually consumes (only those participate in its
fingerprint — the seed dirties the shard plan and everything downstream,
the report format dirties only ``report``) and a hand-bumped **code
version**: bump the constant when a stage's computation changes and
every stored artifact of that stage, plus everything downstream of it,
is invalidated while upstream artifacts stay warm.  Next to the
hand-bumped version, every stored artifact also records the *source
digest* of the stage's implementing module
(:func:`stage_source_digest`), so ``pipeline status`` can warn when the
code changed but the version constant was forgotten.

``jobs`` is deliberately *not* a fingerprint parameter: every stage is
jobs-invariant by construction (proven by the serial/parallel
equivalence tests), so a ``--jobs 4`` run may reuse artifacts a serial
run stored and vice versa.

Reduce compute functions receive the owning
:class:`~repro.pipeline.graph.Pipeline` (for parameters, timings and
the fan-out width) plus the payloads of their resolved dependencies,
and return a :class:`StageOutput` carrying the payload and an explicit
metrics delta — explicit because worker-process counters never reach
the driver registry, exactly as in ``run_study``.  Map stages carry no
corpus-level compute: the graph resolves them shard by shard through
:func:`~repro.perf.parallel.map_shard` and :func:`analyze_one`.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

from ..heartbeat import ZeroTotalError
from ..obs.events import warn
from ..obs.metrics import MetricsSnapshot, get_metrics
from .fingerprint import digest_text

# Per-stage code versions.  Bump a constant when the stage's computation
# changes in a way that affects its artifact bytes; the fingerprint
# chain invalidates the stage and its dependents, nothing else.  The map
# stages jumped to "2" with the shard refactor: their artifacts changed
# from whole-corpus containers to per-project payloads; ``mine`` jumped
# to "3" when its shards moved to the tuple codec and the incremental
# parse engine landed.
GENERATE_VERSION = "2"
MINE_VERSION = "3"
ANALYZE_VERSION = "2"
AGGREGATE_VERSION = "1"
FIGURES_VERSION = "1"
STATISTICS_VERSION = "1"
REPORT_VERSION = "1"


@dataclass
class StageOutput:
    """What a stage compute hands back to the graph runner."""

    payload: object
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: True when the compute recorded its own stage seconds (the map
    #: phase records summed worker seconds, like ``run_study``).
    self_timed: bool = False


@dataclass(frozen=True)
class StageSpec:
    """One node of the stage graph: identity, wiring and compute.

    ``kind`` is ``"map"`` (one artifact per project shard, resolved by
    the graph's map phase; ``compute`` is ``None``) or ``"reduce"``
    (one whole-corpus artifact from ``compute``).
    """

    name: str
    deps: tuple[str, ...]
    params: tuple[str, ...]
    code_version: str
    compute: Callable | None
    kind: str = "reduce"


@dataclass
class MinedProject:
    """One ``mine`` shard's artifact: history plus ground truth.

    Deliberately slimmer than the worker-transport
    :class:`~repro.perf.parallel.MinedHistory` — per-worker seconds,
    cache deltas and span trees are run observability, not artifact
    content, so they live in the artifact *meta*, never the payload.
    """

    name: str
    history: object
    true_taxon: object


# ----------------------------------------------------------------------
# the per-shard analyze unit (driver-side)

def analyze_one(mined: MinedProject) -> dict:
    """``analyze`` one shard: ``{"project", "row"}``, skips in-band.

    Runs driver-side (analysis is orders of magnitude cheaper than
    mining); the empty-history skip decision — and its warning, with
    the exact message ``run_study`` emits — lives here.  A skipped
    project stores ``row=None`` so a warm shard replays the skip
    without recomputing.
    """
    from ..analysis.measures import analyze_project

    try:
        row = analyze_project(mined.history, true_taxon=mined.true_taxon)
    except ZeroTotalError:
        row = None
        get_metrics().inc("projects.skipped")
        warn(
            "empty-history",
            f"{mined.name}: zero total activity on one side; "
            "project skipped",
            project=mined.name,
        )
    return {"project": mined.name, "row": row}


# ----------------------------------------------------------------------
# reduce stage computes

def compute_aggregate(pipe, inputs: dict) -> StageOutput:
    """``aggregate``: fold the analyze shards into the corpus tables.

    The first reduce barrier: consumes the per-shard ``analyze``
    payloads *in corpus order* — ``inputs["analyze"]`` may be the
    streaming map generator, each payload released after its fold — and
    folds them through an
    :class:`~repro.mining.aggregates.AggregateAccumulator` into the same
    ``{"rows", "skipped"}`` shape the fused engine produces, so every
    downstream stage — and the rendered report — is byte-identical to a
    whole-corpus serial run.  Under ``--limit-memory`` the pipeline
    hands the accumulator a spill directory, bounding even the
    accumulated rows; the spilled fold is byte-identical too.
    """
    from ..mining.aggregates import AggregateAccumulator

    acc = AggregateAccumulator(
        spill_dir=getattr(pipe, "spill_dir", None),
    )
    for entry in inputs["analyze"]:
        acc.update(entry)
    spill = acc.stats()
    timings = getattr(pipe, "timings", None)
    if spill["spilled_batches"] and timings is not None:
        timings.record_streaming("aggregate_spill", spill)
    return StageOutput(payload=acc.finalize())


def compute_figures(pipe, inputs: dict) -> StageOutput:
    """``figures``: every default-parameter figure plus the headline."""
    from ..analysis.figures import (
        fig4_sync_histogram,
        fig5_duration_scatter,
        fig6_advance_table,
        fig7_always_advance,
        fig8_attainment,
        headline_numbers,
    )

    rows = inputs["aggregate"]["rows"]
    figures = {
        "fig4": fig4_sync_histogram(rows),
        "fig5": fig5_duration_scatter(rows),
        "fig6": fig6_advance_table(rows),
        "fig7": fig7_always_advance(rows),
        "fig8": fig8_attainment(rows),
    }
    figures["headline"] = headline_numbers(
        rows,
        fig4=figures["fig4"],
        fig7=figures["fig7"],
        fig8=figures["fig8"],
    )
    return StageOutput(payload=figures)


def compute_statistics(pipe, inputs: dict) -> StageOutput:
    """``statistics``: the §7 battery, or its error in storable form.

    Tiny corpora legitimately fail the battery (Shapiro-Wilk needs at
    least 3 observations); the artifact stores the outcome either way so
    a warm run replays the same ``ValueError`` without recomputing.
    """
    from ..analysis.statistics import sec7_statistics

    try:
        payload = {"ok": True, "report": sec7_statistics(
            inputs["aggregate"]["rows"]
        )}
    except ValueError as exc:
        payload = {"ok": False, "error": str(exc)}
    return StageOutput(payload=payload)


def compute_report(pipe, inputs: dict) -> StageOutput:
    """``report``: the rendered document (``pipe.report_format``)."""
    from ..analysis.study import StudyResult
    from ..report import build_html_report, build_study_report

    study = StudyResult(
        projects=list(inputs["aggregate"]["rows"]),
        skipped=list(inputs["aggregate"]["skipped"]),
    )
    study.prime_artifacts(
        figures=inputs["figures"], statistics=inputs["statistics"]
    )
    if pipe.report_format == "html":
        text = build_html_report(study)
    else:
        text = build_study_report(study)
    return StageOutput(payload=text)


# ----------------------------------------------------------------------
# the graph

STAGES: dict[str, StageSpec] = {
    spec.name: spec
    for spec in (
        StageSpec(
            "generate", (), ("seed", "scale"),
            GENERATE_VERSION, None, kind="map",
        ),
        StageSpec(
            "mine", ("generate",), (), MINE_VERSION, None, kind="map",
        ),
        StageSpec(
            "analyze", ("mine",), (), ANALYZE_VERSION, None, kind="map",
        ),
        StageSpec(
            "aggregate", ("analyze",), (),
            AGGREGATE_VERSION, compute_aggregate,
        ),
        StageSpec(
            "figures", ("aggregate",), (),
            FIGURES_VERSION, compute_figures,
        ),
        StageSpec(
            "statistics", ("aggregate",), (),
            STATISTICS_VERSION, compute_statistics,
        ),
        StageSpec(
            "report", ("aggregate", "figures", "statistics"),
            ("report_format",), REPORT_VERSION, compute_report,
        ),
    )
}

#: Stage names in declaration (topological) order.
STAGE_NAMES: tuple[str, ...] = tuple(STAGES)

#: The map stages, in chaining order (one artifact per project shard).
MAP_STAGE_NAMES: tuple[str, ...] = tuple(
    name for name, spec in STAGES.items() if spec.kind == "map"
)

#: The reduce stages, in topological order (one artifact per stage).
REDUCE_STAGE_NAMES: tuple[str, ...] = tuple(
    name for name, spec in STAGES.items() if spec.kind == "reduce"
)

#: The default code-version per stage (overridable per Pipeline).
CODE_VERSIONS: dict[str, str] = {
    name: spec.code_version for name, spec in STAGES.items()
}

#: Which module's source *is* each stage's computation, for the
#: stage-version drift guard.  ``generate`` lives in the corpus
#: generator, ``mine`` in the worker module; everything else is the
#: compute in this module.
_SOURCE_MODULES: dict[str, str] = {
    "generate": "repro.corpus.generator",
    "mine": "repro.perf.parallel",
    "analyze": "repro.pipeline.stages",
    "aggregate": "repro.pipeline.stages",
    "figures": "repro.pipeline.stages",
    "statistics": "repro.pipeline.stages",
    "report": "repro.pipeline.stages",
}


@lru_cache(maxsize=None)
def stage_source_digest(stage: str) -> str:
    """A digest of the source module implementing ``stage``.

    Stored in every artifact's meta next to the hand-bumped
    ``code_version``; ``Pipeline.version_drift`` compares the stored
    digest against the current one to catch the classic staleness bug —
    the stage's code changed but its version constant did not, so warm
    artifacts silently replay the old computation.  Deliberately
    coarse (whole module, not one function): a helper edit inside the
    module *may* change the stage's bytes, and a false "please check"
    is cheaper than a silent stale artifact.
    """
    module = importlib.import_module(_SOURCE_MODULES[stage])
    return digest_text("stage-source", stage, inspect.getsource(module))


def dependents_of(stage: str) -> set[str]:
    """Every stage downstream of ``stage`` (transitive, exclusive)."""
    downstream: set[str] = set()
    frontier = {stage}
    while frontier:
        current = frontier.pop()
        for name, spec in STAGES.items():
            if current in spec.deps and name not in downstream:
                downstream.add(name)
                frontier.add(name)
    return downstream
