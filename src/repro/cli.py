"""Command-line interface.

Subcommands::

    repro-study generate --out DIR [--seed N] [--jobs N]   # build + save
    repro-study study [--seed N | --corpus DIR]   # run the full study
               [--figure all|4|5|6|7|8|stats] [--csv PATH]
               [--jobs N] [--cache-dir DIR] [--store-dir DIR]
               [--profile] [--scale N]
               [--trace FILE] [--log-json FILE] [--manifest FILE]
               [--progress]
    repro-study report --out report.md            # Markdown study report
    repro-study pipeline status [--seed N] [--store-dir DIR] [--shards]
               [--json]
    repro-study pipeline explain STAGE [--project NAME] [--json]
    repro-study pipeline invalidate [STAGE | --project NAME]
    repro-study case NAME [--seed N]              # one project's diagram
    repro-study diff OLD.sql NEW.sql              # atomic changes
    repro-study impact OLD.sql NEW.sql SRC...     # change impact
    repro-study validate SCHEMA.sql SRC...        # query validation
    repro-study trace-view FILE [--sort X] [--min-ms N]  # render a trace
    repro-study obs export {chrome,prom,flame} FILE      # export telemetry
    repro-study obs history [--json] [--limit N] [--since ISO]
    repro-study obs timeline --stage mine         # cross-run trend line
    repro-study obs serve --store-dir DIR [--port N]     # telemetry HTTP
    repro-study obs top --url http://...          # live terminal dashboard
    repro-study bench-check BASELINE CANDIDATE    # perf-regression check
    repro-study bench-check CANDIDATE --against-history N  # vs registry

The observability flags (available on ``generate``, ``study`` and
``report``) never change results: ``--trace`` writes the hierarchical
span tree of the run, ``--log-json`` streams structured JSONL events
(span closes, warnings, progress heartbeats, a closing run marker),
``--manifest`` records the run's seed, jobs, cache config, versions,
host environment, stage timings, metric snapshot and warnings, and
``--progress`` prints a live done/total + ETA line to stderr.

``obs export`` converts finished telemetry to standard formats (Chrome
trace-event JSON for Perfetto, Prometheus text exposition, flamegraph
folded stacks); ``bench-check`` compares two run manifests or
``BENCH_study.json`` payloads and fails on perf regressions.

Live telemetry: ``repro-study study --serve [PORT]`` binds a loopback
HTTP server next to the run (``/healthz``, ``/metrics``, ``/events``
SSE, ``/runs``, ``/status``) that observes the telemetry bus without
changing any result; ``obs serve`` runs the same server standalone over
a store, and ``obs top`` renders the event stream as a terminal
dashboard.

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Joint source and schema co-evolution study toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_perf_flags(command) -> None:
        command.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for the project fan-out (default: 1)",
        )
        command.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="on-disk parse cache shared across runs and workers",
        )
        command.add_argument(
            "--store-dir",
            default=None,
            metavar="DIR",
            help="on-disk artifact store: clean pipeline stages replay "
            "from DIR instead of recomputing (implies a parse cache "
            "under DIR unless --cache-dir is given)",
        )

    def add_obs_flags(command) -> None:
        command.add_argument(
            "--trace",
            default=None,
            metavar="FILE",
            help="write the run's hierarchical span trace (JSON) to FILE",
        )
        command.add_argument(
            "--log-json",
            default=None,
            metavar="FILE",
            help="stream structured JSONL events (spans, warnings) to FILE",
        )
        command.add_argument(
            "--manifest",
            default=None,
            metavar="FILE",
            help="write the run manifest (JSON) to FILE",
        )
        command.add_argument(
            "--progress",
            action="store_true",
            help="print a live done/total progress line to stderr",
        )

    def add_scale_flag(command) -> None:
        command.add_argument(
            "--scale",
            type=int,
            default=1,
            metavar="N",
            help="shrink the canonical corpus by N (each taxon keeps "
            "count/N projects, at least one) — micro-studies for CI "
            "and smoke runs; ignored with --corpus",
        )
        command.add_argument(
            "--projects",
            type=int,
            default=None,
            metavar="N",
            help="absolute corpus size: re-size the canonical taxa mix "
            "to exactly N synthetic projects (10k-100k scale-out runs; "
            "the corpus streams, it is never held whole); overrides "
            "--scale, ignored with --corpus",
        )

    def add_dialect_flag(command) -> None:
        from .workload import registered_workloads

        command.add_argument(
            "--dialect",
            default=None,
            choices=sorted(registered_workloads()),
            help="run under a registered workload (vendor mix, history "
            "source, shard-key dialect component); omitted or "
            "'default' keeps the canonical mysql/postgres corpus and "
            "its store keys byte-identical",
        )

    generate = sub.add_parser(
        "generate", help="generate a corpus and save it to disk"
    )
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--seed", type=int, default=None)
    add_perf_flags(generate)
    add_obs_flags(generate)
    add_scale_flag(generate)
    add_dialect_flag(generate)

    study = sub.add_parser("study", help="run the full study")
    study.add_argument("--seed", type=int, default=None)
    study.add_argument(
        "--corpus", default=None, help="load a saved corpus instead"
    )
    study.add_argument(
        "--figure",
        default="all",
        choices=["all", "4", "5", "6", "7", "8", "stats", "headline"],
    )
    study.add_argument("--csv", default=None, help="export measures CSV")
    study.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage timing breakdown and cache hit rates",
    )
    study.add_argument(
        "--serve",
        nargs="?",
        const=0,
        type=int,
        default=None,
        metavar="PORT",
        help="serve live telemetry over HTTP while the run executes "
        "(/healthz /metrics /events /runs /status on 127.0.0.1; "
        "PORT 0 or omitted picks an ephemeral port, announced on "
        "stderr); never changes results",
    )
    study.add_argument(
        "--serve-linger",
        action="store_true",
        help="with --serve: keep serving after the run finishes, "
        "until interrupted",
    )
    study.add_argument(
        "--limit-memory",
        type=int,
        default=None,
        metavar="MB",
        help="cap driver RSS at MB MiB: the streaming map loop warns "
        "and shrinks its fan-out window at 80%% of the cap, fails the "
        "run (exit 3) if the cap is crossed, and spills aggregate "
        "partials to disk; results stay byte-identical",
    )
    add_perf_flags(study)
    add_obs_flags(study)
    add_scale_flag(study)
    add_dialect_flag(study)

    report = sub.add_parser(
        "report", help="write a full Markdown study report"
    )
    report.add_argument("--out", required=True, help="output path")
    report.add_argument(
        "--format",
        default="markdown",
        choices=["markdown", "html"],
        help="report format (default: markdown)",
    )
    report.add_argument("--seed", type=int, default=None)
    report.add_argument(
        "--corpus", default=None, help="load a saved corpus instead"
    )
    add_perf_flags(report)
    add_obs_flags(report)
    add_scale_flag(report)
    add_dialect_flag(report)

    pipeline = sub.add_parser(
        "pipeline",
        help="inspect or invalidate the stage-artifact store",
        description=(
            "the study is a sharded map/reduce graph (per-project "
            "generate > mine > analyze shards, then aggregate > "
            "figures/statistics > report) whose outputs persist in the "
            "artifact store; status shows each stage's fingerprint and "
            "warm/cold state (with per-project shard detail under "
            "--shards), invalidate drops a stage — or one project's "
            "shards via --project — and everything downstream of it"
        ),
    )
    pipe_sub = pipeline.add_subparsers(dest="pipeline_command", required=True)
    pipe_status = pipe_sub.add_parser(
        "status", help="per-stage fingerprints and warm/cold state"
    )
    pipe_status.add_argument(
        "--shards",
        action="store_true",
        help="also list per-project shard warmth for the map stages",
    )
    pipe_status.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="with --shards: show at most N shard rows (default: a "
        "50-row page for large corpora; pass 0 for the full list)",
    )
    pipe_status.add_argument(
        "--offset",
        type=int,
        default=0,
        metavar="N",
        help="with --shards: skip the first N shard rows (pagination)",
    )
    pipe_status.add_argument(
        "--json",
        action="store_true",
        help="emit the status rows (and drift warnings) as JSON",
    )
    pipe_status.add_argument(
        "--fail-on-stale",
        action="store_true",
        help="exit nonzero when any stage's stored source digest "
        "disagrees with the code (version drift) — the CI guard "
        "against un-bumped stage versions",
    )
    pipe_explain = pipe_sub.add_parser(
        "explain",
        help="why a stage's artifact is warm, stale, or cold",
        description=(
            "diffs every stored fingerprint breakdown against the "
            "current plan: a stale artifact names the component that "
            "moved (code_version bump, params/profile digest, upstream "
            "digest), a cold one has no prior generation to diff"
        ),
    )
    pipe_explain.add_argument(
        "stage",
        help="stage to explain (generate, mine, analyze, aggregate, "
        "figures, statistics, report)",
    )
    pipe_explain.add_argument(
        "--project",
        default=None,
        help="narrow a map stage to one project's shard",
    )
    pipe_explain.add_argument(
        "--json",
        action="store_true",
        help="emit the explain records as JSON",
    )
    add_obs_flags(pipe_explain)
    pipe_invalidate = pipe_sub.add_parser(
        "invalidate",
        help="drop one stage's artifact and its dependents (or all)",
    )
    pipe_invalidate.add_argument(
        "stage",
        nargs="?",
        default=None,
        help="stage to invalidate (generate, mine, analyze, aggregate, "
        "figures, statistics, report); omit for all stages",
    )
    pipe_invalidate.add_argument(
        "--project",
        default=None,
        help="invalidate one project's map shards (plus the reduce "
        "tail) instead of a whole stage",
    )
    for pipe_cmd in (pipe_status, pipe_explain, pipe_invalidate):
        pipe_cmd.add_argument("--seed", type=int, default=None)
        pipe_cmd.add_argument(
            "--format",
            default="markdown",
            choices=["markdown", "html"],
            help="report format the report stage is keyed on",
        )
        add_perf_flags(pipe_cmd)
        add_scale_flag(pipe_cmd)
        add_dialect_flag(pipe_cmd)

    case = sub.add_parser("case", help="show one project's joint progress")
    case.add_argument("name", help="project name (or a unique substring)")
    case.add_argument("--seed", type=int, default=None)

    diff = sub.add_parser("diff", help="diff two DDL files")
    diff.add_argument("old")
    diff.add_argument("new")

    impact = sub.add_parser(
        "impact", help="impact of a schema change on source files"
    )
    impact.add_argument("old")
    impact.add_argument("new")
    impact.add_argument("sources", nargs="+")

    validate = sub.add_parser(
        "validate", help="validate embedded queries against a schema"
    )
    validate.add_argument("schema")
    validate.add_argument("sources", nargs="+")

    trace_view = sub.add_parser(
        "trace-view",
        help="render a --trace JSON file as an indented span tree",
    )
    trace_view.add_argument("file", help="trace file written by --trace")
    trace_view.add_argument(
        "--depth",
        type=int,
        default=None,
        metavar="N",
        help="only show spans up to depth N (root = 0)",
    )
    trace_view.add_argument(
        "--sort",
        default="start",
        choices=["start", "self", "total"],
        help="sibling order: recording order, or descending "
        "self/total time (default: start)",
    )
    trace_view.add_argument(
        "--min-ms",
        type=float,
        default=None,
        metavar="MS",
        help="hide subtrees whose total time is below MS milliseconds",
    )

    obs = sub.add_parser(
        "obs", help="work with recorded telemetry (exporters)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    export = obs_sub.add_parser(
        "export",
        help="export telemetry to a standard tool format",
        description=(
            "chrome/flame read a --trace JSON file; prom reads a run "
            "manifest (or a bare metrics snapshot JSON)"
        ),
    )
    export.add_argument(
        "kind",
        choices=["chrome", "prom", "flame"],
        help="chrome: trace-event JSON for Perfetto; prom: Prometheus "
        "text exposition; flame: flamegraph folded stacks",
    )
    export.add_argument(
        "file", help="the telemetry file (--trace output, or a manifest)"
    )
    export.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the export to FILE instead of stdout",
    )
    history = obs_sub.add_parser(
        "history",
        help="table the store's append-only run-history registry",
        description=(
            "every study/report run against a --store-dir appends one "
            "record to <store>/runs/history.jsonl; this lists them"
        ),
    )
    history.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="show only the last N records",
    )
    history.add_argument(
        "--since",
        default=None,
        metavar="ISO",
        help="show only records recorded at or after this ISO 8601 "
        "date/time (e.g. 2026-08-01 or 2026-08-01T12:00)",
    )
    history.add_argument(
        "--json",
        action="store_true",
        help="emit the records as a JSON array",
    )
    history.add_argument(
        "--import",
        dest="import_file",
        default=None,
        metavar="FILE",
        help="seed one record from a run manifest or BENCH payload "
        "(CI uses this to bootstrap --against-history from the "
        "committed baseline)",
    )
    timeline = obs_sub.add_parser(
        "timeline",
        help="render one stage's cross-run trend from the registry",
    )
    timeline.add_argument(
        "--stage",
        default="total",
        metavar="NAME",
        help="stage whose seconds to plot (default: total); "
        "'rss' plots the peak-RSS trend instead",
    )
    timeline.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="plot only the last N records",
    )
    serve = obs_sub.add_parser(
        "serve",
        help="serve live telemetry and store state over HTTP",
        description=(
            "binds a loopback ThreadingHTTPServer exposing /healthz, "
            "/metrics (Prometheus), /events (SSE over the telemetry "
            "bus, Last-Event-ID replay), /runs (registry history) and "
            "/status (stage warm/stale/cold via provenance); serves "
            "until interrupted"
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="N",
        help="bind port (default: 0 = ephemeral, announced on stderr)",
    )
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument(
        "--format",
        default="markdown",
        choices=["markdown", "html"],
        help="report format the /status report stage is keyed on",
    )
    add_scale_flag(serve)
    top = obs_sub.add_parser(
        "top",
        help="live terminal dashboard over a served event stream",
        description=(
            "consumes the /events SSE feed of a --serve run (or the "
            "in-process bus with --attach) and renders per-stage "
            "progress bars, ETA, cache-reuse rates, peak RSS and "
            "warning counts"
        ),
    )
    top.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="base URL of a serving run (e.g. http://127.0.0.1:8437)",
    )
    top.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="ADDR",
        help="server host when --url is not given",
    )
    top.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="server port when --url is not given",
    )
    top.add_argument(
        "--attach",
        action="store_true",
        help="read the in-process telemetry bus instead of HTTP "
        "(embedding and tests)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="S",
        help="minimum seconds between redraws (default: 0.5)",
    )
    top.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="stop after N envelopes (default: run until the stream "
        "ends)",
    )
    top.add_argument(
        "--plain",
        action="store_true",
        help="print frames as blocks instead of clearing the screen "
        "(forced when stdout is not a terminal)",
    )
    for obs_cmd in (history, timeline, serve):
        obs_cmd.add_argument(
            "--store-dir",
            default=None,
            metavar="DIR",
            help="artifact store whose run registry to read "
            "(default: REPRO_STORE_DIR)",
        )

    bench_check = sub.add_parser(
        "bench-check",
        help="compare two perf records and fail on regressions",
        description=(
            "BASELINE and CANDIDATE are run manifests (--manifest) or "
            "BENCH_study.json payloads, freely mixed; with "
            "--against-history N the single positional is the candidate "
            "and the baseline is the median of the store registry's "
            "last N records"
        ),
    )
    bench_check.add_argument("baseline", help="baseline perf record (JSON)")
    bench_check.add_argument(
        "candidate",
        nargs="?",
        default=None,
        help="candidate perf record (JSON); omitted with "
        "--against-history, where the first positional is the candidate",
    )
    bench_check.add_argument(
        "--against-history",
        type=int,
        default=None,
        metavar="N",
        help="compare against the median of the last N run-registry "
        "records instead of a baseline file",
    )
    bench_check.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="artifact store whose run registry --against-history reads "
        "(default: REPRO_STORE_DIR)",
    )
    bench_check.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="FRACTION",
        help="relative per-stage slowdown tolerated (default: 0.25)",
    )
    bench_check.add_argument(
        "--threshold",
        action="append",
        default=None,
        metavar="STAGE=FRACTION",
        help="per-stage threshold override (repeatable)",
    )
    bench_check.add_argument(
        "--min-seconds",
        type=float,
        default=None,
        metavar="S",
        help="noise floor: skip stages below S seconds on both sides "
        "(default: 0.05)",
    )
    bench_check.add_argument(
        "--stage",
        default=None,
        metavar="NAME",
        help="focus the seconds comparison on one stage "
        "(e.g. 'mine' for the mine microbenchmark record)",
    )
    bench_check.add_argument(
        "--max-rss-regression",
        type=float,
        default=None,
        metavar="FRACTION",
        help="relative peak-RSS growth tolerated (default: 0.30)",
    )
    bench_check.add_argument(
        "--report-only",
        action="store_true",
        help="print and persist the verdict but always exit 0",
    )
    bench_check.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the machine-readable verdict to FILE",
    )
    bench_check.add_argument(
        "--allow-env-mismatch",
        action="store_true",
        help="downgrade a host-environment mismatch from fail to warn",
    )
    bench_check.add_argument(
        "--allow-warnings",
        action="store_true",
        help="do not fail when the candidate has more warnings",
    )

    return parser


def _configure_perf(args) -> int:
    """Apply --cache-dir / --store-dir / --jobs; returns worker count."""
    cache_dir = getattr(args, "cache_dir", None)
    store_dir = getattr(args, "store_dir", None)
    if store_dir:
        from .pipeline.store import configure_store

        configure_store(store_dir)
        if not cache_dir:
            # one flag, both layers: parse results persist next to the
            # artifacts so a warm run is warm all the way down
            cache_dir = str(Path(store_dir) / "parse-cache")
    if cache_dir:
        from .perf import configure_cache

        configure_cache(cache_dir)
    return max(1, getattr(args, "jobs", 1) or 1)


def _configure_obs(args):
    """Open an ObsSession when any observability flag is set."""
    trace_path = getattr(args, "trace", None)
    log_path = getattr(args, "log_json", None)
    manifest_path = getattr(args, "manifest", None)
    progress = bool(getattr(args, "progress", False))
    if not (trace_path or log_path or manifest_path or progress):
        return None
    from .obs import ObsSession

    return ObsSession(
        command=args.command,
        trace_path=trace_path,
        log_path=log_path,
        manifest_path=manifest_path,
        progress=progress,
    )


def _dialect_of(args) -> str | None:
    """The run's workload dialect, with the default normalised to None.

    ``None`` keeps every canonical store key (and registry record)
    byte-identical to the pre-workload layout — ``--dialect default``
    must not re-key a warm canonical store.
    """
    dialect = getattr(args, "dialect", None)
    return None if dialect in (None, "default") else dialect


def _get_study(args):
    from .analysis import canonical_study, run_study
    from .corpus import DEFAULT_SEED

    jobs = _configure_perf(args)
    session = getattr(args, "obs_session", None)
    if session is not None:
        session.jobs = jobs
    if getattr(args, "corpus", None):
        from .io import load_corpus

        # LoadedProject carries name/repository/true_taxon, all the
        # study driver needs, so the saved-corpus path fans out too
        # (ad-hoc corpora bypass the artifact store: their contents are
        # not derivable from a fingerprintable parameter set)
        study = run_study(load_corpus(args.corpus), jobs=jobs)
        args._run_facts = {"study": study, "seed": None, "scale": None,
                           "jobs": jobs, "dialect": None}
    else:
        seed = args.seed if args.seed is not None else DEFAULT_SEED
        if session is not None:
            session.seed = seed
        scale = max(1, getattr(args, "scale", 1) or 1)
        projects = getattr(args, "projects", None)
        limit_memory = getattr(args, "limit_memory", None)
        dialect = _dialect_of(args)
        # non-default workloads always resolve through the pipeline —
        # that is where the (dialect, source) pair lives in shard keys
        if (scale > 1 or projects is not None
                or limit_memory is not None or dialect):
            from .pipeline.graph import Pipeline

            pipe = Pipeline(
                seed=seed,
                scale=scale,
                jobs=jobs,
                projects=projects,
                limit_memory_mb=limit_memory,
                dialect=dialect,
            )
            study = pipe.study()
            args._pipeline = pipe
        else:
            study = canonical_study(seed, jobs=jobs)
        args._run_facts = {"study": study, "seed": seed, "scale": scale,
                           "jobs": jobs, "dialect": dialect}
    if session is not None:
        session.study = study
    return study


def _cmd_generate(args) -> int:
    from .corpus import DEFAULT_SEED, generate_corpus
    from .io import save_corpus

    jobs = _configure_perf(args)
    seed = args.seed if args.seed is not None else DEFAULT_SEED
    session = getattr(args, "obs_session", None)
    if session is not None:
        session.seed = seed
        session.jobs = jobs
    scale = max(1, getattr(args, "scale", 1) or 1)
    projects = getattr(args, "projects", None)
    dialect = _dialect_of(args)
    if projects is not None:
        from .corpus.profiles import sized_profiles

        corpus = generate_corpus(
            seed=seed, profiles=sized_profiles(projects), jobs=jobs,
            dialect=dialect,
        )
    elif scale > 1:
        from .corpus import scaled_profiles

        corpus = generate_corpus(
            seed=seed, profiles=scaled_profiles(scale), jobs=jobs,
            dialect=dialect,
        )
    else:
        corpus = generate_corpus(seed=seed, jobs=jobs, dialect=dialect)
    if session is not None:
        session.corpus_size = len(corpus)
    root = save_corpus(corpus, args.out)
    print(f"wrote {len(corpus)} projects to {root}")
    if dialect:
        from .report import render_vendor_mix

        print(
            f"workload {dialect}: "
            + render_vendor_mix([p.spec.vendor for p in corpus])
        )
    return 0


def _cmd_study(args) -> int:
    from .io import export_measures_csv
    from .report import (
        render_fig4,
        render_fig5,
        render_fig6,
        render_fig7,
        render_fig8,
        render_statistics,
    )

    from .obs import get_tracer

    study = _get_study(args)
    want = args.figure
    blocks: list[str] = []
    with get_tracer().span("figures", figure=args.figure), \
            study.timings.timed("figures"):
        if want in ("all", "headline"):
            headline = study.headline()
            blocks.append(
                "Headline numbers:\n" + "\n".join(
                    f"  {key}: {value}" for key, value in headline.items()
                )
            )
        if want in ("all", "4"):
            blocks.append(render_fig4(study.fig4()))
        if want in ("all", "5"):
            blocks.append(render_fig5(study.fig5()))
        if want in ("all", "6"):
            blocks.append(render_fig6(study.fig6()))
        if want in ("all", "7"):
            blocks.append(render_fig7(study.fig7()))
        if want in ("all", "8"):
            blocks.append(render_fig8(study.fig8()))
        if want in ("all", "stats"):
            blocks.append(render_statistics(study.statistics()))
    if args.profile:
        blocks.append(study.timings.render())
    print("\n\n".join(blocks))
    if args.csv:
        path = export_measures_csv(study, args.csv)
        print(f"\nmeasures CSV written to {path}")
    return 0


def _cmd_report(args) -> int:
    if getattr(args, "corpus", None):
        from .report import build_html_report, build_study_report

        study = _get_study(args)
        if args.format == "html":
            text = build_html_report(study)
        else:
            text = build_study_report(study)
    else:
        # seed-derived reports resolve through the stage pipeline, so a
        # warm store replays the rendered document itself
        from .corpus import DEFAULT_SEED
        from .pipeline.graph import Pipeline

        jobs = _configure_perf(args)
        seed = args.seed if args.seed is not None else DEFAULT_SEED
        scale = max(1, getattr(args, "scale", 1) or 1)
        dialect = _dialect_of(args)
        session = getattr(args, "obs_session", None)
        if session is not None:
            session.jobs = jobs
            session.seed = seed
        pipe = Pipeline(
            seed=seed, scale=scale, jobs=jobs, report_format=args.format,
            dialect=dialect,
        )
        study = pipe.study()
        if session is not None:
            session.study = study
        text = pipe.report()
        args._pipeline = pipe
        args._run_facts = {"study": study, "seed": seed, "scale": scale,
                           "jobs": jobs, "dialect": dialect}
    path = Path(args.out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    print(f"report written to {path} ({len(text)} chars)")
    return 0


def _cmd_pipeline(args) -> int:
    from .corpus import DEFAULT_SEED
    from .pipeline.graph import Pipeline
    from .pipeline.stages import STAGES

    jobs = _configure_perf(args)
    seed = args.seed if args.seed is not None else DEFAULT_SEED
    scale = max(1, getattr(args, "scale", 1) or 1)
    dialect = _dialect_of(args)
    pipe = Pipeline(
        seed=seed, scale=scale, jobs=jobs, report_format=args.format,
        projects=getattr(args, "projects", None),
        dialect=dialect,
    )
    if args.pipeline_command == "invalidate":
        stage = args.stage
        project = getattr(args, "project", None)
        if project is not None:
            if stage is not None:
                print(
                    "pass either a stage or --project, not both",
                    file=sys.stderr,
                )
                return 2
            try:
                removed = pipe.invalidate(project=project)
            except KeyError:
                print(
                    f"unknown project {project!r} (see pipeline status "
                    "--shards for the shard list)",
                    file=sys.stderr,
                )
                return 2
            print(
                f"invalidated project {project!r}: "
                f"{removed} artifact(s) removed"
            )
            return 0
        if stage is not None and stage not in STAGES:
            print(
                f"unknown stage {stage!r} (expected one of: "
                + ", ".join(STAGES) + ")",
                file=sys.stderr,
            )
            return 2
        removed = pipe.invalidate(stage)
        print(
            f"invalidated {stage or 'all stages'}: "
            f"{removed} artifact(s) removed"
        )
        return 0
    if args.pipeline_command == "explain":
        import json

        from .obs.events import provenance_event

        try:
            records = pipe.explain(
                args.stage, project=getattr(args, "project", None)
            )
        except KeyError as exc:
            print(
                f"unknown stage or project {exc.args[0]!r} "
                "(see pipeline status --shards)",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        session = getattr(args, "obs_session", None)
        if session is not None and session.event_log is not None:
            for record in records:
                session.event_log.emit(provenance_event(record))
        if args.json:
            print(json.dumps(records, indent=2, default=str))
            return 0
        from .obs.provenance import render_explanation

        states = {"warm": 0, "stale": 0, "cold": 0}
        for record in records:
            states[record["state"]] += 1
            print(render_explanation(record))
        if len(records) > 1:
            print(
                f"\n{len(records)} targets: {states['warm']} warm, "
                f"{states['stale']} stale, {states['cold']} cold"
            )
        return 0
    store = pipe.store
    location = getattr(store, "root", None)
    # pagination for the O(N) shard listing: an explicit --limit wins
    # (0 means everything), otherwise large corpora default to one
    # 50-row page so a 50k-shard store never dumps megabytes
    shard_total = pipe.n_projects()
    limit = getattr(args, "limit", None)
    offset = max(0, getattr(args, "offset", 0) or 0)
    if limit is None:
        page = None if shard_total <= 200 else 50
    elif limit <= 0:
        page = None
    else:
        page = limit
    if getattr(args, "json", False):
        import json

        payload = {
            "store": {
                "kind": store.kind,
                "dir": str(location) if location else None,
            },
            "seed": seed,
            "scale": scale,
            "format": args.format,
            "dialect": dialect or "default",
            "stages": pipe.status(),
            "drift": pipe.version_drift(),
        }
        if getattr(args, "shards", False):
            payload["shards"] = pipe.shard_status(limit=page, offset=offset)
            payload["shard_total"] = shard_total
            payload["shard_offset"] = offset
        print(json.dumps(payload, indent=2, default=str))
        if getattr(args, "fail_on_stale", False) and payload["drift"]:
            return 1
        return 0
    print(
        f"store: {store.kind}" + (f" at {location}" if location else "")
        + f" | seed {seed}, scale {scale}, format {args.format}"
        + (f", dialect {dialect}" if dialect else "")
    )
    header = (
        f"{'stage':<12} {'kind':<7} {'state':<8} {'ver':<4} "
        f"{'shards':>7} {'bytes':>12}  key"
    )
    print(header)
    print("-" * len(header))
    for row in pipe.status():
        if row["kind"] == "map":
            if row["warm"]:
                state = "warm"
            elif row["warm_shards"]:
                state = "partial"
            else:
                state = "cold"
            shard_text = f"{row['warm_shards']}/{row['shards']}"
        else:
            state = "warm" if row["warm"] else "cold"
            shard_text = "-"
        size = row["size_bytes"]
        size_text = f"{size:,}" if size is not None else "-"
        print(
            f"{row['stage']:<12} {row['kind']:<7} {state:<8} "
            f"{row['code_version']:<4} {shard_text:>7} "
            f"{size_text:>12}  {row['fingerprint'][:16]}"
        )
    drift_entries = pipe.version_drift()
    for drift in drift_entries:
        from .obs.events import warn

        message = (
            f"stage-version-stale: {drift['stage']} source changed "
            f"(digest {drift['stored'][:12]} -> {drift['current'][:12]}) "
            f"but code_version is still {drift['code_version']!r}; "
            "bump it to invalidate warm artifacts"
        )
        warn("stage-version-stale", message, stage=drift["stage"])
        print(f"warning: {message}")
    if getattr(args, "shards", False):
        print()
        shard_header = (
            f"{'project':<24} {'generate':<9} {'mine':<9} {'analyze':<9}"
        )
        print(shard_header)
        print("-" * len(shard_header))
        rows = pipe.shard_status(limit=page, offset=offset)
        for row in rows:
            print(
                f"{row['project']:<24} "
                + " ".join(
                    f"{'warm' if row[stage] else 'cold':<9}"
                    for stage in ("generate", "mine", "analyze")
                ).rstrip()
            )
        if page is not None or offset:
            first = offset + 1 if rows else offset
            print(
                f"showing shards {first}-{offset + len(rows)} of "
                f"{shard_total} (page with --limit/--offset; "
                "--limit 0 lists all)"
            )
    if getattr(args, "fail_on_stale", False) and drift_entries:
        return 1
    return 0


def _cmd_case(args) -> int:
    from .report import render_joint_progress

    study = _get_study(args)
    matches = [p for p in study.projects if args.name in p.name]
    if not matches:
        print(f"no project matching {args.name!r}", file=sys.stderr)
        return 1
    project = matches[0]
    print(
        render_joint_progress(
            project.joint,
            title=(
                f"{project.name} — taxon {project.taxon.display_name}, "
                f"{project.duration_months} months"
            ),
        )
    )
    measures = project.coevolution
    print(f"\n10%-synchronicity: {project.sync10:.0%}")
    for alpha in sorted(measures.attainment):
        print(
            f"{alpha:.0%}-attainment at "
            f"{measures.attainment[alpha]:.0%} of life"
        )
    return 0


def _cmd_diff(args) -> int:
    from .diff import diff_ddl

    delta = diff_ddl(Path(args.old).read_text(), Path(args.new).read_text())
    for change in delta:
        print(change)
    breakdown = delta.breakdown
    print(f"\ntotal activity: {breakdown.total}")
    for key, value in breakdown.as_dict().items():
        if key != "total":
            print(f"  {key}: {value}")
    return 0


def _cmd_impact(args) -> int:
    from .diff import diff_ddl
    from .querydep import Impact, analyze_impact, extract_from_files

    delta = diff_ddl(Path(args.old).read_text(), Path(args.new).read_text())
    files = {src: Path(src).read_text() for src in args.sources}
    queries = extract_from_files(files)
    report = analyze_impact(queries, delta)
    print(
        f"{len(report)} queries, {report.affected_count} affected "
        f"by {delta.total_activity} atomic changes"
    )
    for query_impact in report:
        if query_impact.impact is Impact.UNAFFECTED:
            continue
        query = query_impact.query
        print(f"\n{query.file}:{query.line} [{query_impact.impact.value}]")
        print(f"  {query.text.splitlines()[0][:70]}")
        for reason in query_impact.reasons:
            print(f"  - {reason}")
    return 0


def _cmd_validate(args) -> int:
    from .querydep import extract_from_files, validate_queries
    from .sqlparser import parse_schema

    schema = parse_schema(Path(args.schema).read_text()).schema
    files = {src: Path(src).read_text() for src in args.sources}
    queries = extract_from_files(files)
    report = validate_queries(queries, schema)
    if report.ok:
        print(f"{len(queries)} queries validate cleanly")
        return 0
    for issue in report:
        print(issue)
    print(f"\n{len(report)} issues in {len(queries)} queries")
    return 1


def _cmd_trace_view(args) -> int:
    import json

    from .obs import render_trace

    path = Path(args.file)
    if not path.exists():
        print(f"no such trace file: {path}", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"{path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    print(
        render_trace(
            payload,
            max_depth=args.depth,
            sort=args.sort,
            min_ms=args.min_ms,
        )
    )
    return 0


def _cmd_obs(args) -> int:
    if args.obs_command == "history":
        return _cmd_obs_history(args)
    if args.obs_command == "timeline":
        return _cmd_obs_timeline(args)
    if args.obs_command == "serve":
        return _cmd_obs_serve(args)
    if args.obs_command == "top":
        return _cmd_obs_top(args)
    return _cmd_obs_export(args)


def _obs_registry(args):
    """The run registry for --store-dir / REPRO_STORE_DIR, or None."""
    from .obs.registry import registry_for_store
    from .pipeline.store import configure_store

    if getattr(args, "store_dir", None):
        configure_store(args.store_dir)
    registry = registry_for_store()
    if registry is None:
        print(
            "no directory artifact store configured — pass --store-dir "
            "(or set REPRO_STORE_DIR); an in-memory store keeps no "
            "run history",
            file=sys.stderr,
        )
    return registry


def _cmd_obs_history(args) -> int:
    import json
    import time as time_mod

    registry = _obs_registry(args)
    if registry is None:
        return 2
    if args.import_file:
        from .obs.registry import record_from_payload

        path = Path(args.import_file)
        try:
            payload = json.loads(path.read_text())
            record = record_from_payload(payload, source=path.name)
        except (OSError, ValueError) as exc:
            print(f"obs history: {exc}", file=sys.stderr)
            return 2
        registry.append(record)
        print(
            f"imported {path.name} as run {record['run_id']} "
            f"into {registry.path}"
        )
        return 0
    records = registry.records()
    if args.since:
        try:
            from datetime import datetime

            cutoff = datetime.fromisoformat(args.since).timestamp()
        except ValueError:
            print(
                f"obs history: --since {args.since!r} is not an ISO "
                "8601 date/time (e.g. 2026-08-01 or 2026-08-01T12:00)",
                file=sys.stderr,
            )
            return 2
        records = [
            record for record in records
            if (record.get("recorded_at") or 0) >= cutoff
        ]
    if args.limit:
        records = records[-args.limit:]
    if args.json:
        print(json.dumps(records, indent=2, default=str))
        return 0
    if not records:
        print(f"run registry {registry.path} is empty")
        return 0
    # fixed column widths, over-long values clamped: the table must
    # line up no matter what command strings land in the registry
    header = (
        f"{'run':<13} {'when':<17} {'command':<16} {'dialect':<8} "
        f"{'proj':>5} {'jobs':>4} {'total':>8} {'cache':>6} "
        f"{'store':>6} {'rss MiB':>8} {'warn':>5}"
    )
    print(f"registry: {registry.path} ({len(records)} records shown)")
    print(header)
    print("-" * len(header))
    for record in records:
        when = time_mod.strftime(
            "%Y-%m-%d %H:%M",
            time_mod.localtime(record.get("recorded_at") or 0),
        )
        total = (record.get("stages") or {}).get("total")
        cache = (record.get("parse_cache") or {}).get("hit_rate")
        store_rate = (record.get("artifact_store") or {}).get("hit_rate")
        rss = (record.get("resources") or {}).get("peak_rss_bytes")
        # pre-dialect records simply lack the key — render '-' so old
        # registries keep tabling without a migration
        print(
            f"{str(record.get('run_id', '?'))[:13]:<13} {when:<17} "
            f"{str(record.get('command', '?'))[:16]:<16} "
            f"{str(record.get('dialect') or '-')[:8]:<8} "
            f"{record.get('projects') if record.get('projects') is not None else '-':>5} "
            f"{record.get('jobs') if record.get('jobs') is not None else '-':>4} "
            f"{f'{total:.2f}s' if total is not None else '-':>8} "
            f"{f'{cache:.0%}' if cache is not None else '-':>6} "
            f"{f'{store_rate:.0%}' if store_rate is not None else '-':>6} "
            f"{f'{rss / 2**20:.0f}' if rss else '-':>8} "
            f"{record.get('warning_count') if record.get('warning_count') is not None else '-':>5}"
        )
    return 0


def _cmd_obs_timeline(args) -> int:
    from .obs.registry import render_timeline

    registry = _obs_registry(args)
    if registry is None:
        return 2
    records = registry.records(limit=args.limit)
    if not records:
        print(f"run registry {registry.path} is empty")
        return 0
    try:
        print(render_timeline(records, args.stage))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_obs_serve(args) -> int:
    from .corpus import DEFAULT_SEED
    from .obs.server import ObservabilityServer
    from .pipeline.graph import Pipeline
    from .pipeline.store import configure_store

    if args.store_dir:
        configure_store(args.store_dir)
    seed = args.seed if args.seed is not None else DEFAULT_SEED
    scale = max(1, args.scale or 1)

    def factory() -> Pipeline:
        return Pipeline(seed=seed, scale=scale, report_format=args.format)

    server = ObservabilityServer(
        host=args.host, port=args.port, pipeline_factory=factory
    ).start()
    print(
        f"observability server listening on {server.url} "
        "(/healthz /metrics /events /runs /status; Ctrl-C to stop)",
        file=sys.stderr,
    )
    server.wait()
    return 0


def _cmd_obs_top(args) -> int:
    from .obs.top import bus_envelopes, run_top, url_envelopes

    if args.attach:
        source = bus_envelopes()
    elif args.url or args.port is not None:
        url = args.url or f"http://{args.host}:{args.port}"
        source = url_envelopes(url, limit=args.max_events)
    else:
        print(
            "obs top: pass --url (or --port) of a serving run, "
            "or --attach for the in-process bus",
            file=sys.stderr,
        )
        return 2
    try:
        run_top(
            source,
            out=sys.stdout,
            interval=args.interval,
            max_events=args.max_events,
            plain=args.plain or not sys.stdout.isatty(),
        )
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print(f"obs top: cannot read the event stream: {exc}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_obs_export(args) -> int:
    import json

    from .obs import chrome_trace, folded_stacks, prometheus_text

    path = Path(args.file)
    if not path.exists():
        print(f"no such file: {path}", file=sys.stderr)
        return 1
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"{path} is not valid JSON: {exc}", file=sys.stderr)
        return 1
    try:
        if args.kind == "chrome":
            text = json.dumps(chrome_trace(payload), indent=2) + "\n"
        elif args.kind == "flame":
            text = folded_stacks(payload)
            if text:
                text += "\n"
        else:  # prom — a manifest (its metrics block) or a bare snapshot
            text = prometheus_text(payload.get("metrics", payload))
    except (KeyError, TypeError, ValueError) as exc:
        print(f"cannot export {path} as {args.kind}: {exc}", file=sys.stderr)
        return 1
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"{args.kind} export written to {out} ({len(text)} chars)")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_bench_check(args) -> int:
    import json

    from .obs import compare_samples, load_sample, sample_from_dict
    from .obs.regress import (
        DEFAULT_MAX_REGRESSION,
        DEFAULT_MAX_RSS_REGRESSION,
        DEFAULT_MIN_SECONDS,
    )

    try:
        if args.against_history is not None:
            if args.candidate is not None:
                print(
                    "bench-check: --against-history takes one positional "
                    "(the candidate) — the baseline comes from the "
                    "registry",
                    file=sys.stderr,
                )
                return 2
            if args.against_history <= 0:
                print(
                    "bench-check: --against-history needs N >= 1",
                    file=sys.stderr,
                )
                return 2
            registry = _obs_registry(args)
            if registry is None:
                return 2
            from .obs.registry import history_baseline

            records = registry.records(limit=args.against_history)
            baseline = sample_from_dict(
                history_baseline(records),
                source=f"history-median[{len(records)}]@{registry.path}",
            )
            candidate = load_sample(args.baseline)
        else:
            if args.candidate is None:
                print(
                    "bench-check: CANDIDATE required "
                    "(or pass --against-history N)",
                    file=sys.stderr,
                )
                return 2
            baseline = load_sample(args.baseline)
            candidate = load_sample(args.candidate)
    except (OSError, ValueError) as exc:
        print(f"bench-check: {exc}", file=sys.stderr)
        return 2
    thresholds: dict[str, float] = {}
    for spec in args.threshold or ():
        stage, sep, value = spec.partition("=")
        try:
            if not (sep and stage):
                raise ValueError(spec)
            thresholds[stage] = float(value)
        except ValueError:
            print(
                f"bench-check: bad --threshold {spec!r} "
                "(expected STAGE=FRACTION)",
                file=sys.stderr,
            )
            return 2
    report = compare_samples(
        baseline,
        candidate,
        max_regression=(
            args.max_regression
            if args.max_regression is not None
            else DEFAULT_MAX_REGRESSION
        ),
        stage_thresholds=thresholds,
        min_seconds=(
            args.min_seconds
            if args.min_seconds is not None
            else DEFAULT_MIN_SECONDS
        ),
        max_rss_regression=(
            args.max_rss_regression
            if args.max_rss_regression is not None
            else DEFAULT_MAX_RSS_REGRESSION
        ),
        stage=args.stage,
        allow_env_mismatch=args.allow_env_mismatch,
        allow_warnings=args.allow_warnings,
    )
    print(report.render())
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
        print(f"verdict written to {out}")
    if report.failed and not args.report_only:
        return 1
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "study": _cmd_study,
    "report": _cmd_report,
    "pipeline": _cmd_pipeline,
    "case": _cmd_case,
    "diff": _cmd_diff,
    "impact": _cmd_impact,
    "validate": _cmd_validate,
    "trace-view": _cmd_trace_view,
    "obs": _cmd_obs,
    "bench-check": _cmd_bench_check,
}


def _append_run_record(args, session) -> None:
    """Append one registry record for a finished study/report run.

    Runs only for successful ``study``/``report`` runs against a
    directory store — in-memory stores keep no history, and the append
    is best-effort: a registry failure must never fail a run that
    already produced its results.
    """
    facts = getattr(args, "_run_facts", None)
    if facts is None:
        return
    from .obs.registry import build_run_record, registry_for_store

    registry = registry_for_store()
    if registry is None:
        return
    fingerprints = None
    pipe = getattr(args, "_pipeline", None)
    if pipe is not None:
        from .pipeline.stages import REDUCE_STAGE_NAMES

        fingerprints = {
            name: pipe.fingerprint(name) for name in REDUCE_STAGE_NAMES
        }
    try:
        registry.append(build_run_record(
            command=args.command,
            study=facts["study"],
            seed=facts["seed"],
            scale=facts["scale"],
            jobs=facts["jobs"],
            dialect=facts.get("dialect"),
            manifest=(
                session.manifest_document if session is not None else None
            ),
            fingerprints=fingerprints,
        ))
    except OSError as exc:
        print(f"warning: run registry append failed: {exc}", file=sys.stderr)


def _start_server(args):
    """Start the --serve observability server, if requested.

    Runs before the command (and before the ObsSession opens), so SSE
    clients can connect from the first published envelope; the bound
    port is announced on stderr because ``--serve`` without a port
    picks an ephemeral one.
    """
    port = getattr(args, "serve", None)
    if port is None:
        return None
    from .obs.server import ObservabilityServer

    def factory():
        from .corpus import DEFAULT_SEED
        from .pipeline.graph import Pipeline

        seed = getattr(args, "seed", None)
        return Pipeline(
            seed=seed if seed is not None else DEFAULT_SEED,
            scale=max(1, getattr(args, "scale", 1) or 1),
            report_format=getattr(args, "format", "markdown"),
        )

    server = ObservabilityServer(
        port=port, pipeline_factory=factory
    ).start()
    print(
        f"observability server listening on {server.url}",
        file=sys.stderr,
    )
    return server


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    server = _start_server(args)
    session = _configure_obs(args)
    if session is not None:
        session.server = server
        args.obs_session = session
    try:
        code = _COMMANDS[args.command](args)
    except BaseException as exc:
        if session is not None:
            session.finalize(status="error")
        if server is not None:
            server.stop()
        from .obs.resources import MemoryLimitExceeded

        if isinstance(exc, MemoryLimitExceeded):
            # a bounded-memory run that could not stay bounded: a
            # distinct exit code so scripts can tell "cap breached"
            # from argument errors (2) and crashes (traceback)
            print(f"error: {exc}", file=sys.stderr)
            return 3
        raise
    if session is not None:
        session.finalize(status="ok" if code == 0 else "error")
    if code == 0 and args.command in ("study", "report"):
        _append_run_record(args, session)
    if server is not None:
        if session is None:
            # no ObsSession to publish the closing run marker — do it
            # here so SSE consumers (obs top) still see the run end
            from .obs.bus import get_bus
            from .obs.events import run_event

            get_bus().publish(
                "run",
                run_event(args.command, "ok" if code == 0 else "error"),
            )
        if getattr(args, "serve_linger", False) and code == 0:
            print(
                f"run finished — still serving on {server.url} "
                "(Ctrl-C to stop)",
                file=sys.stderr,
            )
            server.wait()
        server.stop()
    return code


if __name__ == "__main__":
    raise SystemExit(main())
