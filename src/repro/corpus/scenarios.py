"""Counterfactual corpus scenarios.

§9 of the paper discusses what gravitation to rigidity *implies* — and
conjectures that better tooling would let schemata evolve continuously.
Scenario corpora make such counterfactuals runnable: the same generative
machinery with a different population mix, so the study's measures can
be compared between the observed world and hypothetical ones.

* ``OBSERVED`` — the canonical mix (the paper's world);
* ``RIGID_WORLD`` — rigidity taken to the extreme: almost everything
  frozen early;
* ``AGILE_WORLD`` — the paper's aspiration: schemata actively
  maintained throughout project life (what the implications section
  hopes tooling would enable);
* ``SHOT_WORLD`` — evolution concentrated in focused migrations.

Each scenario keeps the corpus at 195 projects so results are directly
comparable.
"""

from __future__ import annotations

import dataclasses

from ..taxa import Taxon
from .profiles import CANONICAL_PROFILES, TaxonProfile

#: taxon -> project count per scenario (each sums to 195)
_SCENARIO_MIXES: dict[str, dict[Taxon, int]] = {
    "OBSERVED": {
        profile.taxon: profile.count for profile in CANONICAL_PROFILES
    },
    "RIGID_WORLD": {
        Taxon.FROZEN: 70,
        Taxon.ALMOST_FROZEN: 85,
        Taxon.FOCUSED_SHOT_AND_FROZEN: 25,
        Taxon.MODERATE: 10,
        Taxon.FOCUSED_SHOT_AND_LOW: 3,
        Taxon.ACTIVE: 2,
    },
    "AGILE_WORLD": {
        Taxon.FROZEN: 5,
        Taxon.ALMOST_FROZEN: 15,
        Taxon.FOCUSED_SHOT_AND_FROZEN: 10,
        Taxon.MODERATE: 70,
        Taxon.FOCUSED_SHOT_AND_LOW: 25,
        Taxon.ACTIVE: 70,
    },
    "SHOT_WORLD": {
        Taxon.FROZEN: 15,
        Taxon.ALMOST_FROZEN: 25,
        Taxon.FOCUSED_SHOT_AND_FROZEN: 75,
        Taxon.MODERATE: 15,
        Taxon.FOCUSED_SHOT_AND_LOW: 55,
        Taxon.ACTIVE: 10,
    },
}

SCENARIOS = tuple(_SCENARIO_MIXES)


def scenario_profiles(name: str) -> tuple[TaxonProfile, ...]:
    """The taxon profiles of one scenario (same knobs, new counts)."""
    try:
        mix = _SCENARIO_MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {SCENARIOS}"
        ) from None
    total = sum(mix.values())
    if total != 195:
        raise ValueError(f"scenario {name!r} sums to {total}, not 195")
    return tuple(
        dataclasses.replace(profile, count=mix[profile.taxon])
        for profile in CANONICAL_PROFILES
    )


def generate_scenario(name: str, *, seed: int | None = None):
    """Generate a scenario corpus (blank projects only where plausible)."""
    from .generator import DEFAULT_SEED, generate_corpus

    profiles = scenario_profiles(name)
    frozenish = sum(
        profile.count for profile in profiles if profile.taxon.is_frozenish
    )
    return generate_corpus(
        seed=DEFAULT_SEED if seed is None else seed,
        profiles=profiles,
        blank_projects=min(2, frozenish),
    )
