"""Deterministic name pools for synthetic projects and schemas.

The generator needs plausible identifiers (project slugs, table and
attribute names, file paths) that are unique within their scope and
reproducible from a seed.  All sampling goes through the caller's
``random.Random`` instance so corpora are fully deterministic.
"""

from __future__ import annotations

import random

_ORGS = (
    "acme", "geodata", "cloudwork", "openshop", "mediakit", "nightowl",
    "redleaf", "bitforge", "quietriver", "stackware", "lamplight",
    "greenfield", "ironbird", "softcircuit", "dataplane", "northpine",
)

_PROJECT_WORDS = (
    "parser", "tracker", "gateway", "monitor", "billing", "catalog",
    "scheduler", "inventory", "forum", "wiki", "metrics", "notes",
    "ledger", "courier", "archive", "directory", "survey", "pipeline",
    "dashboard", "registry", "planner", "crawler", "store", "chat",
)

_TABLE_WORDS = (
    "users", "accounts", "orders", "items", "products", "sessions",
    "comments", "posts", "tags", "categories", "events", "messages",
    "invoices", "payments", "tickets", "projects", "tasks", "files",
    "logs", "settings", "groups", "roles", "devices", "locations",
    "subscriptions", "reports", "notes", "audits", "tokens", "jobs",
)

_ATTRIBUTE_WORDS = (
    "name", "title", "description", "status", "kind", "email", "url",
    "body", "amount", "price", "quantity", "code", "label", "owner_id",
    "parent_id", "position", "score", "phone", "address", "city",
    "country", "notes", "slug", "token", "size", "weight", "priority",
    "color", "source", "target",
)

_ATTRIBUTE_TYPES = (
    "INT",
    "BIGINT",
    "SMALLINT",
    "VARCHAR(40)",
    "VARCHAR(100)",
    "VARCHAR(255)",
    "TEXT",
    "BOOLEAN",
    "DATE",
    "TIMESTAMP",
    "DECIMAL(10, 2)",
    "DOUBLE",
)

_SOURCE_DIRS = ("src", "lib", "app", "core", "web", "api", "util", "cli")
_SOURCE_EXTS = (".js", ".py", ".java", ".php", ".rb", ".go", ".c", ".ts")

_DEVELOPERS = (
    ("Alice Muller", "alice@example.org"),
    ("Bob Chen", "bob@example.org"),
    ("Carla Diaz", "carla@example.org"),
    ("Deniz Arslan", "deniz@example.org"),
    ("Erik Larsen", "erik@example.org"),
    ("Fatima Khan", "fatima@example.org"),
    ("Giorgos Pappas", "giorgos@example.org"),
)


def project_name(rng: random.Random, index: int) -> str:
    """A GitHub-style ``org/repo`` slug, unique via the index."""
    org = rng.choice(_ORGS)
    word = rng.choice(_PROJECT_WORDS)
    return f"{org}/{word}-{index:03d}"


def table_name(rng: random.Random, taken: set[str]) -> str:
    """A fresh table name not colliding with ``taken`` (lower-case keys)."""
    base = rng.choice(_TABLE_WORDS)
    if base not in taken:
        return base
    for _ in range(100):
        candidate = f"{base}_{rng.randint(2, 999)}"
        if candidate not in taken:
            return candidate
    raise RuntimeError("table name pool exhausted")


def attribute_name(rng: random.Random, taken: set[str]) -> str:
    """A fresh attribute name not colliding with ``taken``."""
    base = rng.choice(_ATTRIBUTE_WORDS)
    if base not in taken:
        return base
    for _ in range(100):
        candidate = f"{base}_{rng.randint(2, 999)}"
        if candidate not in taken:
            return candidate
    raise RuntimeError("attribute name pool exhausted")


def attribute_type(rng: random.Random) -> str:
    return rng.choice(_ATTRIBUTE_TYPES)


def different_type(rng: random.Random, current: str) -> str:
    """A type spelling that differs from ``current`` (for type changes)."""
    for _ in range(20):
        candidate = rng.choice(_ATTRIBUTE_TYPES)
        if candidate.lower() != current.lower():
            return candidate
    return "TEXT" if current.lower() != "text" else "VARCHAR(255)"


def source_file(rng: random.Random, index: int) -> str:
    directory = rng.choice(_SOURCE_DIRS)
    ext = rng.choice(_SOURCE_EXTS)
    return f"{directory}/module_{index:03d}{ext}"


def developer(rng: random.Random) -> tuple[str, str]:
    return rng.choice(_DEVELOPERS)


def developer_pool(
    rng: random.Random, count: int
) -> list[tuple[str, str]]:
    """A project's contributor pool (distinct developers)."""
    count = max(1, min(count, len(_DEVELOPERS)))
    return rng.sample(_DEVELOPERS, count)
