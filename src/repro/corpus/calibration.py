"""Calibration targets: the paper's numbers as checkable bands.

The generator's profiles were tuned against the paper's reported values;
this module makes those targets first-class: each
:class:`CalibrationTarget` names a paper value, the tolerance band the
synthetic corpus is expected to hit, and how to extract the measured
value from a study.  ``calibration_report`` scores any study against the
full target set — the same check the test suite and EXPERIMENTS.md use,
available to anyone re-tuning profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # avoid the corpus -> analysis -> corpus import cycle
    from ..analysis.study import StudyResult


@dataclass(frozen=True)
class CalibrationTarget:
    """One paper value with its acceptance band."""

    name: str
    paper_value: float
    band: tuple[float, float]
    extract: Callable[["StudyResult"], float]
    description: str = ""

    def measure(self, study: "StudyResult") -> "CalibrationOutcome":
        measured = self.extract(study)
        low, high = self.band
        return CalibrationOutcome(
            target=self,
            measured=measured,
            within_band=low <= measured <= high,
        )


@dataclass(frozen=True)
class CalibrationOutcome:
    target: CalibrationTarget
    measured: float
    within_band: bool

    def __str__(self) -> str:
        low, high = self.target.band
        status = "ok" if self.within_band else "MISS"
        return (
            f"[{status}] {self.target.name}: measured "
            f"{self.measured:.3f}, paper {self.target.paper_value:.3f}, "
            f"band [{low:.3f}, {high:.3f}]"
        )


def _share(key: str) -> Callable[["StudyResult"], float]:
    def extract(study: "StudyResult") -> float:
        headline = study.headline()
        return headline[key] / headline["projects"]

    return extract


#: The calibration contract of the canonical corpus.  Bands are wide
#: enough to hold across generator seeds (see the seed-sensitivity
#: ablation) while still pinning the paper's qualitative claims.
CALIBRATION_TARGETS: tuple[CalibrationTarget, ...] = (
    CalibrationTarget(
        name="blanks",
        paper_value=2 / 195,
        band=(2 / 195, 2 / 195),
        extract=_share("blanks"),
        description="projects with undefined advance measures",
    ),
    CalibrationTarget(
        name="always_over_time",
        paper_value=80 / 195,
        band=(0.30, 0.60),
        extract=_share("always_over_time"),
        description="schema always ahead of time progress",
    ),
    CalibrationTarget(
        name="always_over_source",
        paper_value=57 / 195,
        band=(0.20, 0.48),
        extract=_share("always_over_source"),
        description="schema always ahead of source progress",
    ),
    CalibrationTarget(
        name="always_over_both",
        paper_value=55 / 195,
        band=(0.18, 0.45),
        extract=_share("always_over_both"),
        description="schema always ahead of both",
    ),
    CalibrationTarget(
        name="attain75_first20",
        paper_value=98 / 195,
        band=(0.30, 0.62),
        extract=_share("attain75_first20"),
        description="75% of evolution within the first 20% of life",
    ),
    CalibrationTarget(
        name="attain75_after80",
        paper_value=27 / 195,
        band=(0.04, 0.26),
        extract=_share("attain75_after80"),
        description="75% of evolution only after 80% of life",
    ),
    CalibrationTarget(
        name="attain80_first50",
        paper_value=130 / 195,
        band=(0.50, 0.80),
        extract=_share("attain80_first50"),
        description="80% of evolution within half the life",
    ),
    CalibrationTarget(
        name="attain100_after80",
        paper_value=62 / 195,
        band=(0.20, 0.45),
        extract=_share("attain100_after80"),
        description="full evolution only after 80% of life",
    ),
    CalibrationTarget(
        name="hand_in_hand",
        paper_value=0.20,
        band=(0.05, 0.35),
        extract=_share("hand_in_hand"),
        description="projects in the top synchronicity bucket",
    ),
    CalibrationTarget(
        name="advance_time_ge_half",
        paper_value=152 / 195,
        band=(0.70, 0.95),
        extract=_share("advance_time_ge_half"),
        description="schema ahead of time for >= half the life",
    ),
    CalibrationTarget(
        name="advance_src_ge_half",
        paper_value=138 / 195,
        band=(0.60, 0.90),
        extract=_share("advance_src_ge_half"),
        description="schema ahead of source for >= half the life",
    ),
    CalibrationTarget(
        name="tau_sync",
        paper_value=0.67,
        band=(0.55, 0.90),
        extract=lambda study: study.statistics().tau_sync.statistic,
        description="Kendall tau between 5%- and 10%-synchronicity",
    ),
    CalibrationTarget(
        name="tau_advance",
        paper_value=0.75,
        band=(0.55, 0.90),
        extract=lambda study: study.statistics().tau_advance.statistic,
        description="Kendall tau between the two advance measures",
    ),
)


@dataclass
class CalibrationReport:
    """All targets scored against one study."""

    outcomes: list[CalibrationOutcome]

    @property
    def passed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.within_band)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> bool:
        return self.passed == self.total

    def misses(self) -> list[CalibrationOutcome]:
        return [o for o in self.outcomes if not o.within_band]

    def render(self) -> str:
        lines = [f"Calibration: {self.passed}/{self.total} targets in band"]
        lines.extend(f"  {outcome}" for outcome in self.outcomes)
        return "\n".join(lines)


def calibration_report(
    study: "StudyResult",
    *,
    targets: tuple[CalibrationTarget, ...] = CALIBRATION_TARGETS,
) -> CalibrationReport:
    """Score a study against the calibration contract."""
    return CalibrationReport(
        outcomes=[target.measure(study) for target in targets]
    )
