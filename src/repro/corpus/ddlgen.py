"""Synthesis and vendor-flavoured emission of schemas.

Two jobs: (a) build a plausible random initial schema; (b) sample SMO
sequences of a target activity magnitude to evolve it; (c) serialise a
schema to MySQL- or Postgres-flavoured DDL text, so the downstream
pipeline exercises the real lexer/parser paths (backticks, ENGINE
options, SERIAL columns) rather than only the generic emitter.
"""

from __future__ import annotations

import random

from ..schema import Attribute, Schema, Table, normalize_type
from ..smo import (
    SMO,
    AddAttribute,
    ChangeType,
    CreateTable,
    DropAttribute,
    DropTable,
    SetPrimaryKey,
)
from . import names


def random_table(
    rng: random.Random,
    taken_tables: set[str],
    *,
    attrs_lo: int = 3,
    attrs_hi: int = 10,
) -> Table:
    """A fresh table with an ``id`` primary key and random attributes."""
    name = names.table_name(rng, taken_tables)
    table = Table(name=name)
    table.add_attribute(
        Attribute("id", normalize_type("INT"), nullable=False)
    )
    taken_attrs = {"id"}
    for _ in range(rng.randint(attrs_lo - 1, attrs_hi - 1)):
        attr_name = names.attribute_name(rng, taken_attrs)
        taken_attrs.add(attr_name)
        table.add_attribute(
            Attribute(
                attr_name,
                normalize_type(names.attribute_type(rng)),
                nullable=rng.random() < 0.7,
            )
        )
    table.primary_key = ("id",)
    return table


def random_schema(
    rng: random.Random,
    *,
    tables_lo: int = 3,
    tables_hi: int = 12,
    attrs_lo: int = 3,
    attrs_hi: int = 10,
) -> Schema:
    """A plausible initial schema."""
    schema = Schema()
    taken: set[str] = set()
    for _ in range(rng.randint(tables_lo, tables_hi)):
        table = random_table(
            rng, taken, attrs_lo=attrs_lo, attrs_hi=attrs_hi
        )
        taken.add(table.name.lower())
        schema.add_table(table)
    return schema


class TableSelector:
    """Persistent hot/cold table weighting for a project's lifetime.

    Real schemata concentrate change on a few hot tables ([24]: 60–90%
    of changes touch 20% of the tables, ~40% never change).  Each table
    gets a Pareto-distributed weight on first sight; weighted sampling
    then reproduces that locality across all of a project's commits.
    """

    def __init__(self, rng: random.Random, *, alpha: float = 0.6):
        self._rng = rng
        self._alpha = alpha
        self._weights: dict[str, float] = {}

    def weight(self, name: str) -> float:
        key = name.lower()
        if key not in self._weights:
            self._weights[key] = self._rng.paretovariate(self._alpha)
        return self._weights[key]

    def choose(self, names: list[str]) -> str:
        weights = [self.weight(n) for n in names]
        return self._rng.choices(names, weights=weights, k=1)[0]


def sample_change_smos(
    schema: Schema,
    target_activity: int,
    rng: random.Random,
    *,
    table_ops: bool = True,
    selector: TableSelector | None = None,
) -> list[SMO]:
    """SMOs whose measured diff activity is approximately ``target``.

    Operations pick *distinct* targets within one batch so that the
    per-commit diff activity matches the sum of the operators' intended
    weights (adding a column and then retyping it in the same commit
    would be measured as a single injection).  A ``selector`` makes
    table choice hot/cold-skewed across the project's whole life.
    """
    smos: list[SMO] = []
    state = schema.copy()
    budget = target_activity
    touched: set[tuple[str, str]] = set()

    while budget > 0:
        roll = rng.random()
        table_names = state.table_names
        if table_ops and budget >= 4 and roll < 0.22 and table_names:
            # born table: activity = its attribute count
            attrs_hi = min(10, max(3, budget))
            table = random_table(
                rng,
                {t.lower() for t in table_names},
                attrs_lo=min(3, attrs_hi),
                attrs_hi=attrs_hi,
            )
            smo: SMO = CreateTable(table)
            cost = len(table)
        elif (
            table_ops
            and budget >= 3
            and roll < 0.32
            and len(table_names) > 2
        ):
            victim = rng.choice(table_names)
            cost = len(state.table(victim))
            if cost > budget + 2:
                continue
            smo = DropTable(victim)
        else:
            smo, cost = _intra_table_op(state, rng, touched, selector)
            if smo is None:
                break
        try:
            smo.apply(state)
        except Exception:
            continue
        smos.append(smo)
        budget -= cost
    return smos


def _intra_table_op(
    state: Schema,
    rng: random.Random,
    touched: set[tuple[str, str]],
    selector: TableSelector | None = None,
) -> tuple[SMO | None, int]:
    """One attribute-level operation on a not-yet-touched target."""
    table_names = state.table_names
    if not table_names:
        return None, 0
    for _ in range(30):
        if selector is not None:
            table = state.table(selector.choose(table_names))
        else:
            table = state.table(rng.choice(table_names))
        kind = rng.random()
        if kind < 0.45:
            taken = {a.lower() for a in table.attribute_names}
            attr_name = names.attribute_name(rng, taken)
            key = (table.key, attr_name.lower())
            if key in touched:
                continue
            touched.add(key)
            return (
                AddAttribute(
                    table.name,
                    Attribute(
                        attr_name,
                        normalize_type(names.attribute_type(rng)),
                        nullable=rng.random() < 0.7,
                    ),
                ),
                1,
            )
        if kind < 0.65 and len(table) > 2:
            candidates = [
                a for a in table.attributes
                if a.key not in table.pk_keys()
                and (table.key, a.key) not in touched
            ]
            if not candidates:
                continue
            victim = rng.choice(candidates)
            touched.add((table.key, victim.key))
            return DropAttribute(table.name, victim.name), 1
        if kind < 0.92:
            candidates = [
                a for a in table.attributes
                if (table.key, a.key) not in touched
            ]
            if not candidates:
                continue
            attr = rng.choice(candidates)
            touched.add((table.key, attr.key))
            new_type = names.different_type(rng, str(attr.data_type))
            return ChangeType(table.name, attr.name, new_type), 1
        # PK change: move the PK to another column (2 participations);
        # at most one re-keying per table per commit, and neither the
        # old nor the new PK column may have been touched already —
        # otherwise the per-commit diff no longer sees 2 changes
        non_pk = [
            a for a in table.attributes if a.key not in table.pk_keys()
        ]
        if not non_pk or len(table.primary_key) != 1:
            continue
        old_pk_key = next(iter(table.pk_keys()))
        new_pk = rng.choice(non_pk)
        pk_marker = (table.key, "__pk__")
        if (
            pk_marker in touched
            or (table.key, new_pk.key) in touched
            or (table.key, old_pk_key) in touched
        ):
            continue
        touched.add(pk_marker)
        touched.add((table.key, new_pk.key))
        touched.add((table.key, old_pk_key))
        return SetPrimaryKey(table.name, (new_pk.name,)), 2
    return None, 0


def emit_ddl(schema: Schema, vendor: str) -> str:
    """Serialise a schema with vendor-specific surface syntax.

    The surface conventions come from the dialect registry
    (:class:`~repro.sqlparser.dialect.EmitterConventions`): MySQL gets
    backtick-quoted identifiers and an ENGINE clause, Postgres a SET
    header, SQLite a PRAGMA preamble, type-affinity column spellings
    and rowid-table conventions (an inline ``INTEGER PRIMARY KEY
    AUTOINCREMENT`` while the key sits on the integer id; a table-level
    key plus ``WITHOUT ROWID`` once it has moved).  Every flavour
    re-parses to the same logical schema — the vendor noise exists to
    exercise the mining pipeline the way real dumps do.
    """
    conventions = _conventions(vendor)
    statements: list[str] = list(conventions.preamble)
    for table in schema.tables:
        inline_pk = _inline_pk_attr(table, conventions)
        lines: list[str] = []
        for attr in table.attributes:
            name = conventions.quote(attr.name)
            line = f"  {name} {_render_type(attr.data_type, conventions)}"
            if not attr.nullable:
                line += " NOT NULL"
            if attr.default is not None:
                line += f" DEFAULT {attr.default}"
            if inline_pk is not None and attr.key == inline_pk:
                line += " PRIMARY KEY AUTOINCREMENT"
            lines.append(line)
        suffix = conventions.table_suffix
        if table.primary_key and inline_pk is None:
            cols = ", ".join(
                conventions.quote(c) for c in table.primary_key
            )
            lines.append(f"  PRIMARY KEY ({cols})")
            if conventions.rowid_tables:
                suffix = " WITHOUT ROWID"
        body = ",\n".join(lines)
        statements.append(
            f"CREATE TABLE {conventions.quote(table.name)} "
            f"(\n{body}\n){suffix};"
        )
    header = f"-- generated schema ({vendor} dialect)\n\n"
    return header + "\n\n".join(statements) + "\n"


def _conventions(vendor: str):
    """The vendor's emitter conventions (generic fallback: bare SQL)."""
    from ..sqlparser.dialect import EmitterConventions, get_dialect

    try:
        return get_dialect(vendor).emitter
    except KeyError:
        return EmitterConventions()


def _render_type(data_type, conventions) -> str:
    """Render a column type in the dialect's preferred spelling."""
    spelled = conventions.type_name(data_type.family)
    if spelled is None:
        return data_type.render_sql()
    rendered = data_type.render_sql()
    original = data_type.family.upper()
    if rendered.startswith(original):
        return spelled + rendered[len(original):]
    return spelled


def _inline_pk_attr(table: Table, conventions) -> str | None:
    """The attribute key carrying an inline rowid primary key, if any.

    SQLite convention: a single-column primary key on an
    INTEGER-affinity column renders inline (``INTEGER PRIMARY KEY
    AUTOINCREMENT``); any other key shape renders table-level and the
    table becomes ``WITHOUT ROWID``.
    """
    if not conventions.rowid_tables or len(table.primary_key) != 1:
        return None
    pk_key = next(iter(table.pk_keys()))
    for attr in table.attributes:
        if attr.key == pk_key:
            if conventions.type_name(attr.data_type.family) == "INTEGER":
                return attr.key
            return None
    return None
