"""Synthetic corpus: generative models, elicitation, canonical corpus."""

from .calibration import (
    CALIBRATION_TARGETS,
    CalibrationOutcome,
    CalibrationReport,
    CalibrationTarget,
    calibration_report,
)
from .ddlgen import TableSelector, emit_ddl, random_schema, sample_change_smos
from .noise import inject_noise, table_names_in
from .elicitation import (
    EXCLUDED_PATH_TERMS,
    ElicitationReport,
    RepoMetadata,
    choose_ddl_path,
    path_is_excluded,
    screen,
)
from .generator import (
    DEFAULT_SEED,
    GeneratedProject,
    ProjectSpec,
    corpus_specs,
    generate_corpus,
    generate_project,
)
from .scenarios import SCENARIOS, generate_scenario, scenario_profiles
from .profiles import (
    CANONICAL_PROFILES,
    CANONICAL_SIZE,
    TaxonProfile,
    profile_for,
    scaled_profiles,
)

__all__ = [
    "CALIBRATION_TARGETS",
    "CANONICAL_PROFILES",
    "CalibrationOutcome",
    "CalibrationReport",
    "CalibrationTarget",
    "calibration_report",
    "inject_noise",
    "table_names_in",
    "CANONICAL_SIZE",
    "DEFAULT_SEED",
    "EXCLUDED_PATH_TERMS",
    "ElicitationReport",
    "GeneratedProject",
    "ProjectSpec",
    "RepoMetadata",
    "TableSelector",
    "TaxonProfile",
    "choose_ddl_path",
    "emit_ddl",
    "corpus_specs",
    "generate_corpus",
    "generate_project",
    "path_is_excluded",
    "profile_for",
    "scaled_profiles",
    "random_schema",
    "sample_change_smos",
    "screen",
    "SCENARIOS",
    "generate_scenario",
    "scenario_profiles",
]
