"""The dataset's project elicitation rules (§3.1 of the paper).

The Schema_Evo_2019 corpus was built in three phases: collection from
BigQuery (original repos, > 0 stars, > 1 contributor), elicitation
(single-DDL-file projects, no ``example/demo/test/migrate`` path terms,
MySQL before Postgres when both exist), and post-processing (at least
two versions, at least one CREATE TABLE).  This module implements the
same inclusion logic so candidate repositories — synthetic or real —
are screened identically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..vcs import Repository

#: Path terms that mark toy or non-primary schemata.
EXCLUDED_PATH_TERMS = ("example", "demo", "test", "migrate")

#: Vendor preference when a project ships DDL for several (§3.1 phase 2c).
VENDOR_PREFERENCE = ("mysql", "postgres")

_TERM_RES = [
    re.compile(rf"(^|[/_\-.]){term}", re.IGNORECASE)
    for term in EXCLUDED_PATH_TERMS
]


@dataclass(frozen=True)
class RepoMetadata:
    """Hosting metadata used by the collection phase."""

    stars: int = 1
    contributors: int = 2
    is_fork: bool = False


@dataclass
class ElicitationReport:
    """Outcome of screening one candidate repository."""

    name: str
    accepted: bool
    reasons: list[str] = field(default_factory=list)


def path_is_excluded(path: str) -> bool:
    """True when the path carries an excluded term (``test/x.sql``...)."""
    return any(pattern.search(path) for pattern in _TERM_RES)


def choose_ddl_path(sql_paths: list[str]) -> str | None:
    """Pick the project's DDL file among candidate .sql paths.

    Excluded-term paths are dropped first; if several remain, a vendor
    hint in the filename decides by preference order, otherwise the
    project is not a single-DDL-file project and ``None`` is returned.
    """
    candidates = [p for p in sql_paths if not path_is_excluded(p)]
    if not candidates:
        return None
    if len(candidates) == 1:
        return candidates[0]
    for vendor in VENDOR_PREFERENCE:
        hinted = [p for p in candidates if vendor in p.lower()]
        if len(hinted) == 1:
            return hinted[0]
    return None


def screen(
    repo: Repository,
    metadata: RepoMetadata = RepoMetadata(),
) -> ElicitationReport:
    """Apply all three phases' rules to one candidate repository."""
    report = ElicitationReport(name=repo.name, accepted=True)

    def reject(reason: str) -> None:
        report.accepted = False
        report.reasons.append(reason)

    # phase 1: collection criteria
    if metadata.is_fork:
        reject("not an original repository")
    if metadata.stars <= 0:
        reject("zero stars")
    if metadata.contributors <= 1:
        reject("single contributor")

    # phase 2: elicitation
    sql_paths = sorted(
        path for path in repo.paths() if path.lower().endswith(".sql")
    )
    if not sql_paths:
        reject("no .sql file")
        return report
    ddl_path = choose_ddl_path(sql_paths)
    if ddl_path is None:
        reject(f"no single DDL file among {sql_paths}")
        return report

    # phase 3: post-processing
    versions = repo.versions_of(ddl_path)
    if len(versions) < 2:
        reject(f"fewer than two versions of {ddl_path}")
    if versions:
        from ..mining import SchemaHistory

        history = SchemaHistory.from_file_versions(versions)
        if not history.has_create_table:
            reject("no CREATE TABLE statement in any version")
    return report
