"""Vendor-noise injection for generated DDL texts.

Real schema files are rarely clean CREATE TABLE scripts: mysqldump
wraps them in executable comment hints and LOCK/INSERT blocks, pg_dump
in SET headers and sequences.  This module decorates a generated DDL
text with that noise — *without changing its logical schema* (the tests
assert the decorated text diffs as identical) — so the corpus exercises
the parser's tolerance on every single project, not only in fixtures.
"""

from __future__ import annotations

import random
import re

_TABLE_RE = re.compile(r"CREATE TABLE (?:`(?P<q>[^`]+)`|(?P<b>\w+))")

_MYSQL_HEADER = """\
-- MySQL dump 10.13  Distrib 5.7.{patch}, for Linux (x86_64)
--
-- Host: localhost    Database: {database}
-- ------------------------------------------------------

/*!40101 SET @OLD_CHARACTER_SET_CLIENT=@@CHARACTER_SET_CLIENT */;
/*!40101 SET NAMES utf8 */;
/*!40103 SET TIME_ZONE='+00:00' */;

"""

_POSTGRES_HEADER = """\
--
-- PostgreSQL database dump
--

SET statement_timeout = 0;
SET lock_timeout = 0;
SET standard_conforming_strings = on;
SET row_security = off;

"""

_SQLITE_HEADER = """\
-- SQLite dump (sqlite3 .dump)
PRAGMA foreign_keys=OFF;
BEGIN TRANSACTION;

"""

_SQLITE_FOOTER = "COMMIT;\n"

_SEED_VALUES = ("'alpha'", "'beta'", "1", "0", "NULL", "'x''y'")


def table_names_in(ddl_text: str) -> list[str]:
    """Table names mentioned by CREATE TABLE statements in the text."""
    names = []
    for match in _TABLE_RE.finditer(ddl_text):
        names.append(match.group("q") or match.group("b"))
    return names


def inject_noise(
    ddl_text: str, rng: random.Random, vendor: str
) -> str:
    """Decorate a DDL text with vendor dump noise.

    The decoration is purely additive (headers, comments, data seeds,
    LOCK/transaction wrappers) — the logical schema of the result is
    identical.  The MySQL and Postgres draw sequences are untouched by
    the SQLite branch: each vendor consumes the RNG exactly as before.
    """
    tables = table_names_in(ddl_text)
    parts: list[str] = []
    if vendor == "mysql":
        parts.append(
            _MYSQL_HEADER.format(
                patch=rng.randint(10, 44),
                database=f"app_{rng.randint(1, 99)}",
            )
        )
    elif vendor == "sqlite":
        parts.append(_SQLITE_HEADER)
    else:
        parts.append(_POSTGRES_HEADER)
    parts.append(ddl_text)

    if tables and rng.random() < 0.8:
        parts.append("\n" + _data_seed(rng.choice(tables), rng, vendor))
    if vendor == "sqlite":
        parts.append("\n" + _SQLITE_FOOTER)
    if rng.random() < 0.5:
        parts.append(
            f"\n-- Dump completed on 20{rng.randint(10, 22)}-"
            f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}\n"
        )
    return "".join(parts)


def _data_seed(table: str, rng: random.Random, vendor: str) -> str:
    """A small block of seed data for one table."""
    rows = ", ".join(
        "(" + ", ".join(
            rng.choice(_SEED_VALUES) for _ in range(rng.randint(1, 3))
        ) + ")"
        for _ in range(rng.randint(1, 3))
    )
    quoted = f"`{table}`" if vendor == "mysql" else table
    statements = [f"INSERT INTO {quoted} VALUES {rows};"]
    if vendor == "mysql" and rng.random() < 0.6:
        statements = (
            [f"LOCK TABLES {quoted} WRITE;"]
            + statements
            + ["UNLOCK TABLES;"]
        )
    return "\n".join(statements) + "\n"
