"""Per-taxon generative profiles.

Each profile parameterises how a project of that taxon behaves: how long
it lives, how big its initial schema is, how many schema-changing commits
it receives and when in its life they land, whether the DDL file appears
together with the project or later (the paper notes "several projects
where the DDL file appeared later in the life of a project"), and how its
surrounding source code evolves — including how much of the source lands
in the initial import (abandoned-after-import projects are common in
FOSS and produce the high-synchronicity frozen histories of Fig. 3a).

The canonical counts follow the taxa distribution reported for the
Schema_Evo_2019 dataset ([33] and §2.2 of the paper): of the 327
harvested histories, 40% were single-commit (excluded from the 195),
about 10% had versions but no logical change (FROZEN), about 20% were
ALMOST FROZEN, and the rest spread over the more active taxa.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..taxa import Taxon

#: Change-timing regimes: Beta(a, b) over the (post-DDL) life span.
TIMING_REGIMES: dict[str, tuple[float, float]] = {
    "early": (1.2, 10.0),
    "spread": (1.1, 1.1),
    "late": (4.0, 1.5),
}


@dataclass(frozen=True)
class TaxonProfile:
    """Generative parameters for one taxon.

    ``timing_mix`` gives the probabilities of the early/spread/late
    change-timing regimes; one regime is drawn per project so each
    history is temporally coherent.  ``initial_import_share`` is the
    fraction of all source file-updates landing in the initial commit,
    sampled U-shaped so both import-and-abandon and slow-start projects
    exist.  ``second_import`` is ``(probability, lo, hi)`` for a second
    large source drop (vendored dependencies, generated code) early in
    the life, sized as a share of the total source budget.
    ``source_schema_alignment`` couples the source import share to the
    schema's own initial share (a project that starts with most of its
    schema usually starts with most of its code); 0 keeps them
    independent, 1 makes them equal up to jitter.
    ``ddl_delay_prob``/``ddl_delay_beta`` control DDL files that appear
    only after the project has lived for a while.
    """

    taxon: Taxon
    count: int
    duration: tuple[int, int]
    tables: tuple[int, int]
    attrs: tuple[int, int]
    n_changes: tuple[int, int]
    change_magnitude: tuple[int, int]
    n_spikes: tuple[int, int]
    spike_magnitude: tuple[int, int]
    n_null_commits: tuple[int, int]
    timing_mix: tuple[float, float, float]
    ddl_delay_prob: float
    ddl_delay_beta: tuple[float, float]
    monthly_updates: tuple[int, int]
    project_shape_beta: tuple[float, float]
    initial_import_share: tuple[float, float]
    source_schema_alignment: float
    second_import: tuple[float, float, float]
    spike_source_coupling: tuple[float, float]
    table_ops: bool

    def sample_duration(self, rng: random.Random) -> int:
        """Log-uniform duration in months (long lives are rarer)."""
        lo, hi = self.duration
        if lo == hi:
            return lo
        value = math.exp(rng.uniform(math.log(lo), math.log(hi)))
        return max(lo, min(hi, round(value)))

    def sample_regime(self, rng: random.Random) -> tuple[float, float]:
        """Draw the project's change-timing regime."""
        roll = rng.random()
        p_early, p_spread, _ = self.timing_mix
        if roll < p_early:
            return TIMING_REGIMES["early"]
        if roll < p_early + p_spread:
            return TIMING_REGIMES["spread"]
        return TIMING_REGIMES["late"]

    def sample_import_share(self, rng: random.Random) -> float:
        """U-shaped draw of the initial import's share of source updates."""
        lo, hi = self.initial_import_share
        return lo + (hi - lo) * rng.betavariate(0.45, 0.45)


#: The canonical corpus composition: 195 projects.
CANONICAL_PROFILES: tuple[TaxonProfile, ...] = (
    TaxonProfile(
        taxon=Taxon.FROZEN,
        count=33,
        duration=(8, 72),
        tables=(2, 10),
        attrs=(3, 8),
        n_changes=(0, 0),
        change_magnitude=(0, 0),
        n_spikes=(0, 0),
        spike_magnitude=(0, 0),
        n_null_commits=(1, 3),
        timing_mix=(1.0, 0.0, 0.0),
        ddl_delay_prob=0.45,
        ddl_delay_beta=(1.5, 5.0),
        monthly_updates=(2, 14),
        project_shape_beta=(1.1, 1.9),
        initial_import_share=(0.30, 0.98),
        source_schema_alignment=0.3,
        second_import=(0.25, 0.15, 0.40),
        spike_source_coupling=(0.0, 0.0),
        table_ops=False,
    ),
    TaxonProfile(
        taxon=Taxon.ALMOST_FROZEN,
        count=62,
        duration=(10, 85),
        tables=(1, 8),
        attrs=(2, 8),
        n_changes=(1, 2),
        change_magnitude=(2, 5),
        n_spikes=(0, 0),
        spike_magnitude=(0, 0),
        n_null_commits=(0, 2),
        timing_mix=(0.74, 0.16, 0.10),
        ddl_delay_prob=0.50,
        ddl_delay_beta=(1.5, 5.0),
        monthly_updates=(2, 18),
        project_shape_beta=(1.1, 1.7),
        initial_import_share=(0.20, 0.98),
        source_schema_alignment=0.3,
        second_import=(0.40, 0.20, 0.50),
        spike_source_coupling=(0.0, 0.0),
        table_ops=False,
    ),
    TaxonProfile(
        taxon=Taxon.FOCUSED_SHOT_AND_FROZEN,
        count=25,
        duration=(8, 90),
        tables=(1, 6),
        attrs=(3, 8),
        n_changes=(0, 2),
        change_magnitude=(1, 2),
        n_spikes=(1, 1),
        spike_magnitude=(16, 45),
        n_null_commits=(0, 2),
        timing_mix=(0.48, 0.27, 0.25),
        ddl_delay_prob=0.25,
        ddl_delay_beta=(1.5, 5.0),
        monthly_updates=(1, 4),
        project_shape_beta=(1.1, 1.6),
        initial_import_share=(0.10, 0.45),
        source_schema_alignment=0.8,
        second_import=(0.10, 0.10, 0.25),
        spike_source_coupling=(3.0, 6.0),
        table_ops=True,
    ),
    TaxonProfile(
        taxon=Taxon.MODERATE,
        count=35,
        duration=(12, 110),
        tables=(2, 10),
        attrs=(3, 9),
        n_changes=(5, 12),
        change_magnitude=(1, 5),
        n_spikes=(0, 0),
        spike_magnitude=(0, 0),
        n_null_commits=(0, 2),
        timing_mix=(0.34, 0.48, 0.18),
        ddl_delay_prob=0.40,
        ddl_delay_beta=(1.5, 4.0),
        monthly_updates=(4, 24),
        project_shape_beta=(1.2, 1.5),
        initial_import_share=(0.10, 0.55),
        source_schema_alignment=0.45,
        second_import=(0.30, 0.15, 0.40),
        spike_source_coupling=(0.0, 0.0),
        table_ops=False,
    ),
    TaxonProfile(
        taxon=Taxon.FOCUSED_SHOT_AND_LOW,
        count=18,
        duration=(12, 110),
        tables=(3, 10),
        attrs=(3, 9),
        n_changes=(4, 9),
        change_magnitude=(1, 4),
        n_spikes=(1, 2),
        spike_magnitude=(14, 35),
        n_null_commits=(0, 2),
        timing_mix=(0.35, 0.42, 0.23),
        ddl_delay_prob=0.30,
        ddl_delay_beta=(1.5, 4.0),
        monthly_updates=(2, 8),
        project_shape_beta=(1.2, 1.5),
        initial_import_share=(0.10, 0.40),
        source_schema_alignment=0.8,
        second_import=(0.15, 0.10, 0.30),
        spike_source_coupling=(2.5, 5.0),
        table_ops=True,
    ),
    TaxonProfile(
        taxon=Taxon.ACTIVE,
        count=22,
        duration=(24, 150),
        tables=(4, 15),
        attrs=(4, 10),
        n_changes=(16, 34),
        change_magnitude=(2, 8),
        n_spikes=(0, 2),
        spike_magnitude=(10, 25),
        n_null_commits=(0, 2),
        timing_mix=(0.12, 0.60, 0.28),
        ddl_delay_prob=0.45,
        ddl_delay_beta=(1.5, 4.0),
        monthly_updates=(6, 32),
        project_shape_beta=(1.05, 1.15),
        initial_import_share=(0.02, 0.15),
        source_schema_alignment=0.55,
        second_import=(0.25, 0.10, 0.30),
        spike_source_coupling=(0.8, 2.0),
        table_ops=True,
    ),
)


def profile_for(taxon: Taxon) -> TaxonProfile:
    """The canonical profile of one taxon (KeyError when unknown)."""
    for profile in CANONICAL_PROFILES:
        if profile.taxon is taxon:
            return profile
    raise KeyError(taxon)


def scaled_profiles(scale: int) -> tuple[TaxonProfile, ...]:
    """The canonical profiles shrunk by ``scale`` (micro-studies).

    Each taxon keeps ``round(count / scale)`` projects, at least one, so
    every taxon stays represented however hard the corpus is shrunk.
    ``scale <= 1`` returns the canonical profiles unchanged.
    """
    from dataclasses import replace

    if scale <= 1:
        return CANONICAL_PROFILES
    return tuple(
        replace(profile, count=max(1, round(profile.count / scale)))
        for profile in CANONICAL_PROFILES
    )


CANONICAL_SIZE = sum(p.count for p in CANONICAL_PROFILES)
assert CANONICAL_SIZE == 195, CANONICAL_SIZE


def sized_profiles(total: int) -> tuple[TaxonProfile, ...]:
    """The canonical taxa mix re-sized to exactly ``total`` projects.

    The scale-out knob (``--projects N``): counts are allocated
    proportionally to the canonical composition by largest remainder,
    every taxon keeps at least one project, and the counts always sum
    to ``total`` exactly — so a 10k-project corpus carries the same
    17% FROZEN / 32% ALMOST FROZEN / ... mix as the canonical 195.
    Deterministic: the same ``total`` always yields the same counts
    (ties break in canonical declaration order).
    """
    from dataclasses import replace

    if total == CANONICAL_SIZE:
        return CANONICAL_PROFILES
    if total < len(CANONICAL_PROFILES):
        raise ValueError(
            f"--projects needs at least {len(CANONICAL_PROFILES)} "
            f"(one per taxon), got {total}"
        )
    quotas = [
        profile.count * total / CANONICAL_SIZE
        for profile in CANONICAL_PROFILES
    ]
    counts = [max(1, int(quota)) for quota in quotas]
    # largest-remainder top-up (or trim, when the >=1 floors oversubscribed)
    while sum(counts) < total:
        i = max(
            range(len(counts)),
            key=lambda j: (quotas[j] - counts[j], -j),
        )
        counts[i] += 1
    while sum(counts) > total:
        i = min(
            (j for j in range(len(counts)) if counts[j] > 1),
            key=lambda j: (quotas[j] - counts[j], -j),
        )
        counts[i] -= 1
    return tuple(
        replace(profile, count=count)
        for profile, count in zip(CANONICAL_PROFILES, counts)
    )


def corpus_size(profiles: tuple[TaxonProfile, ...]) -> int:
    """How many projects a profile set plans, without sampling any."""
    return sum(profile.count for profile in profiles)
