"""The synthetic FOSS-project generator.

For each project, the generator produces the two textual artifacts that
a real clone yields — ``git log --name-status`` output and the sequence
of DDL file versions — and then runs them back through the *real*
parsers to build the :class:`~repro.vcs.Repository`.  Nothing downstream
can tell a generated project from a mined one; provenance is the only
difference (see DESIGN.md §2).

The generative story per project:

1. a duration, a change-timing regime, an initial-import share and an
   optional DDL-file delay are drawn from the taxon profile;
2. an initial schema is synthesised; schema-changing commits are
   scheduled over the post-DDL life and realised as SMO batches whose
   DDL text is re-emitted after every change;
3. source activity is allocated month-by-month from a Beta-shaped
   profile, with the initial import taking its share up front and spike
   months receiving coupled source work;
4. everything is serialised to git-log text and re-parsed.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from datetime import datetime, timezone

from ..heartbeat import Month
from ..obs.metrics import get_metrics
from ..obs.progress import ProgressTracker
from ..obs.trace import get_tracer
from ..taxa import Taxon
from ..vcs import (
    Commit,
    FileChange,
    FileVersion,
    Repository,
    format_git_log,
    parse_repository,
    synthetic_sha,
)
from . import names
from .ddlgen import TableSelector, emit_ddl, random_schema, sample_change_smos
from .noise import inject_noise
from .profiles import CANONICAL_PROFILES, TaxonProfile

#: Minutes in a generator month (a flat 28-day month keeps dates valid).
_MINUTES_PER_MONTH = 28 * 24 * 60

_SCHEMA_MESSAGES = (
    "update schema",
    "add new tables",
    "schema: adjust column types",
    "migrate database structure",
    "db: drop unused columns",
)
_SOURCE_MESSAGES = (
    "fix bug",
    "add feature",
    "refactor module",
    "update docs and code",
    "performance tweaks",
    "cleanup",
)


@dataclass(frozen=True)
class ProjectSpec:
    """The sampled identity of one synthetic project."""

    name: str
    taxon: Taxon
    seed: int
    vendor: str
    duration_months: int
    start: Month
    ddl_path: str = "schema.sql"


@dataclass
class GeneratedProject:
    """A generated project: repository plus generation ground truth.

    ``trace`` transports the project's serialised ``generate_project``
    span across the worker boundary when tracing is enabled; the corpus
    driver reattaches it under the ``generate`` span and clears the
    field.  It never participates in equality.
    """

    spec: ProjectSpec
    repository: Repository
    git_log_text: str
    ddl_versions: list[str]
    trace: dict | None = field(default=None, compare=False, repr=False)

    @property
    def true_taxon(self) -> Taxon:
        return self.spec.taxon

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass
class _SchemaEvent:
    month: int
    magnitude: int  # 0 marks a cosmetic (null) commit
    is_spike: bool = False


@dataclass
class _PlannedCommit:
    minute: int  # absolute minutes since project start
    files: list[FileChange]
    message: str
    ddl_text: str | None = None  # set when the commit touches the DDL file


class _FilePool:
    """Tracks the synthetic source files of a project."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._files: list[str] = []
        self._counter = 0

    def new_file(self) -> str:
        path = names.source_file(self._rng, self._counter)
        self._counter += 1
        self._files.append(path)
        return path

    def pick_changes(
        self, count: int, *, new_ratio: float = 0.2
    ) -> list[FileChange]:
        """``count`` file changes, mixing modifications and additions."""
        changes: list[FileChange] = []
        used: set[str] = set()
        for _ in range(count):
            create_new = not self._files or self._rng.random() < new_ratio
            if create_new:
                changes.append(FileChange("A", self.new_file()))
                continue
            for _ in range(10):
                path = self._rng.choice(self._files)
                if path not in used:
                    break
            used.add(path)
            changes.append(FileChange("M", path))
        return changes


class _MinuteAllocator:
    """Unique commit timestamps within the project's month grid."""

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._used: set[int] = set()

    def reserve(self, minute: int) -> int:
        self._used.add(minute)
        return minute

    def in_month(self, month: int) -> int:
        for _ in range(1000):
            minute = month * _MINUTES_PER_MONTH + self._rng.randrange(
                1, _MINUTES_PER_MONTH
            )
            if minute not in self._used:
                self._used.add(minute)
                return minute
        raise RuntimeError("minute space exhausted")


def generate_project(
    spec: ProjectSpec, profile: TaxonProfile
) -> GeneratedProject:
    """Generate one project according to its spec and taxon profile.

    When tracing is enabled the work runs inside a detached
    ``generate_project`` span whose serialised tree rides back on
    ``project.trace`` (the generator output itself is identical either
    way — spans observe, they never steer the RNG).
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return _generate_project(spec, profile)
    with tracer.detached(
        "generate_project", project=spec.name, worker=os.getpid()
    ) as span:
        project = _generate_project(spec, profile)
    project.trace = span.to_dict()
    return project


def _generate_project(
    spec: ProjectSpec, profile: TaxonProfile
) -> GeneratedProject:
    rng = random.Random(spec.seed)
    duration = spec.duration_months
    pool = _FilePool(rng)
    minutes = _MinuteAllocator(rng)

    schema = random_schema(
        rng,
        tables_lo=profile.tables[0],
        tables_hi=profile.tables[1],
        attrs_lo=profile.attrs[0],
        attrs_hi=profile.attrs[1],
    )
    selector = TableSelector(rng)
    # ~40% of projects keep dump-style noise in their schema file, so
    # the tolerant-parsing path is exercised across the corpus
    noisy = rng.random() < 0.4

    def render_ddl(current_schema) -> str:
        text = emit_ddl(current_schema, spec.vendor)
        if noisy:
            text = inject_noise(text, rng, spec.vendor)
        return text

    regime = profile.sample_regime(rng)
    ddl_month = _sample_ddl_delay(rng, profile, duration)
    events = _plan_schema_events(rng, profile, duration, ddl_month, regime)

    # --- source activity budget
    mean_updates = rng.randint(*profile.monthly_updates)
    total_updates = mean_updates * duration
    import_share = profile.sample_import_share(rng)
    # couple the source import share to the schema's own initial share
    planned_activity = sum(e.magnitude for e in events)
    initial_attrs = schema.attribute_count
    if initial_attrs + planned_activity > 0:
        schema_share = initial_attrs / (initial_attrs + planned_activity)
        w = profile.source_schema_alignment
        import_share = max(0.02, min(0.97, (
            w * schema_share
            + (1 - w) * import_share
            + rng.uniform(-0.06, 0.06)
        )))
    initial_file_count = max(3, round(total_updates * import_share))
    monthly_updates = _shape_source_activity(
        rng, profile, duration, total_updates - initial_file_count
    )
    lo_couple, hi_couple = profile.spike_source_coupling
    if hi_couple > 0:
        for event in events:
            if event.is_spike:
                monthly_updates[event.month] += round(
                    event.magnitude * rng.uniform(lo_couple, hi_couple)
                )
    # second import: a large early source drop (vendored deps etc.)
    surge_prob, surge_lo, surge_hi = profile.second_import
    if duration >= 6 and rng.random() < surge_prob:
        surge_month = rng.randint(1, max(1, duration // 5))
        monthly_updates[surge_month] += round(
            total_updates * rng.uniform(surge_lo, surge_hi)
        )

    planned: list[_PlannedCommit] = []
    ddl_versions = [render_ddl(schema)]

    # --- initial commit (project skeleton; DDL included when not delayed)
    initial_files = []
    if ddl_month == 0:
        initial_files.append(FileChange("A", spec.ddl_path))
    for _ in range(initial_file_count):
        initial_files.append(FileChange("A", pool.new_file()))
    planned.append(
        _PlannedCommit(
            minute=minutes.reserve(0),
            files=initial_files,
            message="initial import",
            ddl_text=ddl_versions[0] if ddl_month == 0 else None,
        )
    )

    # --- delayed DDL introduction
    if ddl_month > 0:
        files = [FileChange("A", spec.ddl_path)]
        files.extend(pool.pick_changes(rng.randint(0, 2)))
        planned.append(
            _PlannedCommit(
                minute=ddl_month * _MINUTES_PER_MONTH,
                files=files,
                message="add database schema",
                ddl_text=ddl_versions[0],
            )
        )
        minutes.reserve(ddl_month * _MINUTES_PER_MONTH)

    # --- schema-changing commits; minutes pre-assigned in event order so
    # commit timestamps agree with DDL content order within a month
    events.sort(key=lambda e: (e.month, -e.magnitude))
    minute_queue = _monotone_minutes(minutes, [e.month for e in events])
    for event, commit_minute in zip(events, minute_queue):
        if event.magnitude > 0:
            smos = sample_change_smos(
                schema,
                event.magnitude,
                rng,
                table_ops=profile.table_ops,
                selector=selector,
            )
            if not smos:
                continue
            for smo in smos:
                smo.apply(schema)
            ddl_text = render_ddl(schema)
        else:  # null commit: cosmetic edit only
            ddl_text = (
                f"-- cosmetic revision {rng.randint(100, 999)}\n"
                + ddl_versions[-1]
            )
        ddl_versions.append(ddl_text)
        files = [FileChange("M", spec.ddl_path)]
        files.extend(pool.pick_changes(rng.randint(0, 3)))
        planned.append(
            _PlannedCommit(
                minute=commit_minute,
                files=files,
                message=rng.choice(_SCHEMA_MESSAGES),
                ddl_text=ddl_text,
            )
        )

    # --- source commits from the monthly activity plan
    for month, updates in enumerate(monthly_updates):
        remaining = updates
        while remaining > 0:
            batch = min(remaining, rng.randint(1, 8))
            remaining -= batch
            planned.append(
                _PlannedCommit(
                    minute=minutes.in_month(month),
                    files=pool.pick_changes(batch),
                    message=rng.choice(_SOURCE_MESSAGES),
                )
            )

    # --- pin the project's last month so the duration is exact
    last_month = duration - 1
    if not any(
        c.minute // _MINUTES_PER_MONTH == last_month for c in planned
    ):
        planned.append(
            _PlannedCommit(
                minute=minutes.in_month(last_month),
                files=pool.pick_changes(rng.randint(1, 3)),
                message="final touches",
            )
        )

    return _materialise(spec, planned)


def _sample_ddl_delay(
    rng: random.Random, profile: TaxonProfile, duration: int
) -> int:
    """Month at which the DDL file first appears (0 = with the project)."""
    if duration < 4 or rng.random() >= profile.ddl_delay_prob:
        return 0
    a, b = profile.ddl_delay_beta
    month = round(rng.betavariate(a, b) * (duration - 1))
    return max(1, min(duration - 2, month))


def _plan_schema_events(
    rng: random.Random,
    profile: TaxonProfile,
    duration: int,
    ddl_month: int,
    regime: tuple[float, float],
) -> list[_SchemaEvent]:
    events: list[_SchemaEvent] = []
    lo = ddl_month + 1
    hi = duration - 1
    if lo <= hi:
        for _ in range(rng.randint(*profile.n_changes)):
            month = _beta_month(rng, regime, lo, hi)
            events.append(
                _SchemaEvent(month, rng.randint(*profile.change_magnitude))
            )
        for _ in range(rng.randint(*profile.n_spikes)):
            month = _beta_month(rng, regime, lo, hi)
            events.append(
                _SchemaEvent(
                    month,
                    rng.randint(*profile.spike_magnitude),
                    is_spike=True,
                )
            )
    # null (cosmetic) DDL commits keep even one-month projects above the
    # dataset's two-version elicitation threshold
    null_commits = rng.randint(*profile.n_null_commits)
    if duration == 1:
        null_commits = max(1, null_commits)
    for _ in range(null_commits):
        month = ddl_month if lo > hi else _beta_month(
            rng, (1.0, 1.0), lo, hi
        )
        events.append(_SchemaEvent(month, 0))
    return events


def _beta_month(
    rng: random.Random, ab: tuple[float, float], lo: int, hi: int
) -> int:
    """A month in [lo, hi] sampled from Beta(a, b) over that span."""
    a, b = ab
    fraction = rng.betavariate(a, b)
    return min(hi, max(lo, lo + int(fraction * (hi - lo + 1))))


def _shape_source_activity(
    rng: random.Random,
    profile: TaxonProfile,
    duration: int,
    budget: int,
) -> list[int]:
    """Allocate the post-import source budget over months (Beta shape)."""
    if budget <= 0:
        return [0] * duration
    a, b = profile.project_shape_beta
    weights = []
    for month in range(duration):
        t = (month + 0.5) / duration
        weights.append(
            (t ** (a - 1)) * ((1 - t) ** (b - 1))
            * rng.gammavariate(2.0, 0.5)
        )
    weight_sum = sum(weights) or 1.0
    return [round(budget * w / weight_sum) for w in weights]


def _monotone_minutes(
    minutes: _MinuteAllocator, months: list[int]
) -> list[int]:
    """Minutes matching a month-sorted event list, increasing overall."""
    by_month: dict[int, int] = {}
    for month in months:
        by_month[month] = by_month.get(month, 0) + 1
    queue: list[int] = []
    for month in sorted(by_month):
        queue.extend(
            sorted(minutes.in_month(month) for _ in range(by_month[month]))
        )
    return queue


def _materialise(
    spec: ProjectSpec, planned: list[_PlannedCommit]
) -> GeneratedProject:
    """Turn planned commits into git-log text, reparse, attach contents."""
    planned.sort(key=lambda c: c.minute)
    rng = random.Random(spec.seed ^ 0x5F3759DF)

    # a small contributor pool with one dominant maintainer (the
    # paper's case study: 90% of updates by the same developer)
    pool = names.developer_pool(rng, rng.randint(1, 4))
    main_share = rng.uniform(0.55, 0.95)
    if len(pool) == 1:
        weights = [1.0]
    else:
        rest = (1.0 - main_share) / (len(pool) - 1)
        weights = [main_share] + [rest] * (len(pool) - 1)

    def minute_to_date(minute: int) -> datetime:
        # minutes index a flat 28-day month grid; map each grid month
        # onto its real calendar month so Month.of(date) agrees with the
        # generator's month arithmetic for arbitrarily long projects
        month = spec.start.shift(minute // _MINUTES_PER_MONTH)
        offset = minute % _MINUTES_PER_MONTH
        return datetime(
            month.year,
            month.month,
            1 + offset // (24 * 60),
            (offset % (24 * 60)) // 60,
            offset % 60,
            tzinfo=timezone.utc,
        )

    commits: list[Commit] = []
    ddl_sequence: list[tuple[str, _PlannedCommit]] = []
    for index, plan in enumerate(planned):
        author, email = rng.choices(pool, weights=weights, k=1)[0]
        sha = synthetic_sha(spec.name, index, plan.minute)
        date = minute_to_date(plan.minute)
        commits.append(
            Commit(
                sha=sha,
                author=author,
                email=email,
                date=date,
                message=plan.message,
                changes=plan.files,
            )
        )
        if plan.ddl_text is not None:
            ddl_sequence.append((sha, plan))

    git_log_text = format_git_log(commits, newest_first=True)
    repo = parse_repository(spec.name, git_log_text)

    sha_to_date = {c.sha: c.date for c in repo.commits}
    for sha, plan in ddl_sequence:
        repo.record_version(
            spec.ddl_path,
            FileVersion(
                sha=sha, date=sha_to_date[sha], content=plan.ddl_text or ""
            ),
        )
    return GeneratedProject(
        spec=spec,
        repository=repo,
        git_log_text=git_log_text,
        ddl_versions=[plan.ddl_text or "" for _, plan in ddl_sequence],
    )


DEFAULT_SEED = 195_2023


def iter_corpus_specs(
    seed: int = DEFAULT_SEED,
    profiles: tuple[TaxonProfile, ...] = CANONICAL_PROFILES,
    blank_projects: int = 2,
    dialect: str | None = None,
):
    """Stream the corpus plan one ``(spec, profile)`` pair at a time.

    The streaming twin of :func:`corpus_specs`: it draws from the
    corpus RNG in exactly the same order (durations, start months,
    names, per-project seeds, vendors), so the *i*-th yielded pair is
    identical to ``corpus_specs(...)[i]`` — but nothing is held: a
    100k-project plan never exists as a list.  The sharded pipeline's
    streaming map phase plans and releases one shard at a time off this
    generator.

    ``dialect`` selects the workload whose ``vendor_mix`` each
    project's vendor is drawn from; every workload's mix has the
    canonical length, so the RNG stream — and with it every other
    sampled property — is identical across workloads.  ``None`` keeps
    the paper's MySQL/Postgres mix bit-for-bit.
    """
    from ..workload import get_workload

    vendor_mix = get_workload(dialect).vendor_mix
    rng = random.Random(seed)
    by_taxon: dict[Taxon, TaxonProfile] = {}
    for profile in profiles:
        by_taxon.setdefault(profile.taxon, profile)
    index = 0
    blanks_left = blank_projects
    for profile in profiles:
        for _ in range(profile.count):
            duration = profile.sample_duration(rng)
            if blanks_left > 0 and profile.taxon in (
                Taxon.FROZEN, Taxon.ALMOST_FROZEN
            ):
                duration = 1
                blanks_left -= 1
            start = Month(2008 + rng.randint(0, 9), rng.randint(1, 12))
            spec = ProjectSpec(
                name=names.project_name(rng, index),
                taxon=profile.taxon,
                seed=rng.randrange(2 ** 62),
                vendor=rng.choice(vendor_mix),
                duration_months=duration,
                start=start,
            )
            yield (spec, by_taxon[spec.taxon])
            index += 1


def corpus_specs(
    seed: int = DEFAULT_SEED,
    profiles: tuple[TaxonProfile, ...] = CANONICAL_PROFILES,
    blank_projects: int = 2,
    dialect: str | None = None,
) -> list[tuple[ProjectSpec, TaxonProfile]]:
    """Sample the corpus plan: one ``(spec, profile)`` pair per project.

    This is the *cheap* half of corpus generation — it consumes the
    corpus RNG exactly as :func:`generate_corpus` always has (names,
    per-project seeds, durations, vendors), but realises nothing.  The
    sharded pipeline plans its per-project artifacts from this list
    without generating a single commit; ``generate_corpus`` realises the
    same list, so the two agree project for project.  (The list form of
    :func:`iter_corpus_specs`, which streams the same pairs for plans
    too large to materialise.)
    """
    return list(iter_corpus_specs(
        seed=seed,
        profiles=profiles,
        blank_projects=blank_projects,
        dialect=dialect,
    ))


def generate_corpus(
    *,
    seed: int = DEFAULT_SEED,
    profiles: tuple[TaxonProfile, ...] = CANONICAL_PROFILES,
    blank_projects: int = 2,
    jobs: int = 1,
    dialect: str | None = None,
) -> list[GeneratedProject]:
    """Generate the canonical corpus (195 projects by default).

    ``blank_projects`` of the frozen-taxa projects are forced to a
    single-month life, reproducing the "(blank)" rows of Fig. 6.

    ``jobs > 1`` generates projects over a process pool.  The specs are
    always sampled serially from the corpus RNG and each project is
    realised from its own ``spec.seed``, so the output is bit-identical
    to the serial path regardless of worker scheduling.
    """
    pairs = corpus_specs(
        seed=seed,
        profiles=profiles,
        blank_projects=blank_projects,
        dialect=dialect,
    )
    tracer = get_tracer()
    with tracer.span("generate", projects=len(pairs), jobs=max(1, jobs)):
        # heartbeat for the generation fan-out: updated per collected
        # project (lazily off executor.map, which preserves spec order),
        # so long generations report progress without touching the RNGs
        tracker = ProgressTracker("generate", len(pairs))
        projects = []
        if jobs > 1:
            from ..perf.parallel import generate_one, pool_chunksize
            from ..perf.pool import warm_pool

            # the pool stays warm after generation: the mine fan-out
            # that typically follows reuses the same worker processes
            for project in warm_pool(jobs).map(
                generate_one,
                pairs,
                chunksize=pool_chunksize(len(pairs), jobs),
            ):
                projects.append(project)
                tracker.update(project.name)
        else:
            for spec, profile in pairs:
                projects.append(generate_project(spec, profile))
                tracker.update(spec.name)
        tracker.finish()
        for project in projects:
            if project.trace is not None:
                # worker span closes were invisible to any in-process
                # sink, so attaching them re-emits their events
                tracer.attach(project.trace, emit=jobs > 1)
                project.trace = None
    get_metrics().inc("projects.generated", len(projects))
    return projects
