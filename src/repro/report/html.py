"""Self-contained HTML study report.

One file, no external assets: the SVG figures are inlined, the tables
are plain HTML, the styling is a small embedded stylesheet.  Suitable
for attaching to an issue or publishing next to a dataset release.
"""

from __future__ import annotations

from html import escape
from pathlib import Path
from typing import Sequence

from ..analysis import StudyResult, taxon_summaries
from .svgfigures import (
    svg_fig4,
    svg_fig5,
    svg_fig8,
    svg_joint_progress,
)

_STYLE = """
body { font-family: system-ui, sans-serif; max-width: 960px;
       margin: 2rem auto; padding: 0 1rem; color: #1a1a1a; }
h1, h2 { border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #ccc; padding: .35rem .6rem;
         text-align: right; }
th:first-child, td:first-child { text-align: left; }
thead { background: #f2f2f2; }
figure { margin: 1.5rem 0; }
figcaption { color: #555; font-size: .9rem; }
"""


def _html_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    head = "".join(f"<th>{escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(
            f"<td>{escape(str(cell))}</td>" for cell in row
        ) + "</tr>"
        for row in rows
    )
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{body}</tbody></table>"
    )


def _figure(svg: str, caption: str) -> str:
    return f"<figure>{svg}<figcaption>{escape(caption)}</figcaption></figure>"


def build_html_report(
    study: StudyResult, *, title: str = "Co-evolution study report"
) -> str:
    """The full study as one self-contained HTML document."""
    n = len(study)
    sections: list[str] = []

    headline = study.headline()
    sections.append("<h2>Headline numbers</h2>")
    sections.append(
        _html_table(
            ["measure", "value"],
            [[key, value] for key, value in headline.items()],
        )
    )

    sections.append("<h2>Synchronicity (Fig. 4)</h2>")
    sections.append(
        _figure(svg_fig4(study), "Projects per 10%-synchronicity range")
    )

    sections.append("<h2>Duration vs synchronicity (Fig. 5)</h2>")
    sections.append(
        _figure(svg_fig5(study), "One point per project, coloured by taxon")
    )

    fig6 = study.fig6()
    sections.append("<h2>Life % of schema advance (Fig. 6)</h2>")
    sections.append(
        _html_table(
            ["range", "source", "source cum", "time", "time cum"],
            [
                [
                    row.label,
                    row.source_count,
                    f"{row.source_cum_pct:.0%}",
                    row.time_count,
                    f"{row.time_cum_pct:.0%}",
                ]
                for row in fig6.rows
            ]
            + [["(blank)", fig6.blank_source, "", fig6.blank_time, ""]],
        )
    )

    sections.append("<h2>Attainment (Fig. 8)</h2>")
    sections.append(
        _figure(
            svg_fig8(study, alpha=0.75),
            "Projects attaining 75% of schema activity per life range",
        )
    )
    sections.append(
        _figure(
            svg_fig8(study, alpha=1.00),
            "Projects attaining 100% of schema activity per life range",
        )
    )

    sections.append("<h2>Per-taxon medians</h2>")
    sections.append(
        _html_table(
            ["taxon", "n", "sync10", "attain75", "always-both"],
            [
                [
                    row.taxon.display_name,
                    row.count,
                    f"{row.median_sync10:.2f}",
                    f"{row.median_attainment75:.2f}",
                    f"{row.always_both_rate:.0%}",
                ]
                for row in taxon_summaries(study.projects)
            ],
        )
    )

    if study.projects:
        example = study.projects[0]
        sections.append("<h2>Example joint progress (Fig. 1)</h2>")
        sections.append(
            _figure(
                svg_joint_progress(example.joint, title=example.name),
                f"{example.name} — {example.duration_months} months",
            )
        )

    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{escape(title)}</h1>"
        f"<p>{n} projects analysed.</p>"
        + "".join(sections)
        + "</body></html>"
    )


def write_html_report(
    study: StudyResult, path: str | Path, *, title: str = "Co-evolution study report"
) -> Path:
    """Write :func:`build_html_report` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_html_report(study, title=title))
    return path
