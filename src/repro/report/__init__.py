"""Text rendering of figures, tables and charts."""

from .figures import (
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_joint_progress,
    render_statistics,
)
from .html import build_html_report, write_html_report
from .markdown import build_study_report, md_table, render_vendor_mix
from .svg import PALETTE, svg_bar_chart, svg_line_chart, svg_scatter
from .svgfigures import (
    svg_fig4,
    svg_fig5,
    svg_fig8,
    svg_joint_progress,
    write_svg_figures,
)
from .render import (
    bar_chart,
    grouped_bar_chart,
    line_chart,
    render_table,
    scatter_chart,
)

__all__ = [
    "bar_chart",
    "build_html_report",
    "build_study_report",
    "write_html_report",
    "md_table",
    "PALETTE",
    "svg_bar_chart",
    "svg_fig4",
    "svg_fig5",
    "svg_fig8",
    "svg_joint_progress",
    "svg_line_chart",
    "svg_scatter",
    "write_svg_figures",
    "grouped_bar_chart",
    "line_chart",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_joint_progress",
    "render_statistics",
    "render_table",
    "render_vendor_mix",
    "scatter_chart",
]
