"""Text renderings of each figure/table of the paper."""

from __future__ import annotations

from ..analysis import (
    AdvanceTable,
    AlwaysAdvance,
    AttainmentBreakdown,
    ScatterPoint,
    StatisticsReport,
    SyncHistogram,
)
from ..coevolution import JointProgress
from ..taxa import TAXA_ORDER
from .render import (
    bar_chart,
    grouped_bar_chart,
    line_chart,
    render_table,
    scatter_chart,
)

#: Scatter glyph per taxon (Fig. 5).
_TAXON_GLYPHS = {
    taxon: glyph for taxon, glyph in zip(TAXA_ORDER, "FAsMlX")
}


def render_joint_progress(joint: JointProgress, *, title: str = "") -> str:
    """Fig. 1/3: the joint cumulative fractional progress diagram."""
    return line_chart(
        {
            "schema": joint.schema,
            "project": joint.project,
            "time": joint.time,
        },
        title=title or "Joint progress (cumulative fractions)",
    )


def render_fig4(histogram: SyncHistogram) -> str:
    """Fig. 4: breakdown per θ-synchronicity value range."""
    labels = [bucket.pct_label() for bucket in histogram.buckets]
    return bar_chart(
        labels,
        list(histogram.counts),
        title=(
            f"Fig 4 — projects per {histogram.theta:.0%}-synchronicity "
            f"range (n={histogram.total})"
        ),
    )


def render_fig5(points: list[ScatterPoint]) -> str:
    """Fig. 5: duration vs synchronicity, one glyph per taxon."""
    chart = scatter_chart(
        [
            (p.duration_months, p.synchronicity, _TAXON_GLYPHS[p.taxon])
            for p in points
        ],
        x_label="duration (months)",
        y_label="10%-synchronicity",
        title="Fig 5 — duration vs co-evolution synchronicity per taxon",
    )
    legend = "  ".join(
        f"{glyph}={taxon.display_name}"
        for taxon, glyph in _TAXON_GLYPHS.items()
    )
    return chart + "\n" + legend


def render_fig6(table: AdvanceTable) -> str:
    """Fig. 6: life percentage of schema advance over source and time."""
    rows = []
    for row in table.rows:
        rows.append(
            [
                row.label,
                row.source_count,
                f"{row.source_pct:.0%}",
                f"{row.source_cum_pct:.0%}",
                row.time_count,
                f"{row.time_pct:.0%}",
                f"{row.time_cum_pct:.0%}",
            ]
        )
    rows.append(
        [
            "(blank)",
            table.blank_source,
            f"{table.blank_source / table.total:.0%}",
            "",
            table.blank_time,
            f"{table.blank_time / table.total:.0%}",
            "",
        ]
    )
    rows.append(
        ["Grand Total", table.total, "100%", "", table.total, "100%", ""]
    )
    return render_table(
        [
            "Range",
            "Source",
            "%",
            "%Cum",
            "Time",
            "%",
            "%Cum",
        ],
        rows,
        title="Fig 6 — life percentage of schema advance over source / time",
    )


def render_fig7(always: AlwaysAdvance) -> str:
    """Fig. 7: schema always in advance, per taxon."""
    rows = [
        [
            row.taxon.display_name,
            row.total,
            row.over_time,
            row.over_source,
            row.over_both,
        ]
        for row in always.rows
    ]
    rows.append(
        [
            "Total",
            always.total,
            always.total_over_time,
            always.total_over_source,
            always.total_over_both,
        ]
    )
    return render_table(
        ["Taxon", "n", "Time", "Source", "Both"],
        rows,
        title="Fig 7 — schema always in advance of time / source / both",
    )


def render_fig8(breakdown: AttainmentBreakdown) -> str:
    """Fig. 8: attainment of α of evolution per life range."""
    groups = [f"alpha={alpha:.0%}" for alpha in breakdown.alphas]
    values = {
        label: [
            breakdown.counts[alpha][i] for alpha in breakdown.alphas
        ]
        for i, label in enumerate(breakdown.range_labels)
    }
    return grouped_bar_chart(
        groups,
        list(breakdown.range_labels),
        values,
        title="Fig 8 — projects attaining alpha of schema activity per "
        "life range",
    )


def render_statistics(report: StatisticsReport) -> str:
    """§7: all test outcomes, one block per paragraph of the section."""
    lines = ["Sec 7 — statistical analysis", "", "Normality (Shapiro-Wilk):"]
    for name, result in report.normality.items():
        lines.append(f"  {name}: W={result.statistic:.3f} p={result.p_value:.2e}")

    for effect in (report.sync_effect, report.attainment_effect):
        lines.append("")
        lines.append(
            f"Kruskal-Wallis taxon -> {effect.measure}: "
            f"H={effect.test.statistic:.2f} p={effect.test.p_value:.4f}"
        )
        for taxon, value in effect.medians.items():
            lines.append(f"  median[{taxon.display_name}] = {value:.2f}")

    lines.append("")
    lines.append("Lag tests (taxon x always-in-advance):")
    for name, lag in report.lag_tests.items():
        lines.append(
            f"  {name}: chi2 p={lag.chi2.p_value:.4f}  "
            f"fisher p={lag.fisher.p_value:.4f} "
            f"({lag.fisher.details.get('method')})"
        )

    lines.append("")
    lines.append(
        f"Kendall tau (5% vs 10% synchronicity): "
        f"{report.tau_sync.statistic:.2f}"
    )
    lines.append(
        f"Kendall tau (advance over time vs source): "
        f"{report.tau_advance.statistic:.2f}"
    )
    return "\n".join(lines)
