"""Plain-text rendering primitives: tables, bar charts, line charts.

The benchmark harness regenerates the paper's figures as text so results
can be diffed, logged and pasted — no plotting dependency required.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """A column-aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    counts: Sequence[float],
    *,
    width: int = 50,
    title: str = "",
) -> str:
    """A horizontal bar chart with counts at the bar ends."""
    if len(labels) != len(counts):
        raise ValueError("labels and counts must align")
    peak = max(counts) if counts else 0
    label_width = max((len(label) for label in labels), default=0)
    lines = [title] if title else []
    for label, count in zip(labels, counts):
        bar_len = round(width * count / peak) if peak else 0
        lines.append(
            f"{label.rjust(label_width)} | {'#' * bar_len} {count:g}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    group_labels: Sequence[str],
    series_labels: Sequence[str],
    values: Mapping[str, Sequence[float]],
    *,
    width: int = 40,
    title: str = "",
) -> str:
    """Bars per (group, series) pair, grouped visually by group."""
    peak = max(
        (v for series in values.values() for v in series), default=0
    )
    label_width = max((len(s) for s in series_labels), default=0)
    lines = [title] if title else []
    for gi, group in enumerate(group_labels):
        lines.append(f"{group}:")
        for series in series_labels:
            value = values[series][gi]
            bar_len = round(width * value / peak) if peak else 0
            lines.append(
                f"  {series.rjust(label_width)} | {'#' * bar_len} {value:g}"
            )
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 16,
    y_range: tuple[float, float] = (0.0, 1.0),
    title: str = "",
) -> str:
    """An ASCII line chart; one glyph per series, overlaps marked ``*``.

    All series must share the same length (the x axis is their index,
    resampled onto ``width`` columns).
    """
    lengths = {len(s) for s in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    (n,) = lengths
    if n == 0:
        raise ValueError("empty series")
    lo, hi = y_range
    if hi <= lo:
        raise ValueError("bad y range")

    glyphs = "SPT+xo"
    grid = [[" "] * width for _ in range(height)]

    for si, (name, values) in enumerate(series.items()):
        glyph = glyphs[si % len(glyphs)]
        for col in range(width):
            index = min(n - 1, round(col * (n - 1) / max(1, width - 1)))
            value = values[index]
            fraction = (value - lo) / (hi - lo)
            row = height - 1 - min(
                height - 1, max(0, round(fraction * (height - 1)))
            )
            grid[row][col] = "*" if grid[row][col] not in (" ", glyph) else glyph

    lines = [title] if title else []
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(legend + "   (*=overlap)")
    lines.append(f"{hi:4.0%} +" + "-" * width)
    for row in grid:
        lines.append("     |" + "".join(row))
    lines.append(f"{lo:4.0%} +" + "-" * width)
    lines.append("      month 0" + f"month {n - 1}".rjust(width - 7))
    return "\n".join(lines)


def scatter_chart(
    points: Sequence[tuple[float, float, str]],
    *,
    width: int = 70,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """A character scatter plot; the third element is the point glyph."""
    if not points:
        raise ValueError("no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = min(width - 1, round((x - x_lo) / x_span * (width - 1)))
        row = height - 1 - min(
            height - 1, round((y - y_lo) / y_span * (height - 1))
        )
        current = grid[row][col]
        grid[row][col] = glyph[0] if current == " " else "*"

    lines = [title] if title else []
    lines.append(f"{y_label} ({y_lo:g} .. {y_hi:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{x_label} ({x_lo:g} .. {x_hi:g})   *=overlap")
    return "\n".join(lines)
