"""Dependency-free SVG rendering of the study's chart types.

The text renderers in :mod:`repro.report.render` are for terminals and
logs; these produce standalone ``.svg`` documents (no matplotlib — the
toolkit stays pure) for the three chart forms the paper's figures use:
line charts (joint progress), scatter plots (duration vs synchronicity)
and grouped bar charts (histograms, attainment).
"""

from __future__ import annotations

from typing import Mapping, Sequence
from xml.sax.saxutils import escape

#: A colour-blind-safe categorical palette (Okabe–Ito).
PALETTE = (
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # green
    "#CC79A7",  # magenta
    "#56B4E9",  # sky
    "#D55E00",  # vermilion
    "#F0E442",  # yellow
    "#000000",  # black
)

_MARGIN = 48
_FONT = "font-family='sans-serif' font-size='11'"


def _document(width: int, height: int, body: list[str], title: str) -> str:
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>",
        f"<rect width='{width}' height='{height}' fill='white'/>",
    ]
    if title:
        parts.append(
            f"<text x='{width / 2:.0f}' y='18' text-anchor='middle' "
            f"font-family='sans-serif' font-size='14'>"
            f"{escape(title)}</text>"
        )
    parts.extend(body)
    parts.append("</svg>")
    return "\n".join(parts)


def _axes(
    width: int,
    height: int,
    x_label: str,
    y_label: str,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
    *,
    ticks: int = 5,
) -> list[str]:
    x0, y0 = _MARGIN, height - _MARGIN
    x1, y1 = width - _MARGIN // 2, _MARGIN // 2 + 12
    parts = [
        f"<line x1='{x0}' y1='{y0}' x2='{x1}' y2='{y0}' stroke='black'/>",
        f"<line x1='{x0}' y1='{y0}' x2='{x0}' y2='{y1}' stroke='black'/>",
        f"<text x='{(x0 + x1) / 2:.0f}' y='{height - 8}' "
        f"text-anchor='middle' {_FONT}>{escape(x_label)}</text>",
        f"<text x='14' y='{(y0 + y1) / 2:.0f}' text-anchor='middle' "
        f"{_FONT} transform='rotate(-90 14 {(y0 + y1) / 2:.0f})'>"
        f"{escape(y_label)}</text>",
    ]
    for i in range(ticks + 1):
        fx = i / ticks
        x_value = x_range[0] + fx * (x_range[1] - x_range[0])
        px = x0 + fx * (x1 - x0)
        parts.append(
            f"<line x1='{px:.1f}' y1='{y0}' x2='{px:.1f}' y2='{y0 + 4}' "
            "stroke='black'/>"
        )
        parts.append(
            f"<text x='{px:.1f}' y='{y0 + 16}' text-anchor='middle' "
            f"{_FONT}>{x_value:g}</text>"
        )
        y_value = y_range[0] + fx * (y_range[1] - y_range[0])
        py = y0 - fx * (y0 - y1)
        parts.append(
            f"<line x1='{x0 - 4}' y1='{py:.1f}' x2='{x0}' y2='{py:.1f}' "
            "stroke='black'/>"
        )
        parts.append(
            f"<text x='{x0 - 7}' y='{py + 4:.1f}' text-anchor='end' "
            f"{_FONT}>{y_value:g}</text>"
        )
    return parts


def _legend(names: Sequence[str], width: int) -> list[str]:
    parts = []
    x = _MARGIN
    y = 34
    for i, name in enumerate(names):
        colour = PALETTE[i % len(PALETTE)]
        parts.append(
            f"<rect x='{x}' y='{y - 9}' width='10' height='10' "
            f"fill='{colour}'/>"
        )
        parts.append(
            f"<text x='{x + 14}' y='{y}' {_FONT}>{escape(name)}</text>"
        )
        x += 14 + 7 * len(name) + 18
    return parts


def svg_line_chart(
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    x_label: str = "month",
    y_label: str = "cumulative fraction",
    width: int = 640,
    height: int = 400,
) -> str:
    """A multi-series line chart (joint progress diagrams)."""
    lengths = {len(s) for s in series.values()}
    if len(lengths) != 1 or 0 in lengths:
        raise ValueError("series must be non-empty and equally long")
    (n,) = lengths
    x0, y0 = _MARGIN, height - _MARGIN
    x1, y1 = width - _MARGIN // 2, _MARGIN // 2 + 12
    body = _axes(
        width, height, x_label, y_label, (0, max(1, n - 1)), (0.0, 1.0)
    )
    body.extend(_legend(list(series), width))
    for i, (name, values) in enumerate(series.items()):
        colour = PALETTE[i % len(PALETTE)]
        points = []
        for j, value in enumerate(values):
            px = x0 + (j / max(1, n - 1)) * (x1 - x0)
            py = y0 - max(0.0, min(1.0, value)) * (y0 - y1)
            points.append(f"{px:.1f},{py:.1f}")
        body.append(
            f"<polyline points='{' '.join(points)}' fill='none' "
            f"stroke='{colour}' stroke-width='2'/>"
        )
    return _document(width, height, body, title)


def svg_scatter(
    points: Sequence[tuple[float, float, str]],
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 640,
    height: int = 400,
) -> str:
    """A scatter plot; the third tuple element is the series name."""
    if not points:
        raise ValueError("no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    names = list(dict.fromkeys(p[2] for p in points))
    colour_of = {
        name: PALETTE[i % len(PALETTE)] for i, name in enumerate(names)
    }
    x0, y0 = _MARGIN, height - _MARGIN
    x1, y1 = width - _MARGIN // 2, _MARGIN // 2 + 12
    body = _axes(width, height, x_label, y_label, (x_lo, x_hi), (y_lo, y_hi))
    body.extend(_legend(names, width))
    for x, y, name in points:
        px = x0 + (x - x_lo) / x_span * (x1 - x0)
        py = y0 - (y - y_lo) / y_span * (y0 - y1)
        body.append(
            f"<circle cx='{px:.1f}' cy='{py:.1f}' r='3.5' "
            f"fill='{colour_of[name]}' fill-opacity='0.75'/>"
        )
    return _document(width, height, body, title)


def svg_bar_chart(
    labels: Sequence[str],
    counts: Sequence[float],
    *,
    title: str = "",
    y_label: str = "projects",
    width: int = 640,
    height: int = 400,
) -> str:
    """A vertical bar chart (Fig. 4-style histograms)."""
    if len(labels) != len(counts):
        raise ValueError("labels and counts must align")
    if not labels:
        raise ValueError("no bars")
    peak = max(counts) or 1.0
    x0, y0 = _MARGIN, height - _MARGIN
    x1, y1 = width - _MARGIN // 2, _MARGIN // 2 + 12
    slot = (x1 - x0) / len(labels)
    bar_width = slot * 0.7
    body = _axes(
        width, height, "", y_label, (0, len(labels)), (0, peak), ticks=4
    )
    for i, (label, count) in enumerate(zip(labels, counts)):
        bar_height = (count / peak) * (y0 - y1)
        px = x0 + i * slot + (slot - bar_width) / 2
        py = y0 - bar_height
        body.append(
            f"<rect x='{px:.1f}' y='{py:.1f}' width='{bar_width:.1f}' "
            f"height='{bar_height:.1f}' fill='{PALETTE[0]}'/>"
        )
        body.append(
            f"<text x='{px + bar_width / 2:.1f}' y='{y0 + 16}' "
            f"text-anchor='middle' {_FONT}>{escape(label)}</text>"
        )
        body.append(
            f"<text x='{px + bar_width / 2:.1f}' y='{py - 4:.1f}' "
            f"text-anchor='middle' {_FONT}>{count:g}</text>"
        )
    return _document(width, height, body, title)
