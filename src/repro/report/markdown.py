"""Markdown rendering: a complete study report as one document.

`build_study_report` turns a :class:`~repro.analysis.StudyResult` into a
self-contained Markdown report — headline numbers, every figure/table as
a pipe table, per-taxon drill-downs and the statistics battery — ready
to commit next to a dataset or paste into an issue.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis import (
    StudyResult,
    duration_band_summaries,
    taxon_summaries,
)


def md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A GitHub-flavoured pipe table."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    rule = "|" + "|".join(" --- " for _ in headers) + "|"
    body = [
        "| " + " | ".join(str(cell) for cell in row) + " |" for row in rows
    ]
    return "\n".join([head, rule, *body])


def _pct(value: float) -> str:
    return f"{value:.0%}"


def render_vendor_mix(vendors: Sequence[str]) -> str:
    """One line summarising a corpus's per-project vendor draw.

    Used by ``repro generate`` to announce which dialects a workload's
    ``vendor_mix`` actually produced — deliberately *not* part of
    :func:`build_study_report`, whose canonical bytes are pinned by the
    report-stage fingerprint.
    """
    counts: dict[str, int] = {}
    for vendor in vendors:
        counts[vendor] = counts.get(vendor, 0) + 1
    total = len(vendors)
    parts = [
        f"{name} {count}/{total}"
        for name, count in sorted(counts.items())
    ]
    return "vendor mix: " + (", ".join(parts) if parts else "empty corpus")


def build_study_report(study: StudyResult, *, title: str | None = None) -> str:
    """The full study as one Markdown document."""
    sections: list[str] = []
    n = len(study) or 1  # denominator only: degenerate corpora → 0% rows
    sections.append(
        f"# {title or 'Joint source and schema co-evolution study'}\n\n"
        f"{len(study)} projects analysed"
        + (f", {len(study.skipped)} skipped" if study.skipped else "")
        + "."
    )

    # headline
    headline = study.headline()
    sections.append(
        "## Headline numbers\n\n"
        + md_table(
            ["measure", "value"],
            [[key, value] for key, value in headline.items()],
        )
    )

    # fig 4
    fig4 = study.fig4()
    sections.append(
        "## Synchronicity histogram (Fig. 4)\n\n"
        + md_table(
            ["range", "projects", "share"],
            [
                [bucket.pct_label(), count, _pct(count / n)]
                for bucket, count in zip(fig4.buckets, fig4.counts)
            ],
        )
    )

    # fig 6
    fig6 = study.fig6()
    sections.append(
        "## Life % of schema advance (Fig. 6)\n\n"
        + md_table(
            ["range", "source", "%", "%cum", "time", "%", "%cum"],
            [
                [
                    row.label,
                    row.source_count,
                    _pct(row.source_pct),
                    _pct(row.source_cum_pct),
                    row.time_count,
                    _pct(row.time_pct),
                    _pct(row.time_cum_pct),
                ]
                for row in fig6.rows
            ]
            + [
                [
                    "(blank)",
                    fig6.blank_source,
                    _pct(fig6.blank_source / n),
                    "",
                    fig6.blank_time,
                    _pct(fig6.blank_time / n),
                    "",
                ]
            ],
        )
    )

    # fig 7
    fig7 = study.fig7()
    sections.append(
        "## Always in advance (Fig. 7)\n\n"
        + md_table(
            ["taxon", "n", "time", "source", "both"],
            [
                [
                    row.taxon.display_name,
                    row.total,
                    row.over_time,
                    row.over_source,
                    row.over_both,
                ]
                for row in fig7.rows
            ]
            + [
                [
                    "**Total**",
                    fig7.total,
                    fig7.total_over_time,
                    fig7.total_over_source,
                    fig7.total_over_both,
                ]
            ],
        )
    )

    # fig 8
    fig8 = study.fig8()
    sections.append(
        "## Attainment (Fig. 8)\n\n"
        + md_table(
            ["alpha", *fig8.range_labels],
            [
                [_pct(alpha), *fig8.counts[alpha]]
                for alpha in fig8.alphas
            ],
        )
    )

    # drill-downs
    sections.append(
        "## Per-taxon medians\n\n"
        + md_table(
            [
                "taxon",
                "n",
                "sync10",
                "attain75",
                "duration (mo)",
                "schema activity",
                "always-both",
            ],
            [
                [
                    row.taxon.display_name,
                    row.count,
                    f"{row.median_sync10:.2f}",
                    f"{row.median_attainment75:.2f}",
                    f"{row.median_duration:.0f}",
                    f"{row.median_schema_activity:.0f}",
                    _pct(row.always_both_rate),
                ]
                for row in taxon_summaries(study.projects)
            ],
        )
    )
    sections.append(
        "## Duration bands (Fig. 5 reading)\n\n"
        + md_table(
            ["band", "n", "median sync", "min", "max", "sync>=0.8"],
            [
                [
                    row.label,
                    row.count,
                    f"{row.median_sync10:.2f}",
                    f"{row.min_sync10:.2f}",
                    f"{row.max_sync10:.2f}",
                    _pct(row.high_sync_rate),
                ]
                for row in duration_band_summaries(study.projects)
            ],
        )
    )

    # statistics
    try:
        report = study.statistics()
    except ValueError as exc:
        # degenerate corpora can be too small for the §7 battery; the
        # report says so instead of failing the whole render
        sections.append(f"## Statistics (Sec. 7)\n\nnot computed: {exc}")
        return "\n\n".join(sections) + "\n"
    stat_rows = [
        [
            f"Shapiro-Wilk {name}",
            f"{result.statistic:.3f}",
            f"{result.p_value:.2e}",
        ]
        for name, result in report.normality.items()
    ]
    stat_rows.append(
        [
            "Kruskal-Wallis taxon->sync10",
            f"{report.sync_effect.test.statistic:.2f}",
            f"{report.sync_effect.test.p_value:.4f}",
        ]
    )
    stat_rows.append(
        [
            "Kruskal-Wallis taxon->attain75",
            f"{report.attainment_effect.test.statistic:.2f}",
            f"{report.attainment_effect.test.p_value:.4f}",
        ]
    )
    for name, lag in report.lag_tests.items():
        stat_rows.append(
            [
                f"chi2 taxon x always-{name}",
                f"{lag.chi2.statistic:.2f}",
                f"{lag.chi2.p_value:.4f}",
            ]
        )
        stat_rows.append(
            [
                f"Fisher taxon x always-{name}",
                "",
                f"{lag.fisher.p_value:.4f}",
            ]
        )
    stat_rows.append(
        ["Kendall tau sync5~sync10", f"{report.tau_sync.statistic:.2f}", ""]
    )
    stat_rows.append(
        [
            "Kendall tau advT~advS",
            f"{report.tau_advance.statistic:.2f}",
            "",
        ]
    )
    sections.append(
        "## Statistics (Sec. 7)\n\n"
        + md_table(["test", "statistic", "p"], stat_rows)
    )

    return "\n\n".join(sections) + "\n"
