"""SVG versions of the paper's figures."""

from __future__ import annotations

from pathlib import Path

from ..analysis import StudyResult
from ..coevolution import JointProgress
from .svg import svg_bar_chart, svg_line_chart, svg_scatter


def svg_joint_progress(joint: JointProgress, *, title: str = "") -> str:
    """Fig. 1/3 as an SVG line chart."""
    return svg_line_chart(
        {
            "schema": list(joint.schema),
            "project": list(joint.project),
            "time": list(joint.time),
        },
        title=title or "Joint cumulative progress",
    )


def svg_fig4(study: StudyResult) -> str:
    """Fig. 4 as an SVG bar chart."""
    histogram = study.fig4()
    return svg_bar_chart(
        [bucket.pct_label() for bucket in histogram.buckets],
        list(histogram.counts),
        title="Projects per 10%-synchronicity range",
    )


def svg_fig5(study: StudyResult) -> str:
    """Fig. 5 as an SVG scatter plot (one colour per taxon)."""
    return svg_scatter(
        [
            (p.duration_months, p.synchronicity, p.taxon.display_name)
            for p in study.fig5()
        ],
        title="Duration vs co-evolution synchronicity",
        x_label="duration (months)",
        y_label="10%-synchronicity",
    )


def svg_fig8(study: StudyResult, *, alpha: float = 0.75) -> str:
    """Fig. 8 (one α level) as an SVG bar chart."""
    breakdown = study.fig8()
    return svg_bar_chart(
        list(breakdown.range_labels),
        [float(c) for c in breakdown.counts[alpha]],
        title=f"Attainment of {alpha:.0%} of schema activity per life range",
    )


def write_svg_figures(study: StudyResult, directory: str | Path) -> list[Path]:
    """Write every SVG figure under ``directory``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    outputs = {
        "fig4_sync_histogram.svg": svg_fig4(study),
        "fig5_duration_scatter.svg": svg_fig5(study),
        "fig8_attainment_75.svg": svg_fig8(study, alpha=0.75),
        "fig8_attainment_100.svg": svg_fig8(study, alpha=1.00),
    }
    if study.projects:
        outputs["fig1_joint_progress.svg"] = svg_joint_progress(
            study.projects[0].joint, title=study.projects[0].name
        )
    paths = []
    for name, text in outputs.items():
        path = directory / name
        path.write_text(text)
        paths.append(path)
    return paths
