"""Schema version comparison and the attribute-level change taxonomy."""

from .changes import ActivityBreakdown, AtomicChange, ChangeKind, SchemaDelta
from .engine import (
    diff_ddl,
    diff_schemas,
    diff_schemas_reference,
    initial_delta,
)

__all__ = [
    "ActivityBreakdown",
    "AtomicChange",
    "ChangeKind",
    "SchemaDelta",
    "diff_ddl",
    "diff_schemas",
    "diff_schemas_reference",
    "initial_delta",
]
