"""The change taxonomy of the study.

The Schema_Evo_2019 dataset (and hence this reproduction) measures schema
evolution in *attributes*: every transition between subsequent versions of
the DDL file is decomposed into attribute-level atomic changes, and the sum
of those counts is the *Total Activity* of the transition — the central
measure traced throughout the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ChangeKind(Enum):
    """Attribute-level atomic change kinds, as measured by the dataset."""

    #: attribute born together with a newly created table
    BORN_WITH_TABLE = "born_with_table"
    #: attribute injected into an already existing table
    INJECTED = "injected"
    #: attribute deleted together with a removed table
    DELETED_WITH_TABLE = "deleted_with_table"
    #: attribute ejected from a surviving table
    EJECTED = "ejected"
    #: attribute whose data type changed
    TYPE_CHANGED = "type_changed"
    #: attribute whose participation in the primary key changed
    PK_CHANGED = "pk_changed"


@dataclass(frozen=True)
class AtomicChange:
    """One attribute-level change between two schema versions."""

    kind: ChangeKind
    table: str
    attribute: str
    detail: str = ""

    def __str__(self) -> str:
        text = f"{self.kind.value}: {self.table}.{self.attribute}"
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class ActivityBreakdown:
    """Aggregate counts of atomic changes for one transition (or history).

    ``total`` is the paper's *Total Activity*: the sum of all six
    attribute-level counts.  Table births/evictions are carried for
    reporting but do not enter the total (they are already reflected in
    the born-with / deleted-with attribute counts).
    """

    born_with_table: int = 0
    injected: int = 0
    deleted_with_table: int = 0
    ejected: int = 0
    type_changed: int = 0
    pk_changed: int = 0
    tables_born: int = 0
    tables_evicted: int = 0

    _KIND_FIELDS = {
        ChangeKind.BORN_WITH_TABLE: "born_with_table",
        ChangeKind.INJECTED: "injected",
        ChangeKind.DELETED_WITH_TABLE: "deleted_with_table",
        ChangeKind.EJECTED: "ejected",
        ChangeKind.TYPE_CHANGED: "type_changed",
        ChangeKind.PK_CHANGED: "pk_changed",
    }

    @property
    def total(self) -> int:
        """Total Activity: sum of the attribute-level counts."""
        return (
            self.born_with_table
            + self.injected
            + self.deleted_with_table
            + self.ejected
            + self.type_changed
            + self.pk_changed
        )

    def count(self, change: AtomicChange) -> None:
        name = self._KIND_FIELDS[change.kind]
        setattr(self, name, getattr(self, name) + 1)

    def merge(self, other: "ActivityBreakdown") -> "ActivityBreakdown":
        """Return the element-wise sum of two breakdowns."""
        return ActivityBreakdown(
            born_with_table=self.born_with_table + other.born_with_table,
            injected=self.injected + other.injected,
            deleted_with_table=(
                self.deleted_with_table + other.deleted_with_table
            ),
            ejected=self.ejected + other.ejected,
            type_changed=self.type_changed + other.type_changed,
            pk_changed=self.pk_changed + other.pk_changed,
            tables_born=self.tables_born + other.tables_born,
            tables_evicted=self.tables_evicted + other.tables_evicted,
        )

    @classmethod
    def from_changes(cls, changes: list[AtomicChange]) -> "ActivityBreakdown":
        breakdown = cls()
        tables_born: set[str] = set()
        tables_evicted: set[str] = set()
        for change in changes:
            breakdown.count(change)
            if change.kind is ChangeKind.BORN_WITH_TABLE:
                tables_born.add(change.table.lower())
            elif change.kind is ChangeKind.DELETED_WITH_TABLE:
                tables_evicted.add(change.table.lower())
        breakdown.tables_born = len(tables_born)
        breakdown.tables_evicted = len(tables_evicted)
        return breakdown

    def as_dict(self) -> dict[str, int]:
        return {
            "born_with_table": self.born_with_table,
            "injected": self.injected,
            "deleted_with_table": self.deleted_with_table,
            "ejected": self.ejected,
            "type_changed": self.type_changed,
            "pk_changed": self.pk_changed,
            "tables_born": self.tables_born,
            "tables_evicted": self.tables_evicted,
            "total": self.total,
        }


@dataclass
class SchemaDelta:
    """All atomic changes between two schema versions, with aggregates."""

    changes: list[AtomicChange] = field(default_factory=list)

    @property
    def breakdown(self) -> ActivityBreakdown:
        return ActivityBreakdown.from_changes(self.changes)

    @property
    def total_activity(self) -> int:
        return self.breakdown.total

    @property
    def is_identical(self) -> bool:
        """True when the two versions are logically identical."""
        return not self.changes

    def by_kind(self, kind: ChangeKind) -> list[AtomicChange]:
        return [change for change in self.changes if change.kind is kind]

    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self):
        return iter(self.changes)
