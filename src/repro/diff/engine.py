"""Hecate-style comparison of two schema versions.

Tables are matched across versions by (case-insensitive) name; within a
matched table, attributes are matched by name.  Renames are therefore
observed as a deletion plus an insertion — the behaviour of the tooling
behind the original dataset, which has no rename oracle.  The initiating
version of a history is measured with :func:`initial_delta` (all
attributes born with their tables), matching the paper's convention that a
schema can attain e.g. "48% of change at start-up".

Diffing is on the mining hot path (one call per schema transition, tens
of thousands per corpus), so :func:`diff_schemas` reuses the key →
position indexes that :class:`~repro.schema.Schema` and
:class:`~repro.schema.Table` already maintain instead of rebuilding
lookup dicts for every version pair.  The straightforward dict-building
variant is kept as :func:`diff_schemas_reference`, the oracle for the
equivalence tests.
"""

from __future__ import annotations

from time import perf_counter

from ..obs.metrics import get_metrics
from ..schema import Schema, Table
from .changes import AtomicChange, ChangeKind, SchemaDelta


def diff_schemas(old: Schema, new: Schema) -> SchemaDelta:
    """Compute all attribute-level atomic changes from ``old`` to ``new``.

    Every call feeds the ``diff.seconds`` latency histogram of the
    observability layer (a couple of clock reads per call — negligible
    next to the diff itself, and it never changes the result).
    """
    start = perf_counter()
    delta = _diff_schemas(old, new)
    get_metrics().observe("diff.seconds", perf_counter() - start)
    return delta


def _diff_schemas(old: Schema, new: Schema) -> SchemaDelta:
    delta = SchemaDelta()
    if old is new:
        # incremental parsing interns identical whole versions as the
        # very same ParseResult, so no-op transitions short-circuit
        return delta
    changes = delta.changes
    old_index = old.key_index
    new_index = new.key_index
    old_tables = old.tables
    new_tables = new.tables

    for table in new_tables:
        if table.key not in old_index:
            changes.extend(_table_born(table))
    for table in old_tables:
        if table.key not in new_index:
            changes.extend(_table_evicted(table))
    for key, position in old_index.items():
        new_position = new_index.get(key)
        if new_position is not None:
            old_table = old_tables[position]
            new_table = new_tables[new_position]
            if old_table is new_table:
                # structural sharing: an unchanged statement reuses the
                # previous version's Table object, so identity proves
                # there is no attribute-level change to look for
                continue
            _diff_surviving(old_table, new_table, changes)
    return delta


def initial_delta(schema: Schema) -> SchemaDelta:
    """The delta of the initiating commit: everything is born."""
    delta = SchemaDelta()
    for table in schema.tables:
        delta.changes.extend(_table_born(table))
    return delta


def _table_born(table: Table) -> list[AtomicChange]:
    return [
        AtomicChange(ChangeKind.BORN_WITH_TABLE, table.name, attr.name)
        for attr in table.attributes
    ]


def _table_evicted(table: Table) -> list[AtomicChange]:
    return [
        AtomicChange(ChangeKind.DELETED_WITH_TABLE, table.name, attr.name)
        for attr in table.attributes
    ]


def _diff_surviving(
    old: Table, new: Table, changes: list[AtomicChange]
) -> None:
    """Append changes within a table present in both versions."""
    old_index = old.key_index
    new_index = new.key_index
    old_attrs = old.attributes
    new_attrs = new.attributes

    for attr in new_attrs:
        if attr.key not in old_index:
            changes.append(
                AtomicChange(ChangeKind.INJECTED, new.name, attr.name)
            )
    for attr in old_attrs:
        if attr.key not in new_index:
            changes.append(
                AtomicChange(ChangeKind.EJECTED, old.name, attr.name)
            )

    for key, position in old_index.items():
        new_position = new_index.get(key)
        if new_position is None:
            continue
        old_attr = old_attrs[position]
        new_attr = new_attrs[new_position]
        if old_attr.data_type != new_attr.data_type:
            changes.append(
                AtomicChange(
                    ChangeKind.TYPE_CHANGED,
                    new.name,
                    new_attr.name,
                    detail=f"{old_attr.data_type} -> {new_attr.data_type}",
                )
            )

    old_pk = old.pk_keys()
    new_pk = new.pk_keys()
    for key in sorted(old_pk ^ new_pk):
        # PK participation changed for an attribute that survives; an
        # attribute that vanished with its table or was ejected is already
        # counted there and would double-count here.
        if key in old_index and key in new_index:
            direction = "joined PK" if key in new_pk else "left PK"
            changes.append(
                AtomicChange(
                    ChangeKind.PK_CHANGED,
                    new.name,
                    new_attrs[new_index[key]].name,
                    detail=direction,
                )
            )


def diff_schemas_reference(old: Schema, new: Schema) -> SchemaDelta:
    """The original dict-building diff, kept as the equivalence oracle."""
    delta = SchemaDelta()
    old_keys = {table.key: table for table in old.tables}
    new_keys = {table.key: table for table in new.tables}

    for table in new.tables:
        if table.key not in old_keys:
            delta.changes.extend(_table_born(table))
    for table in old.tables:
        if table.key not in new_keys:
            delta.changes.extend(_table_evicted(table))
    for key, old_table in old_keys.items():
        new_table = new_keys.get(key)
        if new_table is not None:
            delta.changes.extend(_diff_surviving_reference(old_table, new_table))
    return delta


def _diff_surviving_reference(old: Table, new: Table) -> list[AtomicChange]:
    """Reference changes within a table present in both versions."""
    changes: list[AtomicChange] = []
    old_attrs = {attr.key: attr for attr in old.attributes}
    new_attrs = {attr.key: attr for attr in new.attributes}

    for attr in new.attributes:
        if attr.key not in old_attrs:
            changes.append(
                AtomicChange(ChangeKind.INJECTED, new.name, attr.name)
            )
    for attr in old.attributes:
        if attr.key not in new_attrs:
            changes.append(
                AtomicChange(ChangeKind.EJECTED, old.name, attr.name)
            )

    for key, old_attr in old_attrs.items():
        new_attr = new_attrs.get(key)
        if new_attr is None:
            continue
        if old_attr.data_type != new_attr.data_type:
            changes.append(
                AtomicChange(
                    ChangeKind.TYPE_CHANGED,
                    new.name,
                    new_attr.name,
                    detail=f"{old_attr.data_type} -> {new_attr.data_type}",
                )
            )

    old_pk = old.pk_keys()
    new_pk = new.pk_keys()
    for key in sorted(old_pk ^ new_pk):
        if key in old_attrs and key in new_attrs:
            direction = "joined PK" if key in new_pk else "left PK"
            changes.append(
                AtomicChange(
                    ChangeKind.PK_CHANGED,
                    new.name,
                    new_attrs[key].name,
                    detail=direction,
                )
            )
    return changes


def diff_ddl(old_text: str, new_text: str, *, dialect: str | None = None) -> SchemaDelta:
    """Parse two DDL scripts and diff the resulting schemas."""
    from ..sqlparser import parse_schema

    old = parse_schema(old_text, dialect=dialect).schema
    new = parse_schema(new_text, dialect=dialect).schema
    return diff_schemas(old, new)
