"""Provenance records: why an artifact is warm, stale, or cold.

A pipeline fingerprint is a single opaque sha256 — perfect for
addressing, useless for diagnosis: when a shard recomputes, the key
alone cannot say *which* component moved.  Provenance fixes that by
storing the fingerprint's **structured breakdown** alongside every
artifact (``meta["provenance"]``): the stage's code version, its
declared parameters (for map shards, the project identity — spec and
profile digests), its upstream fingerprints, and the stage source
digest.

``explain`` then answers the operator question directly: given the
*current* plan's breakdown and a store, an artifact is

* **warm** — the current key is stored;
* **stale** — the key is absent but a prior generation of the same
  stage (same project, for shards) is stored, and diffing the two
  breakdowns names the causes ("code_version bumped 2→3", "upstream
  generate digest changed", "params.profile digest changed");
* **cold** — no prior generation exists to diff against.

Workloads surface here through the shard identity: a non-default
``--dialect`` adds a ``dialect`` key to the ``generate`` params, so
switching workloads over a warm store explains as ``params.dialect
added (sqlite)`` (plus the spec digest moved by the vendor draw) —
the (dialect, source) pair is attributable, never an opaque re-key.

This module is deliberately pipeline-free: it compares plain dicts and
scans a store object handed to it, so it can audit any store —
including one written by another process — without importing the
planner.  The
builders live on :class:`~repro.pipeline.graph.Pipeline`, which knows
the live plan.
"""

from __future__ import annotations

#: Version tag carried by every stored provenance block; bump on shape
#: changes so old blocks are diffed best-effort, never trusted blindly.
PROVENANCE_FORMAT = "repro-provenance-v1"

#: Components diffed between a stored breakdown and the current plan.
#: ``source_digest`` is advisory — it does not participate in the
#: fingerprint, so a mismatch alone never re-keys (that is the
#: ``version_drift`` guard's territory).
FINGERPRINT_COMPONENTS = ("code_version", "params", "upstream")


def _is_digest(value) -> bool:
    text = str(value)
    return len(text) == 64 and all(c in "0123456789abcdef" for c in text)


def _short(value) -> str:
    """Digests shortened for humans; everything else verbatim."""
    text = str(value)
    return text[:12] if _is_digest(value) else text


def components_of(provenance: dict) -> dict[str, str]:
    """Flatten one breakdown into comparable ``component → value`` pairs.

    Params and upstream entries flatten per key (``params.profile``,
    ``upstream.generate``) so the diff names the precise member that
    moved, not just the block.
    """
    flat: dict[str, str] = {
        "code_version": str(provenance.get("code_version", "")),
    }
    for name, value in (provenance.get("params") or {}).items():
        flat[f"params.{name}"] = str(value)
    for name, value in (provenance.get("upstream") or {}).items():
        flat[f"upstream.{name}"] = str(value)
    return flat


def match_score(current: dict, stored: dict) -> int:
    """How many components two breakdowns share (candidate ranking)."""
    mine = components_of(current)
    theirs = components_of(stored)
    return sum(
        1 for name, value in mine.items() if theirs.get(name) == value
    )


def diff_components(current: dict, stored: dict) -> list[dict]:
    """Every component that differs, as explain-ready cause records.

    Each record carries the component path, both values, and a
    human-readable ``label`` (the line ``pipeline explain`` prints).
    """
    mine = components_of(current)
    theirs = components_of(stored)
    causes: list[dict] = []
    for name in sorted(set(mine) | set(theirs)):
        stored_value = theirs.get(name)
        current_value = mine.get(name)
        if stored_value == current_value:
            continue
        if name == "code_version":
            label = f"code_version bumped {stored_value}→{current_value}"
        elif name.startswith("upstream."):
            dep = name.split(".", 1)[1]
            label = (
                f"upstream {dep} digest changed "
                f"({_short(stored_value)}→{_short(current_value)})"
            )
        elif stored_value is None:
            label = f"{name} added ({_short(current_value)})"
        elif current_value is None:
            label = f"{name} removed (was {_short(stored_value)})"
        else:
            what = (
                "digest changed"
                if _is_digest(stored_value) or _is_digest(current_value)
                else "changed"
            )
            label = (
                f"{name} {what} "
                f"({_short(stored_value)}→{_short(current_value)})"
            )
        causes.append(
            {
                "component": name,
                "stored": stored_value,
                "current": current_value,
                "label": label,
            }
        )
    return causes


def explain_target(
    store,
    stage: str,
    key: str,
    current: dict,
    *,
    project: str | None = None,
) -> dict:
    """Classify one target (stage, or one shard of a map stage).

    ``current`` is the live plan's breakdown for the target; ``key`` its
    current fingerprint.  The stale path scans the store for the
    best-matching prior generation of the same stage (and project, for
    shards) and diffs breakdowns to produce the cause list; ties break
    on sorted key order, so the answer is deterministic.
    """
    record = {
        "stage": stage,
        "project": project,
        "key": key,
        "state": "warm",
        "causes": [],
        "matched_key": None,
        "source_drift": False,
    }
    if store.contains(key):
        return record
    best: dict | None = None
    best_key: str | None = None
    best_score = -1
    for candidate in sorted(store.keys()):
        if candidate == key:
            continue
        meta = store.meta_of(candidate) or {}
        if meta.get("stage") != stage:
            continue
        if project is not None and meta.get("project") != project:
            continue
        stored = meta.get("provenance")
        if not stored:
            continue
        score = match_score(current, stored)
        if score > best_score:
            best, best_key, best_score = stored, candidate, score
    if best is None:
        record["state"] = "cold"
        return record
    causes = diff_components(current, best)
    if not causes:
        # same breakdown, different key: the fingerprint folds
        # something provenance does not capture (format bump)
        causes = [
            {
                "component": "fingerprint",
                "stored": _short(best_key),
                "current": _short(key),
                "label": "fingerprint format or recipe changed",
            }
        ]
    record.update(
        state="stale",
        causes=causes,
        matched_key=best_key,
        source_drift=(
            bool(best.get("source_digest"))
            and best.get("source_digest") != current.get("source_digest")
        ),
    )
    return record


def render_explanation(record: dict) -> str:
    """One target's explain line(s), as ``pipeline explain`` prints them."""
    name = record["stage"]
    if record.get("project"):
        name = f"{name}/{record['project']}"
    state = record["state"]
    if state == "warm":
        return f"{name}: warm ({_short(record['key'])})"
    if state == "cold":
        return f"{name}: cold — no prior artifact to diff against"
    lines = [f"{name}: stale — vs {_short(record['matched_key'])}:"]
    for cause in record["causes"]:
        lines.append(f"  - {cause['label']}")
    if record.get("source_drift"):
        lines.append(
            "  (stage source also drifted — see `pipeline status`)"
        )
    return "\n".join(lines)
