"""Observability layer: tracing, metrics, events, exports, monitoring.

The study pipeline is a long fan-out batch job; this package makes one
run auditable end to end without changing any of its results:

* :mod:`repro.obs.trace` — a hierarchical span tracer whose per-project
  span trees cross the worker-process boundary and reattach under the
  driver's dispatching span (zero-overhead no-ops when disabled);
* :mod:`repro.obs.metrics` — named counters/gauges/histograms with
  snapshot/merge semantics so worker deltas fold into one study total;
* :mod:`repro.obs.events` — the structured JSONL event log (span closes,
  warnings, progress heartbeats, run markers) plus its line-by-line
  schema validator;
* :mod:`repro.obs.manifest` — the run manifest written next to study
  outputs (seed, jobs, cache config, versions, host environment,
  timings, metric snapshot, warnings, exit status);
* :mod:`repro.obs.export` — finished telemetry rendered in standard
  formats: Chrome trace-event JSON (Perfetto / ``chrome://tracing``),
  Prometheus text exposition, flamegraph folded stacks;
* :mod:`repro.obs.progress` — the live heartbeat channel behind
  ``--progress`` and the ``progress`` events in ``--log-json``;
* :mod:`repro.obs.regress` — the ``bench-check`` perf-regression
  watchdog comparing run manifests / ``BENCH_study.json`` payloads.

:class:`ObsSession` is the CLI-facing glue: it wires ``--trace``,
``--log-json``, ``--manifest`` and ``--progress`` to the right globals
for one run and writes every artifact at :meth:`ObsSession.finalize`.
"""

from __future__ import annotations

import sys
from pathlib import Path

from .bus import (
    BUS_KINDS,
    BUS_SCHEMA_VERSION,
    Subscription,
    TelemetryBus,
    get_bus,
    reset_bus,
)
from .events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    EventRecorder,
    aggregate_warnings,
    get_recorder,
    provenance_event,
    reset_recorder,
    resource_event,
    run_event,
    span_event,
    validate_event,
    validate_event_line,
    validate_event_log,
    warn,
)
from .export import (
    chrome_trace,
    folded_stacks,
    prometheus_text,
    validate_prometheus_text,
)
from .manifest import build_manifest, runtime_environment, write_manifest
from .metrics import (
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    get_metrics,
    reset_metrics,
)
from .progress import (
    ProgressChannel,
    ProgressTracker,
    get_progress,
    progress_event,
    render_progress_line,
    reset_progress,
)
from .provenance import (
    PROVENANCE_FORMAT,
    diff_components,
    explain_target,
    render_explanation,
)
from .registry import (
    REGISTRY_FORMAT,
    RunRegistry,
    build_run_record,
    history_baseline,
    record_from_payload,
    registry_for_store,
)
from .regress import (
    Check,
    PerfSample,
    RegressionReport,
    compare_samples,
    load_sample,
    sample_from_dict,
)
from .resources import (
    ResourceMonitor,
    ResourceSample,
    get_monitor,
    peak_rss_bytes,
    process_sample,
)
from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    configure_tracing,
    get_tracer,
    render_trace,
    write_trace,
)

__all__ = [
    "BUS_KINDS",
    "BUS_SCHEMA_VERSION",
    "EVENT_SCHEMA_VERSION",
    "PROVENANCE_FORMAT",
    "REGISTRY_FORMAT",
    "Check",
    "Subscription",
    "TelemetryBus",
    "EventLog",
    "EventRecorder",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_SPAN",
    "ObsSession",
    "PerfSample",
    "ProgressChannel",
    "ProgressTracker",
    "RegressionReport",
    "ResourceMonitor",
    "ResourceSample",
    "RunRegistry",
    "Span",
    "Tracer",
    "aggregate_warnings",
    "build_manifest",
    "build_run_record",
    "chrome_trace",
    "compare_samples",
    "configure_tracing",
    "diff_components",
    "explain_target",
    "folded_stacks",
    "get_bus",
    "get_metrics",
    "get_monitor",
    "get_progress",
    "get_recorder",
    "get_tracer",
    "history_baseline",
    "load_sample",
    "peak_rss_bytes",
    "process_sample",
    "progress_event",
    "prometheus_text",
    "provenance_event",
    "record_from_payload",
    "registry_for_store",
    "render_explanation",
    "render_progress_line",
    "render_trace",
    "reset_bus",
    "reset_metrics",
    "reset_progress",
    "reset_recorder",
    "resource_event",
    "run_event",
    "runtime_environment",
    "sample_from_dict",
    "span_event",
    "validate_event",
    "validate_event_line",
    "validate_event_log",
    "validate_prometheus_text",
    "warn",
    "write_manifest",
    "write_trace",
]


class ObsSession:
    """Wires the observability outputs of one pipeline run.

    Construct it before the run (tracing starts, the event log opens),
    record what the run produced (``session.study = ...``), then call
    :meth:`finalize` to write the trace file and manifest, emit the
    closing run marker and restore the process-global state.
    """

    def __init__(
        self,
        *,
        command: str = "",
        trace_path: str | Path | None = None,
        log_path: str | Path | None = None,
        manifest_path: str | Path | None = None,
        progress: bool = False,
    ):
        self.command = command
        self.trace_path = Path(trace_path) if trace_path else None
        self.log_path = Path(log_path) if log_path else None
        self.manifest_path = Path(manifest_path) if manifest_path else None
        # run facts, filled in by the command as it executes
        self.seed: int | None = None
        self.jobs: int | None = None
        self.study = None
        self.corpus_size: int | None = None
        self.finalized = False
        #: The built manifest document (set by finalize when
        #: ``--manifest`` was given) — the registry append reuses it
        #: for the record's manifest digest.
        self.manifest_document: dict | None = None
        #: The attached observability server (``--serve``), if any —
        #: finalize records its summary in the manifest ``server``
        #: block.
        self.server = None

        reset_metrics()
        reset_recorder()
        channel = reset_progress()
        self._tracing_enabled = bool(self.trace_path or self.log_path)
        tracer = (
            configure_tracing(True) if self._tracing_enabled else get_tracer()
        )
        # NOTE: the telemetry bus is deliberately *not* reset here — a
        # server started before the session (``--serve``) may already
        # hold subscriptions.  The session only adds (and later
        # removes) its own event-log sink.
        self.event_log: EventLog | None = None
        self._log_sink = None
        if self.log_path:
            self.event_log = EventLog(self.log_path)
            # span closes, warnings, heartbeats, resource samples and
            # the run marker all travel the bus; the event log is one
            # of its sinks, filtered to the JSONL event kinds so
            # bus-only kinds (artifact probes, metrics snapshots)
            # never change the log's bytes
            tracer.publish = True
            self._log_sink = get_bus().add_sink(
                self._emit_envelope,
                kinds=("span", "warning", "progress", "resource", "run"),
            )
        if progress:
            channel.stream = sys.stderr

    def _emit_envelope(self, envelope: dict) -> None:
        self.event_log.emit(envelope["data"])

    def finalize(self, status: str = "ok") -> None:
        """Write all requested artifacts and unhook the globals."""
        if self.finalized:
            return
        self.finalized = True
        tracer = get_tracer()
        if self.trace_path:
            write_trace(tracer, self.trace_path)
        if self.manifest_path:
            manifest = build_manifest(
                command=self.command,
                status=status,
                seed=self.seed,
                jobs=self.jobs,
                study=self.study,
                corpus_size=self.corpus_size,
                warnings=get_recorder().warnings,
                outputs={
                    "trace": self.trace_path,
                    "events": self.log_path,
                },
                server=(
                    self.server.summary()
                    if self.server is not None
                    else None
                ),
            )
            write_manifest(manifest, self.manifest_path)
            self.manifest_document = manifest
        channel = get_progress()
        channel.close_line()
        channel.sink = None
        channel.stream = None
        # the closing records ride the bus so live SSE consumers see
        # the run end even when no --log-json file is open; the event
        # log (when open) receives them through its bus sink
        bus = get_bus()
        if self.study is not None:
            resources = getattr(
                self.study.timings, "resources", None
            ) or {}
            for scope in sorted(resources):
                bus.publish("resource", resource_event(scope, resources[scope]))
        bus.publish("run", run_event(self.command, status))
        if self.event_log is not None:
            get_recorder().sink = None
            tracer.on_close = None
            tracer.publish = False
            self.event_log.close()
        if self._log_sink is not None:
            bus.remove_sink(self._log_sink)
            self._log_sink = None
        if self._tracing_enabled:
            configure_tracing(False)
