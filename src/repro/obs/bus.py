"""The in-process telemetry bus: one ordered stream for every signal.

Before this module, each telemetry stream had its own ad-hoc wiring:
span closes went to ``Tracer.on_close``, warnings to
``EventRecorder.sink``, progress heartbeats to ``ProgressChannel.sink``
— each pointed straight at the ``--log-json`` file handle, and nothing
else could observe a run without adding yet another sink attribute.
The bus unifies them: every emission path *publishes* a typed record,
and every consumer — the JSONL event log, the stderr progress line, an
SSE client of :mod:`repro.obs.server`, the ``repro obs top`` dashboard
— *subscribes*.

Design points, in the order they matter:

**Ordered, schema-versioned envelopes.**  :meth:`TelemetryBus.publish`
wraps each record in ``{"id": N, "kind": ..., "ts": ..., "schema":
BUS_SCHEMA_VERSION, "data": record}``.  Ids are monotonically
increasing per process, assigned under the bus lock, so every consumer
— live or replayed — observes the same total order.  The ``id`` doubles
as the SSE event id, which is what makes ``Last-Event-ID`` reconnect
replay exact.

**Synchronous sinks for in-process consumers.**  A *sink* is a plain
callable invoked inline during ``publish`` (under the lock, so sink
delivery order is the publish order).  The ``--log-json`` event log is
a sink filtered to the JSONL kinds — which is how the refactor keeps
the event log byte-identical to the pre-bus wiring: same records, same
order, same writer.  Sinks are never dropped; they are trusted to be
fast.

**Bounded queues for streaming consumers.**  A :class:`Subscription`
owns a bounded :class:`queue.Queue` that ``publish`` feeds without ever
blocking.  The slow-consumer policy is explicit: when a subscriber's
queue is full, the *oldest* queued envelope is evicted to make room for
the new one (a live dashboard wants the freshest state; the gap is
detectable from the id sequence) and the subscription's ``dropped``
counter — and the bus-wide total surfaced at ``/metrics`` as
``repro_bus_dropped_total`` — is incremented.  Memory under a stalled
subscriber is bounded by ``capacity`` envelopes, full stop.

**A bounded replay ring.**  The bus retains the last
:data:`DEFAULT_RING_CAPACITY` envelopes (override with
:data:`BUS_CAPACITY_ENV`).  ``subscribe(last_id=N)`` seeds the queue
with every retained envelope with id > N before going live, so a
reconnecting SSE client resumes exactly where it left off — up to the
ring bound, which is the documented replay horizon.

**Worker hygiene.**  Forked pool workers inherit the driver's bus —
including any event-log sink holding a duplicated file descriptor.
``worker_init`` calls :func:`reset_bus` so workers publish into a
consumer-less bus; their telemetry travels back inside results and the
driver republishes it, exactly as spans and warnings always have.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import deque

#: Schema generation of the bus envelope format.
BUS_SCHEMA_VERSION = 1

#: Environment variable overriding the replay ring capacity.
BUS_CAPACITY_ENV = "REPRO_BUS_CAPACITY"

#: Envelopes retained for ``Last-Event-ID`` replay (the replay horizon).
DEFAULT_RING_CAPACITY = 1024

#: Per-subscription queue bound (envelopes a stalled consumer may hold).
DEFAULT_QUEUE_CAPACITY = 256

#: Envelope kinds published by the core emission paths.  Consumers may
#: see other kinds (forward compatibility mirrors the event log's).
BUS_KINDS = (
    "span",        # one closed trace span (events.span_event shape)
    "warning",     # one EventRecorder warning record
    "progress",    # one heartbeat (progress.progress_event shape)
    "resource",    # one telemetry-scope footprint (run end)
    "run",         # the closing run marker
    "artifact",    # one store probe: stage/project hit or recompute
    "metrics",     # a cumulative counter snapshot (live rates)
)


def _ring_capacity() -> int:
    raw = os.environ.get(BUS_CAPACITY_ENV)
    if raw is None:
        return DEFAULT_RING_CAPACITY
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_RING_CAPACITY


class Subscription:
    """One streaming consumer's bounded, droppable event queue."""

    def __init__(self, bus: "TelemetryBus", capacity: int):
        self.bus = bus
        self.capacity = capacity
        #: Envelopes evicted from this queue because the consumer
        #: stalled (the queue was full when a new envelope arrived).
        self.dropped = 0
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._closed = False

    def _offer(self, envelope: dict) -> None:
        """Enqueue without blocking; evict-oldest when full."""
        while True:
            try:
                self._queue.put_nowait(envelope)
                return
            except queue.Full:
                try:
                    self._queue.get_nowait()
                    self.dropped += 1
                    self.bus.dropped += 1
                except queue.Empty:  # raced with the consumer
                    continue

    def get(self, timeout: float | None = None) -> dict | None:
        """The next envelope, or ``None`` on timeout / after close."""
        if self._closed and self._queue.empty():
            return None
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain(self) -> list[dict]:
        """Every envelope currently queued, without blocking."""
        out: list[dict] = []
        while True:
            try:
                out.append(self._queue.get_nowait())
            except queue.Empty:
                return out

    @property
    def pending(self) -> int:
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Detach from the bus; queued envelopes remain drainable."""
        self.bus.unsubscribe(self)


class TelemetryBus:
    """Thread-safe pub/sub with a replay ring; see the module docstring."""

    def __init__(self, capacity: int | None = None):
        self.capacity = capacity if capacity is not None else _ring_capacity()
        self.published = 0
        #: Bus-wide total of envelopes dropped on stalled subscribers.
        self.dropped = 0
        self._lock = threading.RLock()
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self._next_id = 1
        self._sinks: list[tuple] = []  # (callable, kinds-or-None)
        self._subscriptions: list[Subscription] = []

    # -- publishing ----------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any consumer (sink or subscription) is attached."""
        return bool(self._sinks or self._subscriptions)

    def publish(self, kind: str, data: dict) -> dict:
        """Wrap ``data`` in an envelope and deliver it everywhere.

        Always appends to the replay ring (so a consumer attaching a
        moment later still sees the recent past), then dispatches to
        sinks inline and to subscription queues without blocking.
        Returns the envelope.
        """
        with self._lock:
            envelope = {
                "id": self._next_id,
                "kind": kind,
                "ts": round(time.time(), 6),
                "schema": BUS_SCHEMA_VERSION,
                "data": data,
            }
            self._next_id += 1
            self.published += 1
            self._ring.append(envelope)
            for sink, kinds in self._sinks:
                if kinds is None or kind in kinds:
                    sink(envelope)
            for subscription in self._subscriptions:
                subscription._offer(envelope)
        return envelope

    # -- consumers -----------------------------------------------------
    def add_sink(self, sink, kinds=None):
        """Register an inline consumer; ``kinds`` filters envelopes.

        The sink receives whole envelopes (``envelope["data"]`` is the
        original record).  Returns ``sink`` for later ``remove_sink``.
        """
        with self._lock:
            self._sinks.append((sink, frozenset(kinds) if kinds else None))
        return sink

    def remove_sink(self, sink) -> None:
        with self._lock:
            self._sinks = [
                entry for entry in self._sinks if entry[0] is not sink
            ]

    def subscribe(
        self,
        *,
        last_id: int = 0,
        capacity: int = DEFAULT_QUEUE_CAPACITY,
    ) -> Subscription:
        """A queue consumer, seeded with ring replay past ``last_id``.

        Replay and the switch to live delivery happen under one lock
        acquisition, so the subscriber sees every envelope with
        ``id > last_id`` that the ring still retains, in order, with no
        gap at the seam.
        """
        subscription = Subscription(self, capacity)
        with self._lock:
            for envelope in self._ring:
                if envelope["id"] > last_id:
                    subscription._offer(envelope)
            self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)
            subscription._closed = True

    # -- replay / introspection ----------------------------------------
    def replay(self, last_id: int = 0) -> list[dict]:
        """Retained envelopes with ``id > last_id``, oldest first."""
        with self._lock:
            return [e for e in self._ring if e["id"] > last_id]

    @property
    def last_id(self) -> int:
        """The id of the most recently published envelope (0 if none)."""
        with self._lock:
            return self._next_id - 1

    @property
    def oldest_retained_id(self) -> int:
        """The smallest id still replayable (0 when the ring is empty)."""
        with self._lock:
            return self._ring[0]["id"] if self._ring else 0

    def stats(self) -> dict:
        """Counters for ``/metrics`` and the manifest ``server`` block."""
        with self._lock:
            return {
                "published": self.published,
                "dropped": self.dropped,
                "subscribers": len(self._subscriptions),
                "sinks": len(self._sinks),
                "ring_size": len(self._ring),
                "ring_capacity": self.capacity,
            }


# ----------------------------------------------------------------------
# the process-global bus

_active: TelemetryBus | None = None


def get_bus() -> TelemetryBus:
    """The process's telemetry bus (created on first use)."""
    global _active
    if _active is None:
        _active = TelemetryBus()
    return _active


def reset_bus() -> TelemetryBus:
    """Replace the active bus with a fresh, consumer-less one.

    Called by ``worker_init`` so forked pool workers never deliver into
    sinks (event-log file handles!) inherited from the driver, and by
    tests that need isolation.
    """
    global _active
    _active = TelemetryBus()
    return _active


def publish(kind: str, data: dict) -> dict:
    """Publish one record on the active bus."""
    return get_bus().publish(kind, data)
