"""The ``make trace-smoke`` entry point: a small, fully-traced study.

``python -m repro.obs.smoke`` runs a scaled-down corpus through the
study engine twice — untraced serial as the baseline, then traced with
``jobs=2`` so worker span trees, metric deltas and warning windows all
cross a real process boundary — and then checks the observability
contract end to end:

1. the traced run's measures CSV is byte-identical to the untraced one
   (observability must never change results);
2. every line of the JSONL event log passes the schema validator;
3. the span tree covers generate / mine / analyze with one ``project``
   span per corpus project (reattached from the workers);
4. the run manifest round-trips through ``json.loads`` and carries the
   seed, jobs, stage timings and metric snapshot.

Exit status 0 on success, 1 with a diagnosis on the first violation.
"""

from __future__ import annotations

import json
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

#: Shrink factor for the smoke corpus (195 projects / 16 ≈ 14).
SMOKE_SCALE = 16
SMOKE_SEED = 195_2023
SMOKE_JOBS = 2


def _smoke_corpus():
    from ..corpus.generator import generate_corpus
    from ..corpus.profiles import CANONICAL_PROFILES

    profiles = tuple(
        replace(profile, count=max(1, round(profile.count / SMOKE_SCALE)))
        for profile in CANONICAL_PROFILES
    )
    return generate_corpus(seed=SMOKE_SEED, profiles=profiles)


def _measures_bytes(study, path: Path) -> bytes:
    from ..io import export_measures_csv

    export_measures_csv(study, path)
    return path.read_bytes()


def _span_names(spans: list[dict]) -> list[str]:
    names = []
    for span in spans:
        names.append(span["name"])
        names.extend(_span_names(span.get("children", ())))
    return names


def main() -> int:
    from ..analysis.study import run_study
    from . import ObsSession, validate_event_log

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        tmp_path = Path(tmp)
        trace_path = tmp_path / "trace.json"
        log_path = tmp_path / "events.jsonl"
        manifest_path = tmp_path / "manifest.json"

        # baseline: untraced, serial
        corpus = _smoke_corpus()
        baseline = run_study(corpus)
        baseline_csv = _measures_bytes(baseline, tmp_path / "baseline.csv")

        # traced, parallel — the worker-merge path
        session = ObsSession(
            command="trace-smoke",
            trace_path=trace_path,
            log_path=log_path,
            manifest_path=manifest_path,
        )
        session.seed = SMOKE_SEED
        session.jobs = SMOKE_JOBS
        corpus = _smoke_corpus()
        study = run_study(corpus, jobs=SMOKE_JOBS)
        session.study = study
        session.finalize(status="ok")

        traced_csv = _measures_bytes(study, tmp_path / "traced.csv")
        if traced_csv != baseline_csv:
            failures.append(
                "traced measures CSV differs from the untraced baseline"
            )

        events, problems = validate_event_log(log_path)
        if problems:
            failures.append(
                f"{len(problems)} invalid event lines, first: {problems[0]}"
            )
        if events == 0:
            failures.append("event log is empty")
        # exactly one close event per worker span — forked workers must
        # not write through an inherited --log-json sink
        logged_projects = sum(
            1
            for line in log_path.read_text().splitlines()
            if json.loads(line).get("name") == "project"
        )
        if logged_projects != len(corpus):
            failures.append(
                f"expected {len(corpus)} project span events in the log, "
                f"got {logged_projects}"
            )

        trace = json.loads(trace_path.read_text())
        names = _span_names(trace.get("spans", ()))
        for required in ("generate", "study", "mine_analyze",
                         "mine", "analyze"):
            if required not in names:
                failures.append(f"span {required!r} missing from trace")
        project_spans = names.count("project")
        if project_spans != len(corpus):
            failures.append(
                f"expected {len(corpus)} project spans, got {project_spans}"
            )

        manifest_text = manifest_path.read_text()
        manifest = json.loads(manifest_text)  # must round-trip
        if json.loads(json.dumps(manifest)) != manifest:
            failures.append("manifest does not round-trip through json")
        for key in ("seed", "jobs", "timings", "metrics"):
            if manifest.get(key) in (None, {}, []):
                failures.append(f"manifest field {key!r} missing or empty")

    if failures:
        for failure in failures:
            print(f"trace-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"trace-smoke ok: {len(corpus)} projects, {events} events, "
        f"{project_spans} project spans, manifest round-trips"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
