"""The ``make trace-smoke`` entry point: a small, fully-traced study.

``python -m repro.obs.smoke`` runs a scaled-down corpus through the
study engine twice — untraced serial as the baseline, then traced with
``jobs=2`` so worker span trees, metric deltas and warning windows all
cross a real process boundary — and then checks the observability
contract end to end:

1. the traced run's measures CSV is byte-identical to the untraced one
   (observability must never change results);
2. every line of the JSONL event log passes the schema validator;
3. the span tree covers generate / mine / analyze with one ``project``
   span per corpus project (reattached from the workers);
4. the run manifest round-trips through ``json.loads`` and carries the
   seed, jobs, stage timings and metric snapshot;
5. progress heartbeats land in the event log for both fan-out stages,
   with the final ``mine_analyze`` heartbeat at done == total;
6. the exporters accept the run's own telemetry: the Chrome export has
   one complete event per span, the Prometheus page passes the
   exposition-grammar validator, and the folded stacks are non-empty;
7. ``bench-check`` comparing the manifest against itself passes.

Exit status 0 on success, 1 with a diagnosis on the first violation.
"""

from __future__ import annotations

import json
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

#: Shrink factor for the smoke corpus (195 projects / 16 ≈ 14).
SMOKE_SCALE = 16
SMOKE_SEED = 195_2023
SMOKE_JOBS = 2


def _smoke_corpus():
    from ..corpus.generator import generate_corpus
    from ..corpus.profiles import CANONICAL_PROFILES

    profiles = tuple(
        replace(profile, count=max(1, round(profile.count / SMOKE_SCALE)))
        for profile in CANONICAL_PROFILES
    )
    return generate_corpus(seed=SMOKE_SEED, profiles=profiles)


def _measures_bytes(study, path: Path) -> bytes:
    from ..io import export_measures_csv

    export_measures_csv(study, path)
    return path.read_bytes()


def _span_names(spans: list[dict]) -> list[str]:
    names = []
    for span in spans:
        names.append(span["name"])
        names.extend(_span_names(span.get("children", ())))
    return names


def main() -> int:
    from ..analysis.study import run_study
    from . import (
        ObsSession,
        chrome_trace,
        compare_samples,
        folded_stacks,
        get_progress,
        prometheus_text,
        sample_from_dict,
        validate_event_log,
        validate_prometheus_text,
    )

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        tmp_path = Path(tmp)
        trace_path = tmp_path / "trace.json"
        log_path = tmp_path / "events.jsonl"
        manifest_path = tmp_path / "manifest.json"

        # baseline: untraced, serial
        corpus = _smoke_corpus()
        baseline = run_study(corpus)
        baseline_csv = _measures_bytes(baseline, tmp_path / "baseline.csv")

        # traced, parallel — the worker-merge path
        session = ObsSession(
            command="trace-smoke",
            trace_path=trace_path,
            log_path=log_path,
            manifest_path=manifest_path,
        )
        session.seed = SMOKE_SEED
        session.jobs = SMOKE_JOBS
        # emit a heartbeat on every completion so the smoke corpus is
        # big enough to exercise the progress path deterministically
        get_progress().interval = 0.0
        corpus = _smoke_corpus()
        study = run_study(corpus, jobs=SMOKE_JOBS)
        session.study = study
        session.finalize(status="ok")

        traced_csv = _measures_bytes(study, tmp_path / "traced.csv")
        if traced_csv != baseline_csv:
            failures.append(
                "traced measures CSV differs from the untraced baseline"
            )

        events, problems = validate_event_log(log_path)
        if problems:
            failures.append(
                f"{len(problems)} invalid event lines, first: {problems[0]}"
            )
        if events == 0:
            failures.append("event log is empty")
        # exactly one close event per worker span — forked workers must
        # not write through an inherited --log-json sink
        logged_projects = sum(
            1
            for line in log_path.read_text().splitlines()
            if json.loads(line).get("name") == "project"
        )
        if logged_projects != len(corpus):
            failures.append(
                f"expected {len(corpus)} project span events in the log, "
                f"got {logged_projects}"
            )

        trace = json.loads(trace_path.read_text())
        names = _span_names(trace.get("spans", ()))
        for required in ("generate", "study", "mine_analyze",
                         "mine", "analyze"):
            if required not in names:
                failures.append(f"span {required!r} missing from trace")
        project_spans = names.count("project")
        if project_spans != len(corpus):
            failures.append(
                f"expected {len(corpus)} project spans, got {project_spans}"
            )

        # progress heartbeats: both fan-out stages must have reported,
        # and the mine_analyze stage must have completed its count
        heartbeats = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if json.loads(line).get("event") == "progress"
        ]
        stages = {record["stage"] for record in heartbeats}
        if "generate" not in stages:
            failures.append("no generate progress heartbeat in the log")
        finals = [
            record for record in heartbeats
            if record["stage"] == "mine_analyze"
        ]
        if not finals:
            failures.append("no mine_analyze progress heartbeat in the log")
        elif (
            finals[-1]["done"] != len(corpus)
            or finals[-1]["total"] != len(corpus)
        ):
            failures.append(
                f"final mine_analyze heartbeat at "
                f"{finals[-1]['done']}/{finals[-1]['total']}, "
                f"expected {len(corpus)}/{len(corpus)}"
            )

        manifest_text = manifest_path.read_text()
        manifest = json.loads(manifest_text)  # must round-trip
        if json.loads(json.dumps(manifest)) != manifest:
            failures.append("manifest does not round-trip through json")
        for key in ("seed", "jobs", "timings", "metrics", "environment"):
            if manifest.get(key) in (None, {}, []):
                failures.append(f"manifest field {key!r} missing or empty")

        # exporters must accept the run's own telemetry
        chrome = chrome_trace(trace)
        complete = [
            event for event in chrome["traceEvents"]
            if event.get("ph") == "X"
        ]
        if len(complete) != len(names):
            failures.append(
                f"chrome export has {len(complete)} complete events for "
                f"{len(names)} spans"
            )
        prom_problems = validate_prometheus_text(
            prometheus_text(manifest["metrics"])
        )
        if prom_problems:
            failures.append(
                f"prometheus export fails its validator: {prom_problems[0]}"
            )
        if not folded_stacks(trace):
            failures.append("folded-stacks export is empty")

        # the perf watchdog must pass a self-comparison of this run
        sample = sample_from_dict(manifest, source="manifest")
        verdict = compare_samples(sample, sample)
        if verdict.failed:
            failures.append(
                "bench-check self-comparison failed: "
                + verdict.render().splitlines()[-1]
            )

    if failures:
        for failure in failures:
            print(f"trace-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"trace-smoke ok: {len(corpus)} projects, {events} events "
        f"({len(heartbeats)} heartbeats), {project_spans} project spans, "
        "manifest round-trips, exporters + bench-check clean"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
