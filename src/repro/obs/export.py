"""Exporters: trapped telemetry rendered in standard tool formats.

PR 2 gave the pipeline a span tracer, a metrics registry and a JSONL
event log — all in bespoke JSON.  This module converts those payloads
into the three formats the wider tooling ecosystem already speaks:

* :func:`chrome_trace` — a ``--trace`` payload as Chrome trace-event
  JSON (the *JSON Object Format*), loadable in Perfetto and
  ``chrome://tracing``.  Spans become complete (``"ph": "X"``) events;
  thread lanes are assigned per worker process (the ``worker``
  attribute carried by spans built inside pool workers) with the driver
  on lane 0; flow events (``"s"``/``"f"``) tie each worker-side span to
  the driver span that dispatched it.  Every event also carries
  ``span_id``/``parent_id`` in its ``args``, so the exact span tree is
  reconstructible from the export (round-tripped in tests).
* :func:`prometheus_text` — a metrics snapshot in the Prometheus text
  exposition format (``# HELP``/``# TYPE`` comments, counter samples
  with the ``_total`` suffix, histogram ``_bucket``/``_sum``/``_count``
  series with cumulative ``le`` buckets).
  :func:`validate_prometheus_text` checks a rendered page line by line
  against the exposition grammar.
* :func:`folded_stacks` — flamegraph folded-stack lines (one
  ``root;child;leaf <microseconds>`` line per span path), aggregated by
  path over span *self* time, ready for ``flamegraph.pl`` or any
  compatible renderer.

Exporters are strictly read-only over finished payloads: they never
touch the live tracer or registry, so they cannot perturb a run.
"""

from __future__ import annotations

import re

from .trace import TRACE_FORMAT, Span

#: The single synthetic process id used in Chrome trace exports.
TRACE_PID = 1

#: Lane (Chrome ``tid``) of spans recorded by the driver process.
DRIVER_LANE = 0


# ----------------------------------------------------------------------
# Chrome trace-event JSON

def chrome_trace(payload: dict) -> dict:
    """Convert a ``--trace`` payload to Chrome trace-event JSON.

    Returns the *JSON Object Format* document: ``{"traceEvents": [...],
    "displayTimeUnit": "ms"}``.  Spans carrying a ``worker`` attribute
    (and their descendants) render on that worker's thread lane; driver
    spans render on lane 0.  A lane crossing — a worker span attached
    under a driver span — additionally emits a flow-event pair tying
    the two lanes together visually.
    """
    fmt = payload.get("format")
    if fmt is not None and fmt != TRACE_FORMAT:
        raise ValueError(f"not a {TRACE_FORMAT} payload (format={fmt!r})")
    roots = [Span.from_dict(data) for data in payload.get("spans", ())]

    events: list[dict] = []
    lanes: dict[object, int] = {}
    counters = {"span": 0, "flow": 0}

    def lane_of(span: Span, parent_lane: int) -> int:
        worker = span.attributes.get("worker")
        if worker is None:
            return parent_lane
        if worker not in lanes:
            lanes[worker] = len(lanes) + 1
        return lanes[worker]

    def emit(span: Span, parent_lane: int, parent_id: int | None) -> None:
        counters["span"] += 1
        span_id = counters["span"]
        lane = lane_of(span, parent_lane)
        ts = round(span.started_at * 1e6)
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": ts,
            "dur": round(span.seconds * 1e6),
            "pid": TRACE_PID,
            "tid": lane,
            "args": {
                "span_id": span_id,
                "parent_id": parent_id,
                "status": span.status,
                "attributes": dict(span.attributes),
            },
        })
        if parent_id is not None and lane != parent_lane:
            counters["flow"] += 1
            flow = {
                "name": "dispatch",
                "cat": "repro",
                "id": counters["flow"],
                "ts": ts,
                "pid": TRACE_PID,
            }
            events.append({**flow, "ph": "s", "tid": parent_lane})
            events.append({**flow, "ph": "f", "bp": "e", "tid": lane})
        for child in span.children:
            emit(child, lane, span_id)

    for root in roots:
        emit(root, DRIVER_LANE, None)

    metadata = [
        {
            "name": "process_name", "ph": "M",
            "pid": TRACE_PID, "tid": DRIVER_LANE,
            "args": {"name": "repro-study"},
        },
        {
            "name": "thread_name", "ph": "M",
            "pid": TRACE_PID, "tid": DRIVER_LANE,
            "args": {"name": "driver"},
        },
    ]
    for worker, lane in sorted(lanes.items(), key=lambda item: item[1]):
        metadata.append({
            "name": "thread_name", "ph": "M",
            "pid": TRACE_PID, "tid": lane,
            "args": {"name": f"worker {worker}"},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Prometheus text exposition format

def _prom_name(name: str, *, suffix: str = "") -> str:
    """Sanitise a registry metric name into a Prometheus metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    full = f"repro_{cleaned}"
    if suffix and not full.endswith(suffix):
        full += suffix
    return full


def _fmt_value(value) -> str:
    """Render a sample value (ints stay integral, floats stay short)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(metrics) -> str:
    """Render a metrics snapshot in the Prometheus exposition format.

    Accepts a :class:`~repro.obs.metrics.MetricsSnapshot` or its
    ``as_dict()`` form (the ``metrics`` block of a run manifest).
    Counters gain the conventional ``_total`` suffix; histograms render
    as cumulative ``_bucket`` series plus ``_sum`` and ``_count``.
    """
    if hasattr(metrics, "as_dict"):
        metrics = metrics.as_dict()
    lines: list[str] = []

    for name in sorted(metrics.get("counters", {})):
        prom = _prom_name(name, suffix="_total")
        lines.append(
            f"# HELP {prom} Counter {name} from the repro metrics registry."
        )
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt_value(metrics['counters'][name])}")

    for name in sorted(metrics.get("gauges", {})):
        prom = _prom_name(name)
        lines.append(
            f"# HELP {prom} Gauge {name} from the repro metrics registry."
        )
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt_value(metrics['gauges'][name])}")

    for name in sorted(metrics.get("histograms", {})):
        data = metrics["histograms"][name]
        if hasattr(data, "as_dict"):
            data = data.as_dict()
        prom = _prom_name(name)
        lines.append(
            f"# HELP {prom} Histogram {name} from the repro metrics "
            "registry."
        )
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            lines.append(
                f'{prom}_bucket{{le="{_fmt_value(float(bound))}"}} '
                f"{cumulative}"
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{prom}_sum {_fmt_value(data['sum'])}")
        lines.append(f"{prom}_count {data['count']}")

    return "\n".join(lines) + "\n" if lines else ""


_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})(?:\{{({_LABEL}(?:,{_LABEL})*)?\}})? (\S+)$"
)
_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME}) \S.*$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$"
)
_LE_RE = re.compile(r'le="([^"]*)"')

#: Sample-name suffixes a histogram family may expose.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _sample_family(name: str, types: dict[str, str]) -> str | None:
    """The declared metric family a sample name belongs to, if any."""
    if name in types:
        return name
    for suffix in _HISTOGRAM_SUFFIXES:
        family = name[: -len(suffix)] if name.endswith(suffix) else None
        if family and types.get(family) == "histogram":
            return family
    return None


def validate_prometheus_text(text: str) -> list[str]:
    """Check a rendered page line by line against the exposition grammar.

    Returns a list of ``line N: problem`` strings (empty when the page
    is clean): malformed HELP/TYPE comments, samples whose name was
    never typed, histogram samples outside the
    ``_bucket``/``_sum``/``_count`` family, unparsable values and
    ``le`` labels that are not floats.
    """
    problems: list[str] = []
    types: dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# HELP "):
                if not _HELP_RE.match(line):
                    problems.append(f"line {number}: malformed HELP comment")
            elif line.startswith("# TYPE "):
                match = _TYPE_RE.match(line)
                if not match:
                    problems.append(f"line {number}: malformed TYPE comment")
                elif match.group(1) in types:
                    problems.append(
                        f"line {number}: duplicate TYPE for "
                        f"{match.group(1)!r}"
                    )
                else:
                    types[match.group(1)] = match.group(2)
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {number}: malformed sample line")
            continue
        name, labels, value = match.groups()
        try:
            float(value)
        except ValueError:
            problems.append(
                f"line {number}: sample value {value!r} is not a float"
            )
        family = _sample_family(name, types)
        if family is None:
            problems.append(
                f"line {number}: sample {name!r} has no preceding TYPE"
            )
        elif types[family] == "histogram" and name == family:
            problems.append(
                f"line {number}: histogram {family!r} exposes a bare "
                "sample (expected _bucket/_sum/_count)"
            )
        if name.endswith("_bucket"):
            le = _LE_RE.search(labels or "")
            if le is None:
                problems.append(
                    f"line {number}: _bucket sample without an le label"
                )
            else:
                try:
                    float(le.group(1))
                except ValueError:
                    problems.append(
                        f"line {number}: le value {le.group(1)!r} is not "
                        "a float"
                    )
    return problems


# ----------------------------------------------------------------------
# folded flamegraph stacks

def folded_stacks(payload: dict) -> str:
    """Render a ``--trace`` payload as flamegraph folded-stack lines.

    One ``path;to;span <microseconds>`` line per distinct span path,
    aggregating span *self* time (total minus children) across every
    occurrence of the path; zero-self-time paths are omitted, as their
    time is carried entirely by their children.  Lines are sorted by
    path so the output is deterministic.
    """
    totals: dict[str, int] = {}

    def visit(span: Span, prefix: str) -> None:
        path = f"{prefix};{span.name}" if prefix else span.name
        micros = round(span.self_seconds * 1e6)
        if micros > 0:
            totals[path] = totals.get(path, 0) + micros
        for child in span.children:
            visit(child, path)

    for data in payload.get("spans", ()):
        visit(Span.from_dict(data), "")
    if not totals:
        return ""
    return "\n".join(f"{path} {totals[path]}" for path in sorted(totals))
