"""Named counters, gauges and histograms with snapshot/merge semantics.

The study pipeline increments a small, stable set of metrics as it runs
— projects mined, versions parsed, atomic changes by kind, parse-cache
hits/misses, a diff-latency histogram.  Because the mine fan-out crosses
process boundaries, the registry is built around *snapshots*:

* every process has one always-on :class:`MetricsRegistry`
  (:func:`get_metrics`); incrementing is a dict update, cheap enough for
  hot paths;
* a worker snapshots the registry before and after each unit of work and
  ships the picklable difference (``after - before``) back with its
  result;
* the driver folds worker deltas together with ``+`` — counters and
  histogram buckets add element-wise, gauges take the newest value —
  into the study-level :class:`MetricsSnapshot` that the run manifest
  embeds.

Histograms carry only bucket counts, the value sum and the observation
count (no min/max), precisely so that the before/after subtraction above
is exact.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

#: Default histogram bucket upper bounds, in seconds (latency-shaped).
DEFAULT_BOUNDS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass
class HistogramData:
    """One histogram's state: bucket counts plus sum/count accumulators."""

    bounds: tuple[float, ...] = DEFAULT_BOUNDS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self):
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def copy(self) -> "HistogramData":
        return HistogramData(
            bounds=self.bounds,
            counts=list(self.counts),
            total=self.total,
            count=self.count,
        )

    def __add__(self, other: "HistogramData") -> "HistogramData":
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        return HistogramData(
            bounds=self.bounds,
            counts=[a + b for a, b in zip(self.counts, other.counts)],
            total=self.total + other.total,
            count=self.count + other.count,
        )

    def __sub__(self, other: "HistogramData") -> "HistogramData":
        if self.bounds != other.bounds:
            raise ValueError("cannot diff histograms with different bounds")
        return HistogramData(
            bounds=self.bounds,
            counts=[a - b for a, b in zip(self.counts, other.counts)],
            total=self.total - other.total,
            count=self.count - other.count,
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": round(self.total, 9),
            "count": self.count,
            "mean": round(self.mean, 9),
        }


@dataclass
class MetricsSnapshot:
    """A picklable point-in-time (or delta) view of a registry."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramData] = field(default_factory=dict)

    def __add__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = {**self.gauges, **other.gauges}
        histograms = {k: v.copy() for k, v in self.histograms.items()}
        for name, data in other.histograms.items():
            histograms[name] = (
                histograms[name] + data if name in histograms else data.copy()
            )
        return MetricsSnapshot(counters, gauges, histograms)

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        # zero-change counters are dropped: a delta only reports what
        # actually moved (forked workers inherit the parent's counters,
        # which would otherwise echo as zeros in every delta)
        counters = {
            name: value - other.counters.get(name, 0)
            for name, value in self.counters.items()
            if value != other.counters.get(name, 0)
        }
        histograms = {}
        for name, data in self.histograms.items():
            histograms[name] = (
                data - other.histograms[name]
                if name in other.histograms
                else data.copy()
            )
        return MetricsSnapshot(counters, dict(self.gauges), histograms)

    def fold_cache(self, stats) -> "MetricsSnapshot":
        """Fold a :class:`~repro.perf.cache.CacheStats` into the counters."""
        for name, value in (
            ("parse_cache.hits", stats.hits),
            ("parse_cache.misses", stats.misses),
            ("parse_cache.disk_hits", stats.disk_hits),
            ("parse_cache.statement_hits", stats.statement_hits),
            ("parse_cache.statement_misses", stats.statement_misses),
            ("parse_cache.fallback_parses", stats.fallback_parses),
            ("parse_cache.unit_hits", stats.unit_hits),
            ("parse_cache.unit_misses", stats.unit_misses),
        ):
            self.counters[name] = self.counters.get(name, 0) + value
        return self

    def as_dict(self) -> dict:
        """JSON-ready form with deterministic key order."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {
                k: round(self.gauges[k], 9) for k in sorted(self.gauges)
            },
            "histograms": {
                k: self.histograms[k].as_dict()
                for k in sorted(self.histograms)
            },
        }


class MetricsRegistry:
    """The process-local, always-on metrics store."""

    def __init__(self):
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramData] = {}

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        *,
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> None:
        """Record ``value`` into histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = HistogramData(bounds=bounds)
        histogram.observe(value)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        """An independent copy of the registry's current state."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={
                name: data.copy() for name, data in self._histograms.items()
            },
        )


# ----------------------------------------------------------------------
# the process-global registry
_active: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry:
    """The process's metrics registry (created on first use)."""
    global _active
    if _active is None:
        _active = MetricsRegistry()
    return _active


def reset_metrics() -> MetricsRegistry:
    """Replace the active registry with a fresh one (counters at zero)."""
    global _active
    _active = MetricsRegistry()
    return _active
