"""``repro obs top``: a live terminal dashboard over the event stream.

The dashboard consumes bus envelopes — over HTTP from a served run's
``/events`` SSE endpoint (``--url`` / ``--host``/``--port``), or
straight off the in-process bus with ``--attach`` (tests, embedding) —
and folds them into one screen of run state:

* a progress bar per stage (done/total, percent, ETA) from ``progress``
  heartbeats;
* parse-cache and statement-reuse rates plus artifact hit/recompute
  counts from ``metrics`` and ``artifact`` envelopes;
* warning totals by code from ``warning`` envelopes;
* peak RSS per telemetry scope from ``resource`` envelopes;
* the closing status line from the ``run`` marker.

Everything here is a pure fold: :meth:`DashboardState.apply` takes one
envelope, :func:`render_dashboard` renders the state to a string, and
:func:`run_top` just loops — which is what makes the whole surface unit
testable without a terminal or a server.
"""

from __future__ import annotations

import json
import time

#: Redraw throttle (seconds) when the stream is busy.
DEFAULT_INTERVAL = 0.5

#: Progress-bar width in characters.
BAR_WIDTH = 30

#: ANSI: cursor home + clear to end of screen (one flicker-free frame).
CLEAR = "\x1b[H\x1b[J"


# ----------------------------------------------------------------------
# SSE parsing (the client side of repro.obs.server's /events)

def sse_events(lines) -> "iter[dict]":
    """Parse an SSE line stream into bus envelopes.

    ``lines`` is any iterable of text lines (an ``urlopen`` response,
    a file, a list in tests).  Yields the JSON-decoded ``data:`` payload
    of each complete frame; comment lines (keepalives) and unknown
    fields are skipped per the SSE spec.
    """
    data_parts: list[str] = []
    for raw in lines:
        line = raw.decode() if isinstance(raw, bytes) else raw
        line = line.rstrip("\r\n")
        if not line:  # blank line terminates a frame
            if data_parts:
                try:
                    yield json.loads("\n".join(data_parts))
                except json.JSONDecodeError:
                    pass  # a torn frame must not kill the dashboard
                data_parts = []
            continue
        if line.startswith(":"):
            continue  # keepalive comment
        field, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if field == "data":
            data_parts.append(value)


# ----------------------------------------------------------------------
# the state fold

class DashboardState:
    """Everything one screen shows, folded from envelopes."""

    def __init__(self):
        self.stages: dict[str, dict] = {}  # insertion order = first seen
        self.counters: dict[str, int] = {}
        self.artifacts = {"hit": 0, "recompute": 0}
        self.warning_codes: dict[str, int] = {}
        self.resources: dict[str, int] = {}  # scope -> peak RSS bytes
        self.spans = 0
        self.last_span: dict | None = None
        self.run_status: str | None = None
        self.run_command: str | None = None
        self.events = 0
        self.last_id = 0

    def apply(self, envelope: dict) -> None:
        """Fold one bus envelope into the state."""
        self.events += 1
        self.last_id = max(self.last_id, int(envelope.get("id", 0)))
        kind = envelope.get("kind")
        data = envelope.get("data") or {}
        if kind == "progress":
            self.stages[data.get("stage", "?")] = {
                "done": data.get("done", 0),
                "total": data.get("total", 0),
                "percent": data.get("percent", 0.0),
                "eta_seconds": data.get("eta_seconds", 0.0),
            }
        elif kind == "metrics":
            self.counters = dict(data.get("counters") or {})
        elif kind == "artifact":
            outcome = data.get("outcome")
            if outcome in self.artifacts:
                self.artifacts[outcome] += 1
        elif kind == "warning":
            code = data.get("code", "?")
            self.warning_codes[code] = self.warning_codes.get(code, 0) + 1
        elif kind == "resource":
            scope = data.get("scope", "?")
            rss = int(data.get("peak_rss_bytes") or 0)
            self.resources[scope] = max(self.resources.get(scope, 0), rss)
        elif kind == "span":
            self.spans += 1
            self.last_span = {
                "name": data.get("name", "?"),
                "seconds": data.get("seconds", 0.0),
            }
        elif kind == "run":
            self.run_status = data.get("status")
            self.run_command = data.get("command")

    # -- derived rates -------------------------------------------------
    def _rate(self, hit_key: str, miss_key: str) -> float | None:
        hits = self.counters.get(hit_key, 0)
        misses = self.counters.get(miss_key, 0)
        total = hits + misses
        return hits / total if total else None

    @property
    def parse_cache_rate(self) -> float | None:
        return self._rate("parse_cache.hits", "parse_cache.misses")

    @property
    def statement_reuse_rate(self) -> float | None:
        return self._rate(
            "parse_cache.statement_hits", "parse_cache.statement_misses"
        )

    @property
    def warning_count(self) -> int:
        return sum(self.warning_codes.values())

    @property
    def peak_rss_bytes(self) -> int:
        return max(self.resources.values(), default=0)


# ----------------------------------------------------------------------
# rendering

def _bar(done: int, total: int, width: int = BAR_WIDTH) -> str:
    if total <= 0:
        return "[" + "-" * width + "]"
    filled = round(min(1.0, done / total) * width)
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _fmt_eta(seconds: float) -> str:
    if seconds >= 60.0:
        minutes, rest = divmod(round(seconds), 60)
        return f"{minutes}m{rest:02d}s"
    return f"{seconds:.1f}s"


def render_dashboard(state: DashboardState, width: int = 80) -> str:
    """One frame of the dashboard as a plain multi-line string."""
    lines = [
        f"repro obs top — {state.events} events (last id {state.last_id})"
    ]
    lines.append("-" * min(width, 72))
    if state.stages:
        name_width = max(len(name) for name in state.stages)
        for name, row in state.stages.items():
            done, total = row["done"], row["total"]
            tail = f"{done}/{total} ({row['percent']:.0f}%)"
            if total and done < total:
                tail += f" eta {_fmt_eta(row['eta_seconds'])}"
            lines.append(
                f"{name:<{name_width}} {_bar(done, total)} {tail}"
            )
    else:
        lines.append("(no progress heartbeats yet)")
    rates = []
    if state.parse_cache_rate is not None:
        rates.append(f"parse-cache {state.parse_cache_rate:.0%}")
    if state.statement_reuse_rate is not None:
        rates.append(f"stmt-reuse {state.statement_reuse_rate:.0%}")
    if state.artifacts["hit"] or state.artifacts["recompute"]:
        rates.append(
            f"artifacts {state.artifacts['hit']} hit / "
            f"{state.artifacts['recompute']} recomputed"
        )
    if rates:
        lines.append("  ".join(rates))
    if state.peak_rss_bytes:
        scopes = ", ".join(
            f"{scope} {rss / 2**20:.0f} MiB"
            for scope, rss in sorted(state.resources.items())
        )
        lines.append(f"peak RSS: {scopes}")
    if state.warning_count:
        codes = ", ".join(
            f"{code}×{count}"
            for code, count in sorted(state.warning_codes.items())
        )
        lines.append(f"warnings: {state.warning_count} ({codes})")
    if state.spans:
        last = state.last_span or {}
        lines.append(
            f"spans: {state.spans} closed "
            f"(last {last.get('name')} {last.get('seconds', 0):.3f}s)"
        )
    if state.run_status is not None:
        lines.append(
            f"run {state.run_command or '?'} finished: {state.run_status}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the drive loop

def run_top(
    envelopes,
    *,
    out,
    interval: float = DEFAULT_INTERVAL,
    max_events: int | None = None,
    plain: bool = False,
    clock=time.monotonic,
) -> DashboardState:
    """Fold an envelope stream into frames written to ``out``.

    ``plain`` writes each frame as a block (logs, pipes, tests); the
    default clears the screen per frame for a live terminal.  Stops
    after ``max_events`` envelopes, when the stream ends, or at the
    ``run`` marker; always renders a final frame.  Returns the state.
    """
    state = DashboardState()
    last_draw: float | None = None

    def draw() -> None:
        frame = render_dashboard(state)
        if plain:
            out.write(frame + "\n\n")
        else:
            out.write(CLEAR + frame + "\n")
        out.flush()

    for envelope in envelopes:
        state.apply(envelope)
        now = clock()
        if last_draw is None or now - last_draw >= interval:
            draw()
            last_draw = now
        if max_events is not None and state.events >= max_events:
            break
        if state.run_status is not None:
            break
    draw()
    return state


def bus_envelopes(*, max_idle_seconds: float = 10.0):
    """The ``--attach`` source: envelopes from the in-process bus.

    Yields until the stream goes quiet for ``max_idle_seconds`` (or a
    ``run`` marker arrives, which :func:`run_top` treats as the end).
    """
    from .bus import get_bus

    subscription = get_bus().subscribe()
    try:
        while True:
            envelope = subscription.get(timeout=max_idle_seconds)
            if envelope is None:
                return
            yield envelope
    finally:
        subscription.close()


def url_envelopes(url: str, *, last_id: int = 0, limit: int | None = None):
    """The HTTP source: envelopes from a served run's ``/events``."""
    from urllib.request import Request, urlopen

    endpoint = url.rstrip("/") + "/events"
    if limit is not None:
        endpoint += f"?limit={limit}"
    request = Request(endpoint)
    if last_id:
        request.add_header("Last-Event-ID", str(last_id))
    with urlopen(request) as response:
        yield from sse_events(response)
