"""The run manifest: one JSON document describing a whole pipeline run.

Written next to the study outputs (``--manifest FILE``), the manifest is
the auditable record replication work needs: the seed and corpus size,
the parallelism and cache configuration, toolchain versions, per-stage
wall-clock timings, the final metrics snapshot and every warning the run
raised (aggregated by code).  It always round-trips through
``json.loads`` — enforced by ``make trace-smoke`` and the obs tests.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from pathlib import Path

from .events import aggregate_warnings

#: Version tag of the manifest document format.
MANIFEST_FORMAT = "repro-run-manifest-v1"


def runtime_environment() -> dict:
    """Host facts for apples-to-apples perf comparisons.

    Recorded in every manifest (and the BENCH payload) so
    ``repro bench-check`` can refuse cross-machine baselines with a
    clear warning instead of reporting phantom regressions.
    """
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def build_manifest(
    *,
    command: str,
    status: str = "ok",
    seed: int | None = None,
    jobs: int | None = None,
    study=None,
    corpus_size: int | None = None,
    warnings: list[dict] | None = None,
    outputs: dict | None = None,
    server: dict | None = None,
) -> dict:
    """Assemble the manifest document for one run.

    ``study`` (a :class:`~repro.analysis.study.StudyResult`) contributes
    project counts, stage timings and the metrics snapshot when the run
    produced one; corpus-only runs pass ``corpus_size`` instead.
    ``server`` is the attached observability server's summary (bound
    URL, request/SSE counters, bus stats) when the run was served —
    the only manifest block that differs between a served and an
    unserved run.
    """
    from .. import __version__
    from ..perf.cache import CACHE_DIR_ENV, get_cache
    from ..pipeline.store import STORE_DIR_ENV, get_store

    cache = get_cache()
    store = get_store()
    manifest: dict = {
        "format": MANIFEST_FORMAT,
        "command": command,
        "status": status,
        "created_at": round(time.time(), 3),
        "seed": seed,
        "jobs": jobs,
        "versions": {
            "repro": __version__,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "environment": runtime_environment(),
        "cache": {
            "dir": str(cache.cache_dir) if cache.cache_dir else None,
            "env": os.environ.get(CACHE_DIR_ENV),
            "stats": cache.stats.as_dict(),
        },
        "store": {
            "kind": store.kind,
            "dir": str(getattr(store, "root", None) or "") or None,
            "env": os.environ.get(STORE_DIR_ENV),
            "stats": store.stats.as_dict(),
        },
    }
    if study is not None:
        manifest["projects"] = len(study.projects)
        manifest["skipped"] = list(study.skipped)
        manifest["timings"] = study.timings.as_dict()
        manifest["metrics"] = study.metrics.as_dict()
        artifact_store = manifest["timings"].get("artifact_store")
        if artifact_store and "map" in artifact_store:
            # surface the map/reduce split in the store block so an
            # auditor sees shard reuse without digging through timings
            manifest["store"]["shards"] = {
                "map": artifact_store["map"],
                "reduce": artifact_store["reduce"],
            }
    elif corpus_size is not None:
        manifest["projects"] = corpus_size
        from .metrics import get_metrics

        manifest["metrics"] = get_metrics().snapshot().as_dict()
    warnings = warnings if warnings is not None else []
    manifest["warnings"] = aggregate_warnings(warnings)
    manifest["warning_count"] = len(warnings)
    if server:
        manifest["server"] = server
    if outputs:
        manifest["outputs"] = {
            key: str(value) for key, value in outputs.items() if value
        }
    return manifest


def write_manifest(manifest: dict, path: str | Path) -> Path:
    """Write a manifest document; the text always survives json.loads."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, default=str) + "\n")
    return path
