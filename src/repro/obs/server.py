"""The live observability endpoint: HTTP over the telemetry bus.

``repro study --serve`` (and the standalone ``repro obs serve``) binds a
stdlib-only :class:`~http.server.ThreadingHTTPServer` next to the run
and exposes what the telemetry bus, the metrics registry, the artifact
store and the run registry already know:

========================  =============================================
``GET /healthz``          liveness: status, version, uptime, pid
``GET /metrics``          Prometheus text exposition of the live
                          metrics snapshot, plus the bus and server
                          counters (``repro_bus_dropped_total`` is the
                          slow-consumer drop total)
``GET /events``           Server-Sent Events over the bus: one frame
                          per envelope (``id:`` = bus id, ``event:`` =
                          kind, ``data:`` = the record), ``: keepalive``
                          comments while idle, ``Last-Event-ID`` (or
                          ``?last_id=N``) replay from the ring buffer,
                          ``?limit=N`` to close after N events
``GET /runs``             the store's run-history registry (JSON array;
                          ``?limit=N`` for the tail)
``GET /runs/<id>``        one record by ``run_id`` or manifest-digest
                          prefix
``GET /status``           pipeline stage table: warm/stale/cold per
                          stage via the provenance module, plus shard
                          totals and version drift
========================  =============================================

The server is an *observer*: every handler reads live state (bus ring,
metrics snapshot, store keys) without mutating any of it, and its own
counters live on the server object — never in the global metrics
registry — so a served run's artifacts stay byte-identical to an
unserved one.  ``/metrics`` merges the bus and server counters into a
*copy* of the snapshot at render time for the same reason.

Replay horizon: ``/events`` reconnects resume exactly where they left
off as long as the requested id is still in the bus ring (the last
``REPRO_BUS_CAPACITY`` envelopes, default 1024).  Older ids replay from
the oldest retained envelope; the gap is visible in the id sequence.
"""

from __future__ import annotations

import json
import os
import threading
import time
import weakref
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .bus import get_bus
from .export import prometheus_text
from .metrics import get_metrics

#: Default bind host — loopback only; telemetry is not a public service.
DEFAULT_HOST = "127.0.0.1"

#: Seconds between ``: keepalive`` comments on an idle SSE stream.
SSE_KEEPALIVE_SECONDS = 5.0

#: Live servers in this process, for post-fork socket hygiene.
_active_servers: "weakref.WeakSet[ObservabilityServer]" = weakref.WeakSet()


def close_inherited_sockets() -> int:
    """Close listening sockets a forked worker inherited; returns count.

    A pool worker forked while ``--serve`` is listening shares the
    server's socket fd with the driver.  Unless the worker closes its
    copy, the kernel keeps completing TCP handshakes on the port after
    the driver's ``server_close()`` — the port never reads as released.
    Called from the pool's ``worker_init`` (in the child, where this
    module's state is a fork-time copy of the driver's).
    """
    closed = 0
    for server in list(_active_servers):
        httpd = server._httpd
        if httpd is not None:
            try:
                httpd.socket.close()
            except OSError:
                pass
            closed += 1
    return closed


def _parse_last_id(headers, query: dict) -> int:
    """The SSE resume point: ``Last-Event-ID`` header or ``?last_id=``."""
    raw = headers.get("Last-Event-ID")
    if raw is None:
        raw = (query.get("last_id") or [None])[0]
    try:
        return max(0, int(raw)) if raw is not None else 0
    except ValueError:
        return 0


def _parse_limit(query: dict) -> int | None:
    raw = (query.get("limit") or [None])[0]
    try:
        value = int(raw) if raw is not None else None
    except ValueError:
        return None
    return value if value and value > 0 else None


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on ``self.server.owner``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-obs"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the server is quiet; counters replace the access log

    def _send_json(self, payload, status: int = 200) -> None:
        body = (json.dumps(payload, indent=2, default=str) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib signature
        owner = self.server.owner
        owner.count_request(self.path)
        url = urlparse(self.path)
        query = parse_qs(url.query)
        route = url.path.rstrip("/") or "/"
        try:
            if route == "/healthz":
                self._send_json(owner.health())
            elif route == "/metrics":
                self._send_text(
                    owner.metrics_page(), "text/plain; version=0.0.4"
                )
            elif route == "/events":
                self._serve_events(owner, query)
            elif route == "/runs":
                self._serve_runs(owner, query)
            elif route.startswith("/runs/"):
                self._serve_run(owner, route[len("/runs/"):])
            elif route == "/status":
                self._send_json(owner.pipeline_status())
            else:
                self._send_json(
                    {"error": f"no route {url.path!r}", "routes": [
                        "/healthz", "/metrics", "/events", "/runs",
                        "/runs/<id>", "/status",
                    ]},
                    status=404,
                )
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to clean up
        except Exception as exc:  # never take the server down
            try:
                self._send_json(
                    {"error": f"{type(exc).__name__}: {exc}"}, status=500
                )
            except (BrokenPipeError, OSError):
                pass

    # -- endpoint bodies -----------------------------------------------
    def _serve_runs(self, owner: "ObservabilityServer", query) -> None:
        registry = owner.registry()
        if registry is None:
            self._send_json(
                {"error": "no directory store — no run history"},
                status=404,
            )
            return
        records = registry.records(limit=_parse_limit(query))
        self._send_json({
            "registry": str(registry.path),
            "count": len(records),
            "records": records,
        })

    def _serve_run(self, owner: "ObservabilityServer", ref: str) -> None:
        registry = owner.registry()
        if registry is None:
            self._send_json(
                {"error": "no directory store — no run history"},
                status=404,
            )
            return
        matches = [
            record for record in registry.records()
            if str(record.get("run_id", "")).startswith(ref)
            or str(record.get("manifest_digest") or "").startswith(ref)
        ]
        if not matches:
            self._send_json({"error": f"no run matching {ref!r}"},
                            status=404)
        elif len(matches) > 1:
            self._send_json(
                {
                    "error": f"{len(matches)} runs match {ref!r}",
                    "run_ids": [r.get("run_id") for r in matches],
                },
                status=300,
            )
        else:
            self._send_json(matches[0])

    def _serve_events(self, owner: "ObservabilityServer", query) -> None:
        bus = get_bus()
        last_id = _parse_last_id(self.headers, query)
        limit = _parse_limit(query)
        subscription = bus.subscribe(last_id=last_id)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        served = 0
        try:
            while not owner.stopping.is_set():
                envelope = subscription.get(timeout=SSE_KEEPALIVE_SECONDS)
                if envelope is None:
                    if limit is not None:
                        break  # bounded reads end at a quiet bus
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                frame = (
                    f"id: {envelope['id']}\n"
                    f"event: {envelope['kind']}\n"
                    f"data: {json.dumps(envelope, default=str)}\n\n"
                )
                self.wfile.write(frame.encode())
                self.wfile.flush()
                served += 1
                owner.count_events(1)
                if limit is not None and served >= limit:
                    break
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # disconnects are the normal end of an SSE stream
        finally:
            subscription.close()


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Back-reference set by :class:`ObservabilityServer`.
    owner: "ObservabilityServer"


class ObservabilityServer:
    """Owns the HTTP server thread and the run-facing summary counters.

    ``pipeline_factory`` is a zero-argument callable returning the
    :class:`~repro.pipeline.graph.Pipeline` whose stage table
    ``/status`` reports — built lazily on first request and cached, so
    an unvisited endpoint costs nothing.
    """

    def __init__(
        self,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        pipeline_factory=None,
    ):
        self.host = host
        self.requested_port = port
        self.pipeline_factory = pipeline_factory
        self.started_at: float | None = None
        self.stopping = threading.Event()
        self.requests = 0
        self.events_served = 0
        self.paths: dict[str, int] = {}
        self._lock = threading.Lock()
        self._httpd: _Server | None = None
        self._thread: threading.Thread | None = None
        self._pipeline = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ObservabilityServer":
        """Bind and serve on a daemon thread; returns self."""
        self._httpd = _Server((self.host, self.requested_port), _Handler)
        self._httpd.owner = self
        _active_servers.add(self)
        self.started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, wake SSE loops, join the accept thread.

        Safe to call twice and from two threads at once — the
        ``--serve-linger`` wait() and a programmatic stop() can race,
        so exactly one caller claims the httpd under the lock.
        """
        with self._lock:
            httpd = self._httpd
            thread = self._thread
            self._httpd = None
            self._thread = None
        _active_servers.discard(self)
        self.stopping.set()
        if httpd is None:
            return
        httpd.shutdown()
        httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def wait(self) -> None:
        """Block until interrupted (the ``--serve-linger`` foreground)."""
        try:
            while not self.stopping.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 to the ephemeral pick)."""
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- counters (server-local; never the global registry) ------------
    def count_request(self, path: str) -> None:
        with self._lock:
            self.requests += 1
            route = urlparse(path).path.rstrip("/") or "/"
            self.paths[route] = self.paths.get(route, 0) + 1

    def count_events(self, n: int) -> None:
        with self._lock:
            self.events_served += n

    # -- endpoint state ------------------------------------------------
    def health(self) -> dict:
        from .. import __version__

        return {
            "status": "ok",
            "version": __version__,
            "pid": os.getpid(),
            "started_at": round(self.started_at or 0.0, 3),
            "uptime_seconds": round(
                time.time() - (self.started_at or time.time()), 3
            ),
            "bus": get_bus().stats(),
        }

    def metrics_page(self) -> str:
        """The live snapshot plus bus/server counters, rendered.

        The merge happens on a *copy* of the snapshot dict: the global
        registry never sees a bus or server counter, which is what
        keeps a served run's manifest metrics identical to an unserved
        run's.
        """
        snapshot = get_metrics().snapshot().as_dict()
        stats = get_bus().stats()
        counters = dict(snapshot.get("counters", {}))
        counters["bus.published"] = stats["published"]
        counters["bus.dropped"] = stats["dropped"]
        with self._lock:
            counters["server.requests"] = self.requests
            counters["server.events_served"] = self.events_served
        gauges = dict(snapshot.get("gauges", {}))
        gauges["bus.subscribers"] = stats["subscribers"]
        gauges["bus.ring_size"] = stats["ring_size"]
        gauges["bus.ring_capacity"] = stats["ring_capacity"]
        return prometheus_text({
            **snapshot, "counters": counters, "gauges": gauges,
        })

    def registry(self):
        from ..pipeline.store import get_store
        from .registry import registry_for_store

        return registry_for_store(get_store())

    def _get_pipeline(self):
        if self._pipeline is None and self.pipeline_factory is not None:
            self._pipeline = self.pipeline_factory()
        return self._pipeline

    def pipeline_status(self) -> dict:
        """The ``/status`` document: stage rows + provenance states.

        Reduce stages are classified warm/stale/cold through
        :func:`~repro.obs.provenance.explain_target` (one record each);
        map stages report their shard warm/total split from the status
        row — explaining every shard would scan the store per shard,
        which an HTTP endpoint should not do by default.
        """
        pipe = self._get_pipeline()
        if pipe is None:
            return {"error": "no pipeline configured for /status",
                    "stages": []}
        from ..pipeline.stages import STAGES

        rows = pipe.status()
        drift = pipe.version_drift()
        drifted = {entry["stage"] for entry in drift}
        stages = []
        for row in rows:
            entry = dict(row)
            if STAGES[row["stage"]].kind == "map":
                if row["warm"]:
                    entry["state"] = "warm"
                elif row["warm_shards"]:
                    entry["state"] = "partial"
                else:
                    entry["state"] = "cold"
            else:
                if row["warm"]:
                    entry["state"] = "warm"
                else:
                    record = pipe.explain(row["stage"])[0]
                    entry["state"] = record["state"]
                    entry["causes"] = [
                        cause["label"] for cause in record["causes"]
                    ]
            if row["stage"] in drifted:
                entry["source_drift"] = True
            stages.append(entry)
        store = pipe.store
        return {
            "store": {
                "kind": store.kind,
                "dir": str(getattr(store, "root", None) or "") or None,
            },
            "seed": pipe.seed,
            "scale": pipe.scale,
            "stages": stages,
            "drift": drift,
        }

    # -- the manifest block --------------------------------------------
    def summary(self) -> dict:
        """The ``server`` block recorded in a served run's manifest."""
        with self._lock:
            return {
                "url": self.url,
                "started_at": round(self.started_at or 0.0, 3),
                "requests": self.requests,
                "events_served": self.events_served,
                "paths": dict(sorted(self.paths.items())),
                "bus": get_bus().stats(),
            }
