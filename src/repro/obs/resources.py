"""Resource telemetry: peak RSS and CPU time, psutil-free.

The study is a memory-bound batch job — ROADMAP item 2 (100× corpus
scale-out) is explicitly a *bounded-memory* goal — so every run should
record how much memory it actually held.  This module provides that
telemetry without any third-party dependency:

* :func:`current_rss_bytes` / :func:`peak_rss_bytes` read
  ``/proc/self/status`` (``VmRSS`` / ``VmHWM``) on Linux and fall back
  to :mod:`resource`'s ``ru_maxrss`` elsewhere (kilobytes on Linux,
  bytes on macOS — normalised here); when neither source exists the
  readers return ``0`` and every consumer treats the telemetry as
  absent rather than failing the run;
* :func:`cpu_times` reads :func:`os.times` (user + system, self and
  children), portable everywhere;
* :class:`ResourceMonitor` is a small daemon **sampler thread**: open a
  window around a stage and the thread folds periodic RSS samples into
  the window's peak, so a stage that balloons mid-flight is caught even
  though its entry and exit footprints look modest.  Windows nest
  freely (the whole-run window coexists with per-stage windows) and
  closing a window yields an immutable :class:`ResourceSample`.

Telemetry never perturbs results: samples land in
:class:`~repro.perf.timing.StudyTimings` (and from there the manifest,
``BENCH_study.json`` and ``bench-check``), never in artifact payloads,
so cold and warm runs stay byte-identical.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass

#: Seconds between sampler passes; coarse on purpose — the sampler
#: exists to catch mid-stage peaks, not to build a time series.
SAMPLE_INTERVAL = 0.05

_PROC_STATUS = "/proc/self/status"


def _read_proc_field(field: str) -> int | None:
    """A ``Vm*`` field of ``/proc/self/status`` in bytes, or ``None``."""
    try:
        with open(_PROC_STATUS, "rb") as handle:
            for line in handle:
                if line.startswith(field):
                    # "VmRSS:\t  123456 kB"
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def _rusage_maxrss_bytes(children: bool = False) -> int:
    """``ru_maxrss`` normalised to bytes; 0 when unavailable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - resource is POSIX-only
        return 0
    who = resource.RUSAGE_CHILDREN if children else resource.RUSAGE_SELF
    try:
        maxrss = resource.getrusage(who).ru_maxrss
    except (OSError, ValueError):  # pragma: no cover - defensive
        return 0
    # Linux reports kilobytes, macOS reports bytes.
    return int(maxrss if sys.platform == "darwin" else maxrss * 1024)


def current_rss_bytes() -> int:
    """The process's resident set right now (best effort, 0 if unknown).

    The portable fallback is ``ru_maxrss`` — a high-water mark, not the
    instantaneous value — which is still safe for every consumer here:
    peaks folded from it are upper bounds, never underestimates.
    """
    value = _read_proc_field(b"VmRSS:")
    if value is not None:
        return value
    return _rusage_maxrss_bytes()


def peak_rss_bytes() -> int:
    """The process-lifetime peak resident set (0 if unknown)."""
    value = _read_proc_field(b"VmHWM:")
    if value is not None:
        return value
    return _rusage_maxrss_bytes()


def cpu_times() -> tuple[float, float]:
    """(user, system) CPU seconds of this process (children excluded)."""
    times = os.times()
    return (times.user, times.system)


@dataclass(frozen=True)
class ResourceSample:
    """One closed window's resource footprint."""

    peak_rss_bytes: int = 0
    cpu_user_seconds: float = 0.0
    cpu_system_seconds: float = 0.0

    @property
    def cpu_seconds(self) -> float:
        return self.cpu_user_seconds + self.cpu_system_seconds

    def as_dict(self) -> dict:
        return {
            "peak_rss_bytes": self.peak_rss_bytes,
            "cpu_seconds": round(self.cpu_seconds, 6),
        }


def process_sample() -> ResourceSample:
    """The whole process's lifetime footprint (peak RSS + CPU so far).

    What a pool worker ships back to the driver: workers are
    single-purpose processes, so their lifetime peak *is* their work's
    peak — no window bookkeeping needed across the pickle boundary.
    """
    user, system = cpu_times()
    return ResourceSample(
        peak_rss_bytes=peak_rss_bytes(),
        cpu_user_seconds=user,
        cpu_system_seconds=system,
    )


class _Window:
    """One open measurement window; the sampler folds peaks into it."""

    __slots__ = ("peak", "cpu_start")

    def __init__(self, rss: int, cpu: tuple[float, float]):
        self.peak = rss
        self.cpu_start = cpu


class ResourceMonitor:
    """The sampler thread plus its set of open windows.

    The thread starts lazily on the first window and samples every
    :attr:`interval` seconds, folding the current RSS into every open
    window's peak under a lock.  It is a daemon — interpreter exit
    never waits on it — and a platform with no readable RSS simply
    yields all-zero samples (consumers skip empty telemetry).
    """

    def __init__(self, interval: float = SAMPLE_INTERVAL):
        self.interval = interval
        self._lock = threading.Lock()
        self._windows: set[_Window] = set()
        self._thread: threading.Thread | None = None
        self._wake = threading.Event()

    # -- the sampler ---------------------------------------------------
    def _ensure_thread(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while True:
            self._wake.wait(timeout=self.interval)
            self._wake.clear()
            with self._lock:
                if not self._windows:
                    # idle: park until the next window opens
                    pass
                else:
                    rss = current_rss_bytes()
                    for window in self._windows:
                        if rss > window.peak:
                            window.peak = rss
            if not self._windows:
                time.sleep(self.interval)

    # -- windows -------------------------------------------------------
    def open_window(self) -> _Window:
        """Open a window; close with :meth:`close_window`."""
        window = _Window(current_rss_bytes(), cpu_times())
        with self._lock:
            self._windows.add(window)
        self._ensure_thread()
        self._wake.set()
        return window

    def close_window(self, window: _Window) -> ResourceSample:
        """Close a window and return its folded sample."""
        rss = current_rss_bytes()
        user, system = cpu_times()
        with self._lock:
            self._windows.discard(window)
            peak = max(window.peak, rss)
        return ResourceSample(
            peak_rss_bytes=peak,
            cpu_user_seconds=max(0.0, user - window.cpu_start[0]),
            cpu_system_seconds=max(0.0, system - window.cpu_start[1]),
        )

    class _WindowContext:
        __slots__ = ("monitor", "window", "sample")

        def __init__(self, monitor: "ResourceMonitor"):
            self.monitor = monitor
            self.window = None
            self.sample: ResourceSample | None = None

        def __enter__(self) -> "ResourceMonitor._WindowContext":
            self.window = self.monitor.open_window()
            return self

        def __exit__(self, *exc) -> bool:
            self.sample = self.monitor.close_window(self.window)
            return False

    def window(self) -> "ResourceMonitor._WindowContext":
        """Context manager: ``with monitor.window() as w: ...``; the
        folded sample is on ``w.sample`` after the block exits."""
        return ResourceMonitor._WindowContext(self)


_active: ResourceMonitor | None = None


def get_monitor() -> ResourceMonitor:
    """The process's resource monitor (created on first use)."""
    global _active
    if _active is None:
        _active = ResourceMonitor()
    return _active


class MemoryLimitExceeded(RuntimeError):
    """``--limit-memory`` was breached: driver RSS crossed the cap."""

    def __init__(self, rss_bytes: int, limit_bytes: int):
        self.rss_bytes = rss_bytes
        self.limit_bytes = limit_bytes
        super().__init__(
            f"driver RSS {rss_bytes / 2**20:.0f} MiB exceeded "
            f"--limit-memory {limit_bytes / 2**20:.0f} MiB"
        )


class MemoryWatchdog:
    """Warn-then-fail enforcement of a driver memory cap.

    The streaming map loop calls :meth:`check` once per folded shard.
    Crossing ``warn_fraction`` of the cap records one ``memory-pressure``
    warning and flips the watchdog into the ``"pressure"`` state — the
    loop's cue to shrink its in-flight window.  Crossing the cap itself
    raises :class:`MemoryLimitExceeded`: a bounded-memory run that
    cannot stay bounded should fail loudly, not swap quietly.

    The probe is injectable for tests (defaults to
    :func:`current_rss_bytes`); a platform where RSS is unreadable
    probes ``0`` forever and the watchdog never trips.
    """

    def __init__(
        self,
        limit_bytes: int,
        *,
        warn_fraction: float = 0.8,
        probe=current_rss_bytes,
    ):
        self.limit_bytes = limit_bytes
        self.warn_bytes = int(limit_bytes * warn_fraction)
        self.probe = probe
        self.peak_seen = 0
        self.warned = False
        self.checks = 0

    def check(self) -> str:
        """Probe once; return ``"ok"`` or ``"pressure"``, raise on breach."""
        self.checks += 1
        rss = self.probe()
        if rss > self.peak_seen:
            self.peak_seen = rss
        if rss >= self.limit_bytes:
            raise MemoryLimitExceeded(rss, self.limit_bytes)
        if rss >= self.warn_bytes:
            if not self.warned:
                self.warned = True
                # function-level import: events imports nothing from
                # here, but keeping resources import-light avoids any
                # future cycle through the obs package
                from .events import warn

                warn(
                    "memory-pressure",
                    f"driver RSS {rss / 2**20:.0f} MiB is above "
                    f"{int(self.warn_bytes / 2**20)} MiB "
                    f"({self.limit_bytes / 2**20:.0f} MiB cap); "
                    "shrinking the fan-out window",
                    rss_bytes=rss,
                    limit_bytes=self.limit_bytes,
                )
            return "pressure"
        return "ok"

    def as_dict(self) -> dict:
        return {
            "limit_bytes": self.limit_bytes,
            "peak_seen_bytes": self.peak_seen,
            "checks": self.checks,
            "pressure": self.warned,
        }
