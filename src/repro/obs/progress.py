"""Live run monitoring: heartbeat progress events and the TTY line.

Long ``run_study --jobs N`` runs used to be silent until they finished.
This module threads a heartbeat through both executor fan-outs (corpus
generation and mine+analyze): as each unit of work completes, the
driver-side loop calls :meth:`ProgressTracker.update`, and the tracker
periodically emits a ``progress`` event —

``{"event": "progress", "stage": ..., "done": N, "total": M,
"percent": ..., "eta_seconds": ..., "slowest": [...]}``

— to the process's :class:`ProgressChannel`.  The channel fans the
record out to up to two places:

* ``sink`` — the ``--log-json`` event log (wired by ``ObsSession``
  whenever a log is open, so progress history lands in the same JSONL
  stream as spans and warnings and validates under the same schema);
* ``stream`` — the opt-in ``--progress`` TTY line on stderr
  (carriage-return refresh on a real terminal, plain lines otherwise).

ETA comes from the live :class:`~repro.perf.timing.StudyTimings` when
the stage records per-item seconds (mean summed worker seconds per
completed project, divided by ``jobs``), falling back to wall-clock
extrapolation for stages without per-item timings (generation).

Progress is observation only: trackers count completions on the driver
side of the pool, never inside workers, so the byte-identity guarantee
of the observability layer (traced results == untraced results) holds
with the heartbeat on.
"""

from __future__ import annotations

import os
import time

from .bus import get_bus

#: Environment variable overriding the heartbeat interval (seconds).
PROGRESS_INTERVAL_ENV = "REPRO_PROGRESS_INTERVAL"

#: Default minimum seconds between emitted heartbeats per stage.
DEFAULT_INTERVAL = 1.0

#: How many slowest-so-far entries each progress event carries.
TOP_SLOWEST = 3


def _default_interval() -> float:
    raw = os.environ.get(PROGRESS_INTERVAL_ENV)
    if raw is None:
        return DEFAULT_INTERVAL
    try:
        return max(0.0, float(raw))
    except ValueError:
        return DEFAULT_INTERVAL


def _is_tty(stream) -> bool:
    try:
        return bool(stream.isatty())
    except (AttributeError, ValueError):
        return False


def _fmt_eta(seconds: float) -> str:
    if seconds >= 60.0:
        minutes, rest = divmod(round(seconds), 60)
        return f"{minutes}m{rest:02d}s"
    return f"{seconds:.1f}s"


def progress_event(
    stage: str,
    done: int,
    total: int,
    eta_seconds: float,
    slowest: list[tuple[float, str]],
) -> dict:
    """The JSONL record for one heartbeat (validates as ``progress``)."""
    return {
        "event": "progress",
        "ts": round(time.time(), 6),
        "stage": stage,
        "done": done,
        "total": total,
        "percent": round(100.0 * done / total, 1) if total else 100.0,
        "eta_seconds": round(max(0.0, eta_seconds), 3),
        "slowest": [
            {"name": name, "seconds": round(seconds, 6)}
            for seconds, name in slowest
        ],
    }


def render_progress_line(record: dict) -> str:
    """One-line human rendering of a progress record (the TTY line)."""
    done, total = record["done"], record["total"]
    parts = [
        f"{record['stage']}",
        f"{done}/{total}",
        f"({record['percent']:.0f}%)",
    ]
    if done < total:
        parts.append(f"eta {_fmt_eta(record['eta_seconds'])}")
    slowest = record.get("slowest") or []
    if slowest:
        worst = slowest[0]
        parts.append(f"slowest {worst['name']} ({worst['seconds']:.2f}s)")
    return " ".join(parts)


class ProgressChannel:
    """Where heartbeats go: an event sink and/or a terminal stream.

    Both default to ``None`` — the channel (and every tracker feeding
    it) is inert until ``ObsSession`` wires ``sink`` to an open event
    log and/or ``--progress`` wires ``stream`` to stderr.
    """

    def __init__(self):
        #: Optional callable receiving each progress record (the
        #: ``--log-json`` event log registers here).
        self.sink = None
        #: Optional text stream for the live line (``--progress``).
        self.stream = None
        #: Minimum seconds between heartbeats per tracker.
        self.interval = _default_interval()
        self._line_width = 0

    @property
    def active(self) -> bool:
        """Whether anything is listening (trackers no-op otherwise).

        A consumer on the telemetry bus — the ``--log-json`` sink, an
        SSE client of ``repro obs serve`` attaching mid-run, the ``obs
        top`` dashboard — counts as listening, so heartbeats start
        flowing the moment someone subscribes.
        """
        if self.sink is not None or self.stream is not None:
            return True
        return get_bus().active

    def deliver(self, record: dict) -> None:
        """Publish one progress record; fan out to sink and stream.

        The bus carries the record to every subscribed consumer
        (including the event log, registered there as a sink); the
        legacy ``sink`` attribute and the TTY ``stream`` stay for
        direct wiring.
        """
        get_bus().publish("progress", record)
        if self.sink is not None:
            self.sink(record)
        if self.stream is not None:
            self._write_line(render_progress_line(record))

    def _write_line(self, line: str) -> None:
        stream = self.stream
        if _is_tty(stream):
            pad = max(0, self._line_width - len(line))
            stream.write("\r" + line + " " * pad)
            self._line_width = len(line)
        else:
            stream.write(line + "\n")
        stream.flush()

    def close_line(self) -> None:
        """Terminate a carriage-return line so later output starts clean."""
        if self.stream is not None and _is_tty(self.stream):
            if self._line_width:
                self.stream.write("\n")
                self.stream.flush()
                self._line_width = 0


class ProgressTracker:
    """Per-stage heartbeat: counts completions, estimates, emits.

    The driver-side collection loop calls :meth:`update` once per
    completed unit (optionally with the unit's worker seconds, which
    feeds the slowest-so-far list) and :meth:`finish` when the stage
    ends.  Emission is throttled to the channel's ``interval``; the
    final state always emits.  With nothing listening every call is a
    counter bump and one attribute check.
    """

    def __init__(
        self,
        stage: str,
        total: int,
        *,
        channel: ProgressChannel | None = None,
        timings=None,
        clock=time.monotonic,
        parallelism: int | None = None,
    ):
        self.stage = stage
        self.total = total
        self.channel = channel if channel is not None else get_progress()
        self.timings = timings
        self.done = 0
        self.slowest: list[tuple[float, str]] = []
        #: Effective fan-out width for the ETA divisor.  ``None`` means
        #: fully submitted (the historical behaviour: divide by jobs);
        #: a backpressured map sets it to the in-flight window so the
        #: ETA never assumes more parallelism than the window allows.
        self.parallelism = parallelism
        self._clock = clock
        self._started = clock()
        self._last_emit: float | None = None
        self._emitted_done = -1

    @property
    def active(self) -> bool:
        return self.channel.active

    def set_parallelism(self, width: int | None) -> None:
        """Update the effective fan-out width (window auto-shrink hook)."""
        self.parallelism = width

    def eta_seconds(self) -> float:
        """Estimated wall seconds to finish the remaining units."""
        remaining = self.total - self.done
        if self.done <= 0 or remaining <= 0:
            return 0.0
        if self.timings is not None:
            eta = self.timings.eta_seconds(
                self.done, self.total, parallelism=self.parallelism
            )
            if eta is not None:
                return eta
        elapsed = self._clock() - self._started
        return elapsed / self.done * remaining

    def update(self, name: str = "", seconds: float | None = None) -> None:
        """Record one completed unit; emit a heartbeat when due."""
        self.done += 1
        if not self.active:
            return
        if seconds is not None:
            self.slowest.append((seconds, name))
            self.slowest.sort(reverse=True)
            del self.slowest[TOP_SLOWEST:]
        now = self._clock()
        if (
            self._last_emit is None
            or now - self._last_emit >= self.channel.interval
            or self.done >= self.total
        ):
            self._emit(now)

    def finish(self) -> None:
        """Emit the final heartbeat (if pending) and end the TTY line."""
        if not self.active:
            return
        self._emit(self._clock())
        self.channel.close_line()

    def _emit(self, now: float) -> None:
        if self.done == self._emitted_done:
            return
        self._emitted_done = self.done
        self._last_emit = now
        self.channel.deliver(
            progress_event(
                self.stage,
                self.done,
                self.total,
                self.eta_seconds(),
                self.slowest,
            )
        )


# ----------------------------------------------------------------------
# the process-global channel

_active: ProgressChannel | None = None


def get_progress() -> ProgressChannel:
    """The process's progress channel (created on first use)."""
    global _active
    if _active is None:
        _active = ProgressChannel()
    return _active


def reset_progress() -> ProgressChannel:
    """Replace the active channel with a fresh, unwired one."""
    global _active
    _active = ProgressChannel()
    return _active
