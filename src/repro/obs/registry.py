"""The append-only run-history registry under the artifact store.

Every ``repro study`` / ``repro report`` run against a directory store
appends one compact JSONL record to ``<store>/runs/history.jsonl``:
stage timings, cache and store hit rates, resource peaks, warning
count, environment, and the run's manifest digest.  The registry turns
the store from a pile of artifacts into a *trajectory* — ``repro obs
history`` tables it, ``repro obs timeline --stage mine`` plots a
cross-run trend with regression markers, and ``bench-check
--against-history N`` compares a candidate to the median of the last
``N`` records instead of one hand-kept BENCH file.

Records are deliberately shaped like ``BENCH_study.json`` payloads
(top-level ``stages`` / ``parse_cache`` / ``artifact_store`` /
``resources``), so :func:`repro.obs.regress.sample_from_dict`
normalises them without a special case.  The reader is tolerant:
malformed lines are skipped, never fatal — an append-only log must
survive a torn write.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from statistics import median

#: Format tag carried by every registry record.
REGISTRY_FORMAT = "repro-run-registry-v1"

#: Registry location relative to the artifact-store root.
REGISTRY_RELPATH = Path("runs") / "history.jsonl"


def manifest_digest(manifest: dict) -> str:
    """A stable content digest of one manifest document."""
    text = json.dumps(
        manifest, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(text.encode()).hexdigest()


class RunRegistry:
    """One store's run history: append records, read them back."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / REGISTRY_RELPATH

    def append(self, record: dict) -> dict:
        """Append one record (one line); creates the registry lazily."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record

    def records(self, limit: int | None = None) -> list[dict]:
        """All records in append order (last ``limit`` when given).

        Torn or foreign lines are skipped — the registry outlives any
        single writer and must never make history unreadable.
        """
        if not self.path.exists():
            return []
        out: list[dict] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "stages" in record:
                out.append(record)
        return out[-limit:] if limit else out

    def __len__(self) -> int:
        return len(self.records())


def registry_for_store(store=None) -> RunRegistry | None:
    """The active store's registry, or ``None`` for in-memory stores.

    Only a directory store has a place for history; a ``MemoryStore``
    run leaves no registry record (matching its artifacts, which also
    die with the process).
    """
    if store is None:
        from ..pipeline.store import get_store

        store = get_store()
    root = getattr(store, "root", None)
    return RunRegistry(root) if root else None


def build_run_record(
    *,
    command: str,
    study,
    seed: int | None = None,
    scale: int | None = None,
    jobs: int | None = None,
    dialect: str | None = None,
    manifest: dict | None = None,
    fingerprints: dict | None = None,
) -> dict:
    """One registry record for a finished study/report run.

    ``dialect`` is recorded only for non-default workloads, so
    canonical records — and every record written before workloads
    existed — are shape-identical; readers fall back with
    ``record.get("dialect")``.
    """
    from .manifest import runtime_environment

    timings = study.timings.as_dict()
    recorded_at = round(time.time(), 3)
    digest = manifest_digest(manifest) if manifest else None
    run_id = hashlib.sha256(
        f"{recorded_at}:{command}:{digest}".encode()
    ).hexdigest()[:12]
    record: dict = {
        "format": REGISTRY_FORMAT,
        "run_id": run_id,
        "recorded_at": recorded_at,
        "command": command,
        "seed": seed,
        "scale": scale,
        "jobs": jobs if jobs is not None else timings.get("jobs"),
        "projects": len(study.projects),
        "skipped": len(study.skipped),
        "manifest_digest": digest,
        "stages": timings.get("stages") or {},
        "parse_cache": timings.get("parse_cache"),
        "warning_count": len(study.warnings),
        "environment": (
            manifest.get("environment")
            if manifest and manifest.get("environment")
            else runtime_environment()
        ),
    }
    if dialect is not None:
        record["dialect"] = dialect
    for block in ("artifact_store", "resources", "streaming"):
        if timings.get(block):
            record[block] = timings[block]
    if fingerprints:
        record["fingerprints"] = dict(fingerprints)
    return record


def record_from_payload(payload: dict, *, source: str = "import") -> dict:
    """Seed one registry record from a manifest or BENCH payload.

    The CI trend seed: ``repro obs history --import BENCH_study.json``
    turns the committed baseline into record zero so
    ``--against-history`` has something to chew on from the first run.
    """
    timings = (
        payload.get("timings")
        if isinstance(payload.get("timings"), dict)
        else payload
    )
    if not isinstance(timings.get("stages"), dict):
        raise ValueError(
            f"{source}: neither a run manifest nor a BENCH payload "
            "(no stages block)"
        )
    recorded_at = round(time.time(), 3)
    record: dict = {
        "format": REGISTRY_FORMAT,
        "run_id": hashlib.sha256(
            f"{recorded_at}:{source}".encode()
        ).hexdigest()[:12],
        "recorded_at": recorded_at,
        "command": f"import:{source}",
        "seed": payload.get("seed"),
        "scale": payload.get("scale"),
        "jobs": payload.get("jobs") or timings.get("jobs"),
        "projects": payload.get("projects"),
        "skipped": (
            len(payload["skipped"])
            if isinstance(payload.get("skipped"), list)
            else payload.get("skipped")
        ),
        "manifest_digest": None,
        "stages": dict(timings["stages"]),
        "parse_cache": timings.get("parse_cache"),
        "warning_count": payload.get("warning_count"),
        "environment": payload.get("environment"),
    }
    if payload.get("dialect"):
        record["dialect"] = payload["dialect"]
    for block in ("artifact_store", "resources", "streaming"):
        if timings.get(block):
            record[block] = timings[block]
    return record


def timeline_values(
    records: list[dict], stage: str
) -> tuple[list, str]:
    """One stage's value per record (``None`` where absent), plus unit.

    ``stage`` names a stage-seconds series from the ``stages`` block;
    the special name ``rss`` plots the peak-RSS trend in MiB instead.
    """
    if stage == "rss":
        series = [
            (record.get("resources") or {}).get("peak_rss_bytes")
            for record in records
        ]
        return [v / 2**20 if v else None for v in series], "MiB"
    return [
        (record.get("stages") or {}).get(stage) for record in records
    ], "s"


def render_timeline(
    records: list[dict], stage: str = "total", *, width: int = 32
) -> str:
    """Render one stage's cross-run trend as text bars.

    Degenerate histories render rather than crash: a single record
    plots one bar with no regression marker, an all-equal series plots
    full-width bars, and an all-zero series pins the bar scale to 1 so
    the bar arithmetic never divides by zero.  Raises ``ValueError``
    when the registry is empty or no record carries ``stage`` — the
    callers' error paths, never a partial plot.
    """
    if not records:
        raise ValueError("run registry is empty — nothing to plot")
    values, unit = timeline_values(records, stage)
    if not any(v is not None for v in values):
        raise ValueError(
            f"no record carries {stage!r} "
            "(see obs history --json for the available stages)"
        )
    peak = max(v for v in values if v is not None) or 1.0
    lines = [
        f"timeline: {stage} over {len(records)} run(s) "
        f"(bar = {peak:.2f} {unit}; ! marks a >25% jump)"
    ]
    previous = None
    for record, value in zip(records, values):
        when = time.strftime(
            "%m-%d %H:%M",
            time.localtime(record.get("recorded_at") or 0),
        )
        run_id = str(record.get("run_id", "?"))[:13]
        if value is None:
            lines.append(f"  {run_id:<13} {when:<12} {'-':>10}")
            continue
        bar = "#" * max(1, round(value / peak * width))
        marker = ""
        if previous is not None and previous > 0:
            if (value - previous) / previous > 0.25:
                marker = "  ! regression"
        lines.append(
            f"  {run_id:<13} {when:<12} {value:>9.2f}{unit} "
            f"{bar}{marker}"
        )
        previous = value
    return "\n".join(lines)


def _median_merge(values: list):
    """Element-wise median over parallel JSON fragments.

    Dicts merge recursively over the union of keys (each key's median
    is taken over the records that carry it), numbers take the median,
    anything else takes the latest value — good enough for the
    identity-ish fields (environment, format tags) a median cannot
    average.
    """
    present = [v for v in values if v is not None]
    if not present:
        return None
    if all(isinstance(v, dict) for v in present):
        keys: list = []
        for fragment in present:
            for key in fragment:
                if key not in keys:
                    keys.append(key)
        return {
            key: _median_merge(
                [fragment.get(key) for fragment in present]
            )
            for key in keys
        }
    numeric = [
        v for v in present
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    ]
    if numeric:
        value = median(numeric)
        return round(value, 6) if isinstance(value, float) else value
    return present[-1]


def history_baseline(records: list[dict]) -> dict:
    """The median-of-history baseline payload for ``bench-check``.

    Folds the given records (typically the last *N*) element-wise by
    median into one BENCH-shaped payload; ``sample_from_dict``
    normalises it like any other baseline.  Raises on an empty history
    — a missing registry must fail loudly, not pass vacuously.
    """
    if not records:
        raise ValueError("run registry is empty — nothing to compare against")
    merged = _median_merge(list(records))
    merged["format"] = REGISTRY_FORMAT
    merged["command"] = f"history-median[{len(records)}]"
    # medians of identity fields are meaningless — pin the latest;
    # `dialect` rides along via .get() so pre-dialect records (which
    # simply lack the key) never fail the merge
    latest = records[-1]
    for key in (
        "run_id", "recorded_at", "environment", "manifest_digest",
        "dialect",
    ):
        merged[key] = latest.get(key)
    return merged
