"""The ``make serve-smoke`` entry point: the live-telemetry contract.

``python -m repro.obs.serve_smoke`` runs the scaled study twice through
the real CLI — once unserved as the baseline, once with ``--serve 0``
(ephemeral port) and ``--serve-linger`` so the endpoints stay probeable
after the run — and checks the observability server end to end:

1. ``--serve`` announces the bound port on stderr before the study
   starts;
2. ``/healthz`` answers mid-run, and an SSE client connected from the
   start receives the first N envelopes with contiguous ids from 1;
3. after the run: ``/metrics`` passes the Prometheus exposition-grammar
   validator and carries the bus counters, ``/status`` shows every
   reduce stage warm (except the never-rendered report) with no version
   drift, and ``/runs`` lists the run the registry just recorded;
4. an SSE reconnect replaying from the ring (``?limit=N`` and
   ``Last-Event-ID``) yields the same ordered id sequence the live
   client saw;
5. serving changed nothing: the measures CSV is byte-identical to the
   unserved baseline, the artifact-store keys match, the manifest
   matches modulo its ``server`` block, and no bus-only kinds leaked
   into the JSONL event log;
6. shutdown is clean — the CLI thread exits 0 and the port refuses new
   connections.

Exit status 0 on success, 1 with a diagnosis per violation.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import socket
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

SMOKE_SEED = 77
SMOKE_SCALE = 16
SMOKE_JOBS = 2
#: SSE envelopes the live client must receive before the run ends.
SSE_FIRST_N = 8

#: Wall-clock / scheduling fields stripped before comparison.
VOLATILE_EVENT_FIELDS = (
    "ts", "seconds", "eta_seconds", "slowest", "peak_rss_bytes",
    "cpu_seconds",
)


def _reset_globals() -> None:
    from ..pipeline.store import configure_store
    from .bus import reset_bus
    from .events import reset_recorder
    from .metrics import reset_metrics

    configure_store(None)
    reset_bus()
    reset_recorder()
    reset_metrics()


def _study_argv(out: Path, *, serve: bool) -> list[str]:
    argv = [
        "study", "--figure", "headline",
        "--seed", str(SMOKE_SEED), "--scale", str(SMOKE_SCALE),
        "--jobs", str(SMOKE_JOBS),
        "--store-dir", str(out / "store"),
        "--csv", str(out / "measures.csv"),
        "--log-json", str(out / "events.jsonl"),
        "--manifest", str(out / "manifest.json"),
    ]
    if serve:
        argv += ["--serve", "0", "--serve-linger"]
    return argv


def _normalized_events(path: Path) -> list[str]:
    records = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        for field in VOLATILE_EVENT_FIELDS:
            record.pop(field, None)
        (record.get("attributes") or {}).pop("worker", None)
        records.append(json.dumps(record, sort_keys=True))
    return sorted(records)  # parallel completion order is not stable


def _normalized_manifest(path: Path) -> dict:
    manifest = json.loads(path.read_text())
    for field in ("created_at", "timings", "outputs", "server"):
        manifest.pop(field, None)
    for block in ("cache", "store"):
        manifest[block].pop("dir", None)
        manifest[block].pop("env", None)
    metrics = manifest.get("metrics") or {}
    metrics.pop("histograms", None)
    metrics.pop("gauges", None)
    _fold_parse_cache_split(metrics.get("counters") or {})
    return manifest


def _fold_parse_cache_split(counters: dict) -> None:
    """Replace the parse-cache hit/miss split with its total.

    The split depends on which worker mined which project (fragment
    reuse is per-worker); only the totals are scheduling-invariant.
    """
    for prefix in ("", "statement_", "unit_"):
        hits = counters.pop(f"parse_cache.{prefix}hits", 0)
        misses = counters.pop(f"parse_cache.{prefix}misses", 0)
        counters[f"parse_cache.{prefix}lookups"] = hits + misses


def _store_keys(out: Path) -> list[str]:
    return sorted(p.name for p in (out / "store").glob("objects/*/*"))


def _get(url: str, timeout: float = 30, headers: dict | None = None):
    request = urllib.request.Request(url)
    for name, value in (headers or {}).items():
        request.add_header(name, value)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read().decode()


def main() -> int:  # noqa: C901 — one linear smoke script
    from repro.cli import main as cli_main

    from . import server as server_mod
    from .export import validate_prometheus_text
    from .top import sse_events

    failures: list[str] = []
    os.environ["REPRO_PROGRESS_INTERVAL"] = "0"  # deterministic beats
    try:
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
            tmp_path = Path(tmp)
            unserved = tmp_path / "unserved"
            served = tmp_path / "served"
            unserved.mkdir()
            served.mkdir()

            # baseline: the same study, no server attached
            _reset_globals()
            if cli_main(_study_argv(unserved, serve=False)) != 0:
                print(
                    "serve-smoke FAIL: unserved baseline study failed",
                    file=sys.stderr,
                )
                return 1
            _reset_globals()

            # served run: --serve 0 --serve-linger on a worker thread;
            # capture the server handle off .start() so the probes (and
            # the final stop) do not have to scrape the ephemeral port
            captured: dict = {}
            original_start = server_mod.ObservabilityServer.start

            def capturing_start(self):
                # publish only after the bind: a probe that races the
                # capture must find a listening socket
                result = original_start(self)
                captured["server"] = self
                return result

            server_mod.ObservabilityServer.start = capturing_start
            announce = io.StringIO()
            rc: dict = {}

            def run_served():
                rc["code"] = cli_main(_study_argv(served, serve=True))

            thread = threading.Thread(target=run_served, daemon=True)
            try:
                with contextlib.redirect_stderr(announce):
                    thread.start()
                    deadline = time.monotonic() + 30
                    while (
                        "server" not in captured
                        and time.monotonic() < deadline
                        and thread.is_alive()
                    ):
                        time.sleep(0.01)
                    if "server" not in captured:
                        print(
                            "serve-smoke FAIL: --serve 0 never started "
                            "a server",
                            file=sys.stderr,
                        )
                        return 1
                    srv = captured["server"]
                    url = srv.url

                    # mid-run: liveness + the live SSE stream
                    status, body = _get(url + "/healthz")
                    if status != 200 or json.loads(body)["status"] != "ok":
                        failures.append("/healthz not ok mid-run")
                    _, live_body = _get(f"{url}/events?limit={SSE_FIRST_N}")
                    live = list(
                        sse_events(live_body.splitlines(keepends=True))
                    )
                    live_ids = [e["id"] for e in live]
                    if live_ids != list(range(1, SSE_FIRST_N + 1)):
                        failures.append(
                            f"live SSE ids {live_ids}, expected "
                            f"1..{SSE_FIRST_N} contiguous"
                        )

                    # wait for the run to finish (the CLI thread parks
                    # in --serve-linger, so the endpoints stay up)
                    deadline = time.monotonic() + 300
                    while (
                        "still serving" not in announce.getvalue()
                        and time.monotonic() < deadline
                        and thread.is_alive()
                    ):
                        time.sleep(0.05)
                    if "still serving" not in announce.getvalue():
                        failures.append(
                            "served study never reached --serve-linger"
                        )

                    # post-run probes against the still-lingering server
                    _, page = _get(url + "/metrics")
                    problems = validate_prometheus_text(page)
                    if problems:
                        failures.append(
                            "/metrics fails the exposition grammar: "
                            f"{problems[0]}"
                        )
                    for required in (
                        "repro_bus_published_total",
                        "repro_bus_dropped_total",
                        "repro_server_requests_total",
                    ):
                        if required not in page:
                            failures.append(
                                f"/metrics is missing {required}"
                            )

                    _, body = _get(url + "/status")
                    payload = json.loads(body)
                    states = {
                        row["stage"]: row["state"]
                        for row in payload["stages"]
                    }
                    states.pop("report", None)  # never rendered by study
                    stale = {
                        stage: state for stage, state in states.items()
                        if state != "warm"
                    }
                    if stale:
                        failures.append(
                            f"/status not warm after the run: {stale}"
                        )
                    if payload.get("drift"):
                        failures.append(
                            f"/status reports drift: {payload['drift']}"
                        )

                    _, body = _get(url + "/runs")
                    if json.loads(body)["count"] < 1:
                        failures.append(
                            "/runs is empty after a recorded study run"
                        )

                    # reconnect: the ring replays the same ordered ids
                    _, replay_body = _get(
                        f"{url}/events?limit={SSE_FIRST_N}"
                    )
                    replay_ids = [
                        e["id"] for e in
                        sse_events(replay_body.splitlines(keepends=True))
                    ]
                    if replay_ids != live_ids:
                        failures.append(
                            f"ring replay ids {replay_ids} differ from "
                            f"the live stream {live_ids}"
                        )
                    _, resumed_body = _get(
                        f"{url}/events?limit={SSE_FIRST_N - 3}",
                        headers={"Last-Event-ID": "3"},
                    )
                    resumed_ids = [
                        e["id"] for e in
                        sse_events(resumed_body.splitlines(keepends=True))
                    ]
                    if resumed_ids != live_ids[3:]:
                        failures.append(
                            f"Last-Event-ID resume ids {resumed_ids}, "
                            f"expected {live_ids[3:]}"
                        )

                    port = srv.port
                    srv.stop()  # releases the linger wait()
                thread.join(timeout=60)
                if thread.is_alive():
                    failures.append("CLI thread never exited after stop")
                elif rc.get("code") != 0:
                    failures.append(
                        f"served study exited {rc.get('code')}"
                    )
                try:
                    socket.create_connection(
                        ("127.0.0.1", port), timeout=0.5
                    ).close()
                    failures.append(
                        "port still accepts connections after shutdown"
                    )
                except OSError:
                    pass  # clean shutdown: connection refused
            finally:
                server_mod.ObservabilityServer.start = original_start
                if "server" in captured:
                    captured["server"].stop()

            if "observability server listening on http://127.0.0.1:" \
                    not in announce.getvalue():
                failures.append(
                    "--serve did not announce its bound port on stderr"
                )

            # serving is observation only: byte-identical results
            if (
                (served / "measures.csv").read_bytes()
                != (unserved / "measures.csv").read_bytes()
            ):
                failures.append(
                    "served measures CSV differs from the unserved run"
                )
            if _store_keys(served) != _store_keys(unserved):
                failures.append(
                    "served artifact-store keys differ from unserved"
                )
            served_events = _normalized_events(served / "events.jsonl")
            if served_events != _normalized_events(
                unserved / "events.jsonl"
            ):
                failures.append(
                    "served event log differs from unserved "
                    "(modulo wall-clock fields)"
                )
            if any(
                json.loads(record).get("event") in ("artifact", "metrics")
                for record in served_events
            ):
                failures.append(
                    "bus-only kinds leaked into the JSONL event log"
                )
            served_manifest = json.loads(
                (served / "manifest.json").read_text()
            )
            if not str(
                (served_manifest.get("server") or {}).get("url", "")
            ).startswith("http://127.0.0.1:"):
                failures.append(
                    "served manifest is missing its server block"
                )
            if _normalized_manifest(
                served / "manifest.json"
            ) != _normalized_manifest(unserved / "manifest.json"):
                failures.append(
                    "manifests differ beyond the server block"
                )
    finally:
        os.environ.pop("REPRO_PROGRESS_INTERVAL", None)
        _reset_globals()

    if failures:
        for failure in failures:
            print(f"serve-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"serve-smoke ok: /healthz /metrics /status /runs live, "
        f"first {SSE_FIRST_N} SSE envelopes contiguous + ring replay "
        "matches, served run byte-identical to unserved, shutdown clean"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
