"""The perf-regression watchdog: baseline vs candidate comparison.

``repro bench-check BASELINE CANDIDATE`` compares two performance
records — run manifests (``--manifest``) or ``BENCH_study.json``
payloads, freely mixed — and produces a machine-readable verdict.
Checks cover:

* per-stage wall seconds (relative threshold, default +25 %, override
  globally with ``--max-regression`` or per stage with
  ``--threshold STAGE=FRACTION``); stages below the noise floor
  (``min_seconds``) are skipped rather than flagged; ``--stage NAME``
  focuses the seconds comparison on one stage (the mine
  microbenchmark's ``--stage mine``);
* parse-cache hit rate (absolute drop threshold);
* statement-level parse-unit reuse rate (same absolute-drop threshold)
  whenever both records carry the incremental engine's ``statements``
  block with nonzero unit lookups — a reuse collapse is a mine-time
  regression even before the seconds show it;
* artifact-store hit rate (same absolute-drop threshold) whenever both
  records carry store stats — a warm rerun that starts recomputing
  stages it used to replay is a regression even when each recompute is
  individually fast;
* warning counts (any increase fails unless allowed);
* comparability guards: corpus size must match, and when both records
  carry a host ``environment`` (hostname / platform / cpu count —
  recorded by the run manifest), a mismatch refuses the comparison
  with a clear apples-to-oranges warning unless explicitly allowed.
  A ``jobs`` mismatch only warns: stage rows are summed worker
  seconds, so totals remain comparable but wall clock does not.

The comparison is pure data-in/data-out (no clocks, no host access),
so the watchdog itself can run anywhere — including CI in report-only
mode, where the verdict is printed and persisted but never fails the
build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .manifest import MANIFEST_FORMAT

#: Format tag of the verdict document written by ``bench-check --json``.
VERDICT_FORMAT = "repro-bench-check-v1"

#: Default relative stage-seconds regression threshold (+25 %).
DEFAULT_MAX_REGRESSION = 0.25

#: Stages where both sides sit below this many seconds are noise.
DEFAULT_MIN_SECONDS = 0.05

#: Default tolerated absolute parse-cache hit-rate drop.
DEFAULT_MAX_HIT_RATE_DROP = 0.10

#: Default relative peak-RSS growth threshold (+30 %).  Looser than the
#: seconds threshold: RSS folds allocator and GC noise on top of real
#: footprint, so a tight bound would flag phantom drift.
DEFAULT_MAX_RSS_REGRESSION = 0.30

#: Environment keys that must agree for an apples-to-apples comparison.
ENVIRONMENT_KEYS = ("hostname", "platform", "cpu_count")


@dataclass
class PerfSample:
    """One side of a comparison, normalised from either source format."""

    source: str
    kind: str  # "manifest" | "bench"
    projects: int | None
    jobs: int | None
    stages: dict[str, float]
    cache: dict | None
    warning_count: int | None
    environment: dict | None
    store: dict | None = None
    resources: dict | None = None
    #: Streaming-execution counters (window / spill / watchdog blocks);
    #: ``None`` on records written before the streaming engine landed —
    #: every consumer must None-skip, like ``store`` and ``resources``.
    streaming: dict | None = None

    @property
    def peak_rss_bytes(self) -> int | None:
        """The run's headline peak RSS, when telemetry recorded one."""
        if not self.resources:
            return None
        peak = self.resources.get("peak_rss_bytes")
        return int(peak) if peak else None

    @property
    def rss_per_project(self) -> float | None:
        """Peak RSS bytes per corpus project — the bounded-memory yard.

        The scale-out guard: a streaming run's footprint should stay
        roughly flat as the corpus grows, so *per-project* RSS must
        fall (or at least not balloon) with N.  ``None`` whenever
        either ingredient is missing, so pre-telemetry records and
        corpus-less bench payloads skip instead of failing.
        """
        peak = self.peak_rss_bytes
        if peak is None or not self.projects:
            return None
        return peak / self.projects

    @property
    def hit_rate(self) -> float | None:
        if not self.cache:
            return None
        rate = self.cache.get("hit_rate")
        return float(rate) if rate is not None else None

    @property
    def store_hit_rate(self) -> float | None:
        """Artifact-store hit rate, when the run actually looked up keys.

        A run that recorded *zero* lookups (hits + recomputes == 0 —
        an empty corpus, or a path that never touched the store) has no
        meaningful rate: its recorded 0.0 would read as "everything
        recomputed" and flag a phantom regression against any warm
        baseline, so it reports ``None`` and the comparison skips.
        """
        if not self.store:
            return None
        rate = self.store.get("hit_rate")
        if rate is None:
            return None
        lookups = (
            self.store.get("hits", 0) or 0
        ) + (self.store.get("recomputes", 0) or 0)
        if not lookups:
            return None
        return float(rate)

    @property
    def statement_reuse_rate(self) -> float | None:
        """Statement-level parse-unit reuse, when the run recorded any.

        Mirrors :attr:`store_hit_rate`: records predating the
        incremental parse engine carry no ``statements`` block, and a
        run with zero unit lookups (fully warm — every version answered
        at whole-file granularity) has no meaningful rate.  Both report
        ``None`` so the comparison skips instead of flagging a phantom
        reuse collapse.
        """
        if not self.cache:
            return None
        statements = self.cache.get("statements")
        if not statements:
            return None
        rate = statements.get("reuse_rate")
        if rate is None:
            return None
        lookups = (
            statements.get("unit_hits", 0) or 0
        ) + (statements.get("unit_misses", 0) or 0)
        if not lookups:
            return None
        return float(rate)


def sample_from_dict(data: dict, *, source: str = "<dict>") -> PerfSample:
    """Normalise a decoded manifest or BENCH payload into a sample."""
    if not isinstance(data, dict):
        raise ValueError(f"{source}: not a JSON object")
    if data.get("format") == MANIFEST_FORMAT or "timings" in data:
        timings = data.get("timings") or {}
        return PerfSample(
            source=source,
            kind="manifest",
            projects=data.get("projects"),
            jobs=data.get("jobs") or timings.get("jobs"),
            stages=dict(timings.get("stages") or {}),
            cache=timings.get("parse_cache"),
            warning_count=data.get("warning_count"),
            environment=data.get("environment"),
            store=timings.get("artifact_store"),
            resources=timings.get("resources"),
            streaming=timings.get("streaming") or data.get("streaming"),
        )
    if "stages" in data:
        return PerfSample(
            source=source,
            kind="bench",
            projects=data.get("projects"),
            jobs=data.get("jobs"),
            stages=dict(data.get("stages") or {}),
            cache=data.get("parse_cache"),
            warning_count=data.get("warning_count"),
            environment=data.get("environment"),
            store=data.get("artifact_store"),
            resources=data.get("resources"),
            streaming=data.get("streaming"),
        )
    raise ValueError(
        f"{source}: neither a run manifest nor a BENCH_study.json payload"
    )


def load_sample(path: str | Path) -> PerfSample:
    """Load and normalise one comparison side from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    return sample_from_dict(data, source=str(path))


@dataclass
class Check:
    """One comparison line of the verdict."""

    name: str
    status: str  # "pass" | "fail" | "warn" | "skip"
    baseline: float | None = None
    candidate: float | None = None
    ratio: float | None = None  # relative change, candidate vs baseline
    threshold: float | None = None
    message: str = ""

    def as_dict(self) -> dict:
        out: dict = {"name": self.name, "status": self.status}
        for key in ("baseline", "candidate", "ratio", "threshold"):
            value = getattr(self, key)
            if value is not None:
                out[key] = round(value, 6)
        if self.message:
            out["message"] = self.message
        return out


@dataclass
class RegressionReport:
    """The full verdict: every check plus pass/fail roll-up."""

    baseline: str
    candidate: str
    checks: list[Check] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return any(check.status == "fail" for check in self.checks)

    @property
    def verdict(self) -> str:
        return "fail" if self.failed else "pass"

    def as_dict(self) -> dict:
        """Machine-readable verdict (the ``--json`` payload)."""
        return {
            "format": VERDICT_FORMAT,
            "verdict": self.verdict,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "checks": [check.as_dict() for check in self.checks],
        }

    def render(self) -> str:
        """Human-readable verdict table."""
        lines = [
            f"bench-check: baseline {self.baseline} "
            f"vs candidate {self.candidate}"
        ]
        for check in self.checks:
            detail = check.message
            if check.ratio is not None and not detail:
                limit = (
                    f" (limit {check.threshold:+.0%})"
                    if check.threshold is not None
                    else ""
                )
                detail = (
                    f"{check.baseline:.3f}s -> {check.candidate:.3f}s "
                    f"{check.ratio:+.1%}{limit}"
                )
            lines.append(
                f"  {check.status.upper():<4} {check.name:<24} {detail}"
            )
        lines.append(f"verdict: {self.verdict.upper()}")
        return "\n".join(lines)


def compare_samples(
    baseline: PerfSample,
    candidate: PerfSample,
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
    stage_thresholds: dict[str, float] | None = None,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    max_hit_rate_drop: float = DEFAULT_MAX_HIT_RATE_DROP,
    max_rss_regression: float = DEFAULT_MAX_RSS_REGRESSION,
    allow_env_mismatch: bool = False,
    allow_warnings: bool = False,
    stage: str | None = None,
) -> RegressionReport:
    """Compare two perf samples and return the full verdict.

    ``stage`` focuses the seconds comparison on one stage (``--stage
    mine`` for the mine microbenchmark); the comparability guards and
    the cache / statement-reuse checks still run, the other stages'
    seconds are ignored.
    """
    stage_thresholds = stage_thresholds or {}
    report = RegressionReport(
        baseline=baseline.source, candidate=candidate.source
    )
    checks = report.checks

    # -- comparability guards ------------------------------------------
    checks.append(_environment_check(baseline, candidate, allow_env_mismatch))
    if (
        baseline.projects is not None
        and candidate.projects is not None
        and baseline.projects != candidate.projects
    ):
        checks.append(Check(
            name="projects",
            status="fail",
            baseline=float(baseline.projects),
            candidate=float(candidate.projects),
            message=(
                f"corpus size differs ({baseline.projects} vs "
                f"{candidate.projects}) — stage seconds are not comparable"
            ),
        ))
    if (
        baseline.jobs is not None
        and candidate.jobs is not None
        and baseline.jobs != candidate.jobs
    ):
        checks.append(Check(
            name="jobs",
            status="warn",
            baseline=float(baseline.jobs),
            candidate=float(candidate.jobs),
            message=(
                f"jobs differ ({baseline.jobs} vs {candidate.jobs}); "
                "stage rows are summed worker seconds, wall clock is not "
                "comparable"
            ),
        ))

    # -- per-stage wall seconds ----------------------------------------
    if stage is not None:
        focus = [stage]
        if stage not in baseline.stages and stage not in candidate.stages:
            checks.append(Check(
                name=f"stage:{stage}",
                status="fail",
                message="focused stage missing from both sides",
            ))
            focus = []
    else:
        focus = list(baseline.stages)
    for name in focus:
        if name not in baseline.stages:
            checks.append(Check(
                name=f"stage:{name}",
                status="skip",
                message="stage missing from baseline",
            ))
            continue
        if name not in candidate.stages:
            checks.append(Check(
                name=f"stage:{name}",
                status="skip",
                message="stage missing from candidate",
            ))
            continue
        base = float(baseline.stages[name])
        cand = float(candidate.stages[name])
        if base < min_seconds and cand < min_seconds:
            checks.append(Check(
                name=f"stage:{name}",
                status="skip",
                baseline=base,
                candidate=cand,
                message=f"below the {min_seconds}s noise floor",
            ))
            continue
        threshold = stage_thresholds.get(name, max_regression)
        ratio = (cand - base) / max(base, min_seconds)
        checks.append(Check(
            name=f"stage:{name}",
            status="fail" if ratio > threshold else "pass",
            baseline=base,
            candidate=cand,
            ratio=ratio,
            threshold=threshold,
        ))
    if stage is None:
        for name in candidate.stages:
            if name not in baseline.stages:
                checks.append(Check(
                    name=f"stage:{name}",
                    status="skip",
                    message="stage missing from baseline",
                ))

    # -- parse-cache hit rate ------------------------------------------
    base_rate, cand_rate = baseline.hit_rate, candidate.hit_rate
    if base_rate is not None and cand_rate is not None:
        drop = base_rate - cand_rate
        checks.append(Check(
            name="cache_hit_rate",
            status="fail" if drop > max_hit_rate_drop else "pass",
            baseline=base_rate,
            candidate=cand_rate,
            ratio=-drop,
            threshold=max_hit_rate_drop,
            message=(
                f"hit rate {base_rate:.1%} -> {cand_rate:.1%} "
                f"(tolerated drop {max_hit_rate_drop:.0%})"
            ),
        ))
    else:
        checks.append(Check(
            name="cache_hit_rate",
            status="skip",
            message="parse-cache stats missing from one side",
        ))

    # -- artifact-store hit rate ---------------------------------------
    # a warm-run regression (stages recomputing that used to replay from
    # the store) shows up as a hit-rate drop between comparable runs
    base_store, cand_store = (
        baseline.store_hit_rate, candidate.store_hit_rate
    )
    if base_store is not None and cand_store is not None:
        drop = base_store - cand_store
        checks.append(Check(
            name="store_hit_rate",
            status="fail" if drop > max_hit_rate_drop else "pass",
            baseline=base_store,
            candidate=cand_store,
            ratio=-drop,
            threshold=max_hit_rate_drop,
            message=(
                f"artifact-store hit rate {base_store:.1%} -> "
                f"{cand_store:.1%} "
                f"(tolerated drop {max_hit_rate_drop:.0%})"
            ),
        ))
    elif base_store is not None or cand_store is not None:
        checks.append(Check(
            name="store_hit_rate",
            status="skip",
            message=(
                "artifact-store stats missing from one side "
                "(or one side recorded zero lookups)"
            ),
        ))

    # -- statement-level parse reuse -----------------------------------
    # a reuse-rate collapse means the incremental engine stopped sharing
    # parse work between versions — cold mine time follows it down
    base_reuse, cand_reuse = (
        baseline.statement_reuse_rate, candidate.statement_reuse_rate
    )
    if base_reuse is not None and cand_reuse is not None:
        drop = base_reuse - cand_reuse
        checks.append(Check(
            name="statement_reuse",
            status="fail" if drop > max_hit_rate_drop else "pass",
            baseline=base_reuse,
            candidate=cand_reuse,
            ratio=-drop,
            threshold=max_hit_rate_drop,
            message=(
                f"statement parse-unit reuse {base_reuse:.1%} -> "
                f"{cand_reuse:.1%} "
                f"(tolerated drop {max_hit_rate_drop:.0%})"
            ),
        ))
    elif base_reuse is not None or cand_reuse is not None:
        checks.append(Check(
            name="statement_reuse",
            status="skip",
            message=(
                "statement-reuse stats missing from one side "
                "(pre-incremental record, or zero unit lookups)"
            ),
        ))

    # -- peak RSS drift -------------------------------------------------
    # the memory-budget guard (ROADMAP item 2): a run whose footprint
    # grows past the threshold fails even when its seconds look fine
    base_rss, cand_rss = baseline.peak_rss_bytes, candidate.peak_rss_bytes
    if base_rss and cand_rss:
        ratio = (cand_rss - base_rss) / base_rss
        checks.append(Check(
            name="peak_rss",
            status="fail" if ratio > max_rss_regression else "pass",
            baseline=float(base_rss),
            candidate=float(cand_rss),
            ratio=ratio,
            threshold=max_rss_regression,
            message=(
                f"peak RSS {base_rss / 2**20:.0f} MiB -> "
                f"{cand_rss / 2**20:.0f} MiB {ratio:+.1%} "
                f"(limit +{max_rss_regression:.0%})"
            ),
        ))
    elif base_rss or cand_rss:
        checks.append(Check(
            name="peak_rss",
            status="skip",
            message=(
                "resource telemetry missing from one side "
                "(pre-telemetry record)"
            ),
        ))

    # -- peak RSS per project -------------------------------------------
    # the streaming-scale guard: with equal corpora this mirrors
    # peak_rss, but across BENCH_scale.json records it catches the
    # O(corpus) driver-footprint regression the absolute check cannot
    # see (a 10k-project record has no same-size baseline to diff)
    base_ppp, cand_ppp = (
        baseline.rss_per_project, candidate.rss_per_project
    )
    if base_ppp is not None and cand_ppp is not None:
        ratio = (cand_ppp - base_ppp) / base_ppp
        checks.append(Check(
            name="rss_per_project",
            status="fail" if ratio > max_rss_regression else "pass",
            baseline=base_ppp,
            candidate=cand_ppp,
            ratio=ratio,
            threshold=max_rss_regression,
            message=(
                f"peak RSS/project {base_ppp / 2**10:.0f} KiB -> "
                f"{cand_ppp / 2**10:.0f} KiB {ratio:+.1%} "
                f"(limit +{max_rss_regression:.0%})"
            ),
        ))
    elif base_ppp is not None or cand_ppp is not None:
        checks.append(Check(
            name="rss_per_project",
            status="skip",
            message=(
                "RSS-per-project undefined on one side (no resource "
                "telemetry or no corpus size recorded) — skipping, "
                "pre-streaming records stay comparable"
            ),
        ))

    # -- warning counts -------------------------------------------------
    if (
        baseline.warning_count is not None
        and candidate.warning_count is not None
    ):
        increase = candidate.warning_count - baseline.warning_count
        grew = increase > 0 and not allow_warnings
        checks.append(Check(
            name="warnings",
            status="fail" if grew else "pass",
            baseline=float(baseline.warning_count),
            candidate=float(candidate.warning_count),
            message=(
                f"warning count {baseline.warning_count} -> "
                f"{candidate.warning_count}"
            ),
        ))
    else:
        checks.append(Check(
            name="warnings",
            status="skip",
            message="warning counts missing from one side",
        ))

    return report


def _environment_check(
    baseline: PerfSample, candidate: PerfSample, allow: bool
) -> Check:
    if not baseline.environment or not candidate.environment:
        return Check(
            name="environment",
            status="skip",
            message=(
                "host environment not recorded on both sides "
                "(older manifest or BENCH payload); cross-machine drift "
                "cannot be ruled out"
            ),
        )
    mismatched = [
        key
        for key in ENVIRONMENT_KEYS
        if baseline.environment.get(key) != candidate.environment.get(key)
    ]
    if not mismatched:
        return Check(name="environment", status="pass")
    detail = ", ".join(
        f"{key}: {baseline.environment.get(key)!r} vs "
        f"{candidate.environment.get(key)!r}"
        for key in mismatched
    )
    return Check(
        name="environment",
        status="warn" if allow else "fail",
        message=(
            "apples-to-oranges baseline: host environment differs "
            f"({detail})"
            + ("" if allow else " — refusing comparison; rerun with "
               "--allow-env-mismatch to override")
        ),
    )
