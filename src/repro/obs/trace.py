"""Hierarchical span tracing for the study pipeline.

A :class:`Tracer` records a tree of :class:`Span`\\ s — one per pipeline
stage, one per project, one per sub-stage — each carrying its start
time, duration, free-form attributes and ok/error status.  The tracer is
off by default and every ``span()`` call then returns a shared no-op
object, so instrumented hot paths pay a single attribute check.

Two span flavours cover the driver and the worker side of the fan-out:

* ``tracer.span(name, **attrs)`` opens a span attached to the enclosing
  span (or as a new root) — the driver's stage spans;
* ``tracer.detached(name, **attrs)`` opens a span with *no* parent.
  Worker functions wrap their per-project work in a detached span,
  serialise it with :meth:`Span.to_dict` and ship it back with the
  result; the driver re-attaches it under its dispatching span with
  :meth:`Tracer.attach`.  The same protocol runs in-process for the
  serial path, so serial and parallel traces have the same shape.

Enablement crosses the process boundary through :data:`TRACE_ENV`
(exported by :func:`configure_tracing`), mirroring how the parse cache
propagates its ``--cache-dir``: worker processes — forked or spawned —
build an enabled tracer on first use without explicit plumbing.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable enabling tracing in later-spawned processes.
TRACE_ENV = "REPRO_TRACE"

#: Version tag of the trace-file payload written by :func:`write_trace`.
TRACE_FORMAT = "repro-trace-v1"


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attributes) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


@dataclass
class Span:
    """One timed node of the trace tree (also its own context manager)."""

    name: str
    attributes: dict = field(default_factory=dict)
    started_at: float = 0.0  # epoch seconds
    seconds: float = 0.0
    status: str = "ok"
    children: list["Span"] = field(default_factory=list)

    enabled = True

    def __post_init__(self):
        self._tracer: Tracer | None = None
        self._detached = False
        self._t0 = 0.0

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            if not self._detached:
                if tracer._stack:
                    tracer._stack[-1].children.append(self)
                else:
                    tracer.roots.append(self)
            tracer._stack.append(self)
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
        tracer = self._tracer
        if tracer is not None:
            if tracer._stack and tracer._stack[-1] is self:
                tracer._stack.pop()
            tracer._notify_close(self)
        return False

    # -- attributes ----------------------------------------------------
    def set(self, **attributes) -> "Span":
        """Add or overwrite span attributes."""
        self.attributes.update(attributes)
        return self

    # -- derived timings -----------------------------------------------
    @property
    def self_seconds(self) -> float:
        """Duration not covered by child spans (never below zero)."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-ready tree rooted at this span."""
        return {
            "name": self.name,
            "start": round(self.started_at, 6),
            "seconds": round(self.seconds, 9),
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            name=str(data.get("name", "")),
            attributes=dict(data.get("attributes", {})),
            started_at=float(data.get("start", 0.0)),
            seconds=float(data.get("seconds", 0.0)),
            status=str(data.get("status", "ok")),
        )
        span.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return span

    def walk(self):
        """Yield this span and every descendant, children before parents
        (the order their closes would have been observed)."""
        for child in self.children:
            yield from child.walk()
        yield self


class Tracer:
    """Collects a forest of spans; no-ops entirely when disabled."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        #: Optional callable invoked with each span as it closes
        #: (direct wiring for tests and ad-hoc consumers).
        self.on_close = None
        #: When true, every span close is also published on the
        #: telemetry bus as a ``span`` event — the path the event log
        #: and live SSE consumers observe.  Set by ``ObsSession`` on
        #: the driver; ``worker_init`` clears it in pool workers, whose
        #: spans are republished by the driver at attach time.
        self.publish = False

    def _notify_close(self, span: "Span") -> None:
        """Deliver one span close to the bus and/or the direct sink."""
        if self.publish:
            from .bus import get_bus
            from .events import span_event

            get_bus().publish("span", span_event(span))
        if self.on_close is not None:
            self.on_close(span)

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes):
        """A span nested under the innermost open span (or a new root)."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(name=name, attributes=attributes)
        span._tracer = self
        return span

    def detached(self, name: str, **attributes):
        """A parentless span for transport across the worker boundary."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(name=name, attributes=attributes)
        span._tracer = self
        span._detached = True
        return span

    def attach(self, data: dict | None, *, emit: bool = False) -> Span | None:
        """Re-attach a serialised span tree under the innermost open span.

        ``emit=True`` replays the tree's span-close events — onto the
        telemetry bus and into :attr:`on_close` — used when the tree
        was built in a worker process whose closes no driver-side
        consumer could observe.  In-process (serial-path) trees already
        emitted at close time and must be attached with ``emit=False``.
        """
        if not self.enabled or data is None:
            return None
        span = Span.from_dict(data)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        if emit and (self.publish or self.on_close is not None):
            for closed in span.walk():
                self._notify_close(closed)
        return span

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """The JSON document written to ``--trace`` files."""
        return {
            "format": TRACE_FORMAT,
            "spans": [span.to_dict() for span in self.roots],
        }

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()


# ----------------------------------------------------------------------
# the process-global tracer
_active: Tracer | None = None


def get_tracer() -> Tracer:
    """The process's tracer (created on first use, honouring the env)."""
    global _active
    if _active is None:
        _active = Tracer(
            enabled=os.environ.get(TRACE_ENV, "") not in ("", "0")
        )
    return _active


def configure_tracing(enabled: bool = True) -> Tracer:
    """Replace the active tracer and export enablement to workers."""
    global _active
    if enabled:
        os.environ[TRACE_ENV] = "1"
    else:
        os.environ.pop(TRACE_ENV, None)
    _active = Tracer(enabled=enabled)
    return _active


def write_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the tracer's span forest as a JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(tracer.to_payload(), indent=2) + "\n")
    return path


# ----------------------------------------------------------------------
# rendering (the `repro-study trace-view` subcommand)

#: Valid ``--sort`` orders for :func:`render_trace`.
TRACE_SORTS = ("start", "self", "total")


def render_trace(
    payload: dict,
    *,
    max_depth: int | None = None,
    sort: str = "start",
    min_ms: float | None = None,
) -> str:
    """Render a trace payload as an indented tree with self-times.

    ``sort`` orders siblings at every level: ``start`` keeps recording
    order, ``self``/``total`` sort by descending self/total seconds so
    the hot spans of a big trace surface first.  ``min_ms`` prunes
    every subtree whose total time is below the cutoff (children can
    never outlast their parent, so pruning whole subtrees is safe).
    """
    if sort not in TRACE_SORTS:
        raise ValueError(f"sort must be one of {TRACE_SORTS}, got {sort!r}")
    spans = [Span.from_dict(data) for data in payload.get("spans", ())]
    lines = [f"{'span':<44} {'total':>10} {'self':>10}"]
    for span in _ordered(spans, sort):
        _render_span(span, 0, max_depth, lines, sort=sort, min_ms=min_ms)
    return "\n".join(lines)


def _ordered(spans: list[Span], sort: str) -> list[Span]:
    if sort == "self":
        return sorted(spans, key=lambda s: s.self_seconds, reverse=True)
    if sort == "total":
        return sorted(spans, key=lambda s: s.seconds, reverse=True)
    return spans


def _render_span(
    span: Span,
    depth: int,
    max_depth: int | None,
    lines: list[str],
    *,
    sort: str = "start",
    min_ms: float | None = None,
) -> None:
    if max_depth is not None and depth > max_depth:
        return
    if min_ms is not None and span.seconds * 1000.0 < min_ms:
        return
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
    flag = "" if span.status == "ok" else f" [{span.status}]"
    label = f"{'  ' * depth}{span.name}"
    lines.append(
        f"{label:<44} {span.seconds:>9.3f}s {span.self_seconds:>9.3f}s"
        f"{flag}{'  ' + attrs if attrs else ''}"
    )
    for child in _ordered(span.children, sort):
        _render_span(child, depth + 1, max_depth, lines,
                     sort=sort, min_ms=min_ms)
