"""Structured JSONL run events: span closes, warnings, progress, run
markers.

Every line of a ``--log-json`` file is one JSON object with a stable
schema (see :data:`EVENT_FIELDS`); :func:`validate_event` /
:func:`validate_event_log` check conformance line by line, and the
``make trace-smoke`` target runs that validator over a real traced run.

Four event kinds exist:

``span``
    emitted when a span closes — ``name``, ``seconds``, ``status`` and
    the span's ``attributes``;
``warning``
    emitted by :func:`warn` for anomalies that would otherwise be silent
    skips — an unparseable DDL version, an empty (zero-activity)
    history, a ``find_ddl_path`` tie-break, a parse-cache directory
    degrading to memory-only;
``progress``
    periodic heartbeats from the executor fan-outs (see
    :mod:`repro.obs.progress`) — projects done/total, percent, the
    stage ETA and the slowest projects so far;
``run``
    one closing marker per CLI run with the command and exit status;
``resource``
    one record per telemetry scope (driver, workers, stage) at run end
    with the scope's peak RSS and CPU seconds;
``provenance``
    one record per ``pipeline explain`` target with its warm / stale /
    cold state and cause labels.

Events added after the first schema generation (``resource``,
``provenance``) carry an explicit ``schema`` field
(:data:`EVENT_SCHEMA_VERSION`).  The validator extends the same
courtesy forward: an *unknown* kind is tolerated — not an error —
when the record is well-formed (object with a string ``event``, a
numeric ``ts`` and an integer ``schema``), so tomorrow's events don't
break today's consumers.

Warnings are also collected in the process-local
:class:`EventRecorder` so the run manifest can surface them after the
fact; worker processes ship their recorder windows back with their
results and the driver replays them (:meth:`EventRecorder.replay`),
giving the event log exactly one line per warning regardless of the
serial/parallel mode.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .bus import publish as bus_publish
from .metrics import get_metrics

#: The event-log schema generation.  Version 1 had no ``schema`` field
#: (span/warning/progress/run only); version 2 added the ``resource``
#: and ``provenance`` kinds, each carrying this number so consumers can
#: gate on it.
EVENT_SCHEMA_VERSION = 2

#: Required fields (and their JSON types) per event kind.
EVENT_FIELDS: dict[str, dict[str, tuple]] = {
    "span": {
        "event": (str,),
        "ts": (int, float),
        "name": (str,),
        "seconds": (int, float),
        "status": (str,),
        "attributes": (dict,),
    },
    "warning": {
        "event": (str,),
        "ts": (int, float),
        "code": (str,),
        "message": (str,),
        "context": (dict,),
    },
    "progress": {
        "event": (str,),
        "ts": (int, float),
        "stage": (str,),
        "done": (int,),
        "total": (int,),
        "percent": (int, float),
        "eta_seconds": (int, float),
        "slowest": (list,),
    },
    "run": {
        "event": (str,),
        "ts": (int, float),
        "command": (str,),
        "status": (str,),
    },
    "resource": {
        "event": (str,),
        "ts": (int, float),
        "schema": (int,),
        "scope": (str,),
        "peak_rss_bytes": (int,),
        "cpu_seconds": (int, float),
    },
    "provenance": {
        "event": (str,),
        "ts": (int, float),
        "schema": (int,),
        "stage": (str,),
        "state": (str,),
        "causes": (list,),
    },
}

#: Optional fields (per kind) the validator accepts but never requires.
EVENT_OPTIONAL_FIELDS: dict[str, dict[str, tuple]] = {
    "provenance": {"project": (str, type(None))},
}

_STATUS_VALUES = ("ok", "error")


def span_event(span) -> dict:
    """The JSONL record for one closed :class:`~repro.obs.trace.Span`."""
    return {
        "event": "span",
        "ts": round(span.started_at, 6),
        "name": span.name,
        "seconds": round(span.seconds, 9),
        "status": span.status,
        "attributes": dict(span.attributes),
    }


def run_event(command: str, status: str) -> dict:
    """The closing run-marker record of a CLI run."""
    return {
        "event": "run",
        "ts": round(time.time(), 6),
        "command": command,
        "status": status,
    }


def resource_event(scope: str, sample: dict) -> dict:
    """One telemetry scope's footprint record (emitted at run end)."""
    return {
        "event": "resource",
        "ts": round(time.time(), 6),
        "schema": EVENT_SCHEMA_VERSION,
        "scope": scope,
        "peak_rss_bytes": int(sample.get("peak_rss_bytes") or 0),
        "cpu_seconds": float(sample.get("cpu_seconds") or 0.0),
    }


def provenance_event(record: dict) -> dict:
    """One explain target's state record (emitted by pipeline explain)."""
    event = {
        "event": "provenance",
        "ts": round(time.time(), 6),
        "schema": EVENT_SCHEMA_VERSION,
        "stage": record["stage"],
        "state": record["state"],
        "causes": [cause["label"] for cause in record.get("causes", [])],
    }
    if record.get("project"):
        event["project"] = record["project"]
    return event


# ----------------------------------------------------------------------
# warnings

class EventRecorder:
    """Process-local warning collector with an optional live sink."""

    def __init__(self):
        self.warnings: list[dict] = []
        #: Optional callable receiving each warning record as emitted
        #: (the ``--log-json`` event log registers here).
        self.sink = None

    def warn(self, code: str, message: str, **context) -> dict:
        """Record one warning event; returns the record."""
        record = {
            "event": "warning",
            "ts": round(time.time(), 6),
            "code": code,
            "message": message,
            "context": context,
        }
        self._deliver(record)
        return record

    def replay(self, record: dict) -> None:
        """Fold a warning recorded in another process into this one."""
        self._deliver(record)

    def _deliver(self, record: dict) -> None:
        self.warnings.append(record)
        get_metrics().inc(f"warnings.{record['code']}")
        # every warning rides the telemetry bus; the --log-json event
        # log (a bus sink) and any live SSE client both see it there
        bus_publish("warning", record)
        if self.sink is not None:
            self.sink(record)

    # -- windows (the worker protocol) ---------------------------------
    def mark(self) -> int:
        """An opaque position; pair with :meth:`since`."""
        return len(self.warnings)

    def since(self, mark: int) -> list[dict]:
        """The warnings recorded after ``mark`` (shippable, picklable)."""
        return self.warnings[mark:]


_active: EventRecorder | None = None


def get_recorder() -> EventRecorder:
    """The process's warning recorder (created on first use)."""
    global _active
    if _active is None:
        _active = EventRecorder()
    return _active


def reset_recorder() -> EventRecorder:
    """Replace the active recorder with an empty one."""
    global _active
    _active = EventRecorder()
    return _active


def warn(code: str, message: str, **context) -> dict:
    """Record a warning event on the active recorder."""
    return get_recorder().warn(code, message, **context)


def aggregate_warnings(warnings: list[dict]) -> list[dict]:
    """Group warning records by code for the run manifest.

    Returns one entry per code, ordered by first occurrence, carrying
    the count and the first message as a representative example.
    """
    grouped: dict[str, dict] = {}
    for record in warnings:
        code = record.get("code", "")
        entry = grouped.get(code)
        if entry is None:
            grouped[code] = {
                "code": code,
                "count": 1,
                "first_message": record.get("message", ""),
            }
        else:
            entry["count"] += 1
    return list(grouped.values())


# ----------------------------------------------------------------------
# the JSONL writer

class EventLog:
    """An append-only JSONL event stream (one record per line)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")

    def emit(self, record: dict) -> None:
        self._handle.write(
            json.dumps(record, separators=(",", ":"), default=str) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# validation

def validate_event(record) -> list[str]:
    """Validate one decoded event record; returns a list of problems.

    Known kinds validate strictly against :data:`EVENT_FIELDS`.  An
    unknown kind is *forward-compatible* — accepted without error —
    when it self-identifies as a later schema generation: a string
    ``event``, numeric ``ts`` and an integer ``schema`` field.  Unknown
    kinds without those credentials stay errors (a typo'd kind must
    not pass as "the future").
    """
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    kind = record.get("event")
    spec = EVENT_FIELDS.get(kind) if isinstance(kind, str) else None
    if spec is None:
        if (
            isinstance(kind, str)
            and isinstance(record.get("ts"), (int, float))
            and isinstance(record.get("schema"), int)
            and not isinstance(record.get("schema"), bool)
        ):
            return []
        return [
            f"unknown event kind {kind!r} "
            "(no schema field to claim forward compatibility)"
        ]
    optional = EVENT_OPTIONAL_FIELDS.get(kind, {})
    errors = []
    for name, types in spec.items():
        if name not in record:
            errors.append(f"missing field {name!r}")
        elif not isinstance(record[name], types):
            errors.append(
                f"field {name!r} has type {type(record[name]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    for name in record:
        if name in spec:
            continue
        if name in optional:
            if not isinstance(record[name], optional[name]):
                errors.append(f"optional field {name!r} has wrong type")
            continue
        errors.append(f"unexpected field {name!r}")
    if "status" in spec and record.get("status") not in _STATUS_VALUES:
        errors.append(f"status {record.get('status')!r} not in ok/error")
    if isinstance(record.get("seconds"), (int, float)):
        if record["seconds"] < 0:
            errors.append("negative seconds")
    if kind == "progress" and not errors:
        if not 0 <= record["done"] <= record["total"]:
            errors.append("done outside [0, total]")
        if record["eta_seconds"] < 0:
            errors.append("negative eta_seconds")
        for index, entry in enumerate(record["slowest"]):
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("name"), str)
                or not isinstance(entry.get("seconds"), (int, float))
            ):
                errors.append(
                    f"slowest[{index}] is not a {{name, seconds}} object"
                )
    return errors


def validate_event_line(line: str) -> list[str]:
    """Validate one raw JSONL line."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        return [f"invalid JSON: {exc}"]
    return validate_event(record)


def validate_event_log(path: str | Path) -> tuple[int, list[str]]:
    """Validate a whole JSONL file; returns (line count, problems)."""
    count = 0
    problems: list[str] = []
    with Path(path).open(encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                problems.append(f"line {number}: empty line")
                continue
            count += 1
            for error in validate_event_line(line):
                problems.append(f"line {number}: {error}")
    return count, problems
