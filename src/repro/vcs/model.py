"""A minimal version-control substrate.

The study needs exactly what ``git log --name-status --no-merges
--date=iso`` exposes: the ordered commits of a project, each with a date,
an author and the set of files it touched — plus, for the DDL file, the
content of every version.  :class:`Repository` models that; real clones
enter through the git-log parser, synthetic projects through the corpus
generator (which *emits* git-log text so the two paths share a pipeline).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import datetime, timezone


@dataclass(frozen=True)
class FileChange:
    """One file touched by a commit.

    ``status`` follows git's name-status letters: ``A`` added,
    ``M`` modified, ``D`` deleted, ``R`` renamed (with ``old_path``),
    ``C`` copied, ``T`` type-changed.
    """

    status: str
    path: str
    old_path: str | None = None

    def __post_init__(self) -> None:
        if not self.status:
            raise ValueError("empty status letter")

    @property
    def kind(self) -> str:
        """The status letter without a similarity score (R100 -> R)."""
        return self.status[0]


@dataclass
class Commit:
    """One commit of a project history."""

    sha: str
    author: str
    email: str
    date: datetime
    message: str
    changes: list[FileChange] = field(default_factory=list)

    @property
    def files_updated(self) -> int:
        """The unit of project activity: number of files touched."""
        return len(self.changes)

    def touches(self, path: str) -> bool:
        return any(
            change.path == path or change.old_path == path
            for change in self.changes
        )


@dataclass
class FileVersion:
    """The content of a tracked file as of a given commit."""

    sha: str
    date: datetime
    content: str


@dataclass
class Repository:
    """An ordered project history with optional tracked file contents.

    ``commits`` are kept in topological (chronological) order, oldest
    first.  ``file_contents`` maps a path to the sequence of its versions
    — the generator fills this for the DDL file; for real repositories it
    would be populated via ``git show`` per touching commit.
    """

    name: str
    commits: list[Commit] = field(default_factory=list)
    file_contents: dict[str, list[FileVersion]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.commits)

    @property
    def start_date(self) -> datetime:
        if not self.commits:
            raise ValueError(f"repository {self.name!r} has no commits")
        return self.commits[0].date

    @property
    def end_date(self) -> datetime:
        if not self.commits:
            raise ValueError(f"repository {self.name!r} has no commits")
        return self.commits[-1].date

    def add_commit(self, commit: Commit) -> None:
        if self.commits and commit.date < self.commits[-1].date:
            raise ValueError(
                f"commit {commit.sha[:8]} predates repository head"
            )
        self.commits.append(commit)

    def commits_touching(self, path: str) -> list[Commit]:
        return [commit for commit in self.commits if commit.touches(path)]

    def versions_of(self, path: str) -> list[FileVersion]:
        return self.file_contents.get(path, [])

    def record_version(self, path: str, version: FileVersion) -> None:
        self.file_contents.setdefault(path, []).append(version)

    def paths(self) -> set[str]:
        out: set[str] = set()
        for commit in self.commits:
            for change in commit.changes:
                out.add(change.path)
        return out


def synthetic_sha(*parts: object) -> str:
    """A deterministic fake commit hash from arbitrary parts."""
    digest = hashlib.sha1(
        "\x00".join(str(p) for p in parts).encode()
    ).hexdigest()
    return digest


def utc(year: int, month: int, day: int = 1, hour: int = 12) -> datetime:
    """Shorthand for a timezone-aware UTC datetime."""
    return datetime(year, month, day, hour, tzinfo=timezone.utc)
