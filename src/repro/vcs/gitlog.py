"""Parsing and emitting ``git log --name-status --no-merges --date=iso``.

The paper mines project activity with exactly this command; the parser
here consumes its output (from a real clone or from the emitter below).
The emitter produces byte-compatible text from a :class:`Repository`,
which is how the synthetic corpus exercises the same mining pipeline as
real repositories.
"""

from __future__ import annotations

import re
from datetime import datetime

from .model import Commit, FileChange, Repository


class GitLogError(Exception):
    """Raised on unparseable git-log text."""


_COMMIT_RE = re.compile(r"^commit ([0-9a-f]{4,40})(?:\s+\(.*\))?$")
_AUTHOR_RE = re.compile(r"^Author:\s*(.*?)\s*(?:<([^>]*)>)?$")
_DATE_RE = re.compile(r"^Date:\s*(.*)$")
_STATUS_RE = re.compile(r"^([AMDTUX]|[RC]\d*)\t([^\t]+)(?:\t(.+))?$")

#: git --date=iso format: ``2015-03-10 14:22:01 +0200``
_ISO_FORMATS = (
    "%Y-%m-%d %H:%M:%S %z",
    "%Y-%m-%dT%H:%M:%S%z",
    "%Y-%m-%d %H:%M:%S",
)


def parse_date(text: str) -> datetime:
    """Parse a git ``--date=iso`` timestamp."""
    text = text.strip()
    for fmt in _ISO_FORMATS:
        try:
            return datetime.strptime(text, fmt)
        except ValueError:
            continue
    raise GitLogError(f"unparseable date: {text!r}")


def parse_git_log(text: str) -> list[Commit]:
    """Parse git-log text into commits (in the order they appear).

    ``git log`` prints newest first; callers that need chronological order
    should reverse or use :func:`parse_repository`.
    """
    commits: list[Commit] = []
    current: Commit | None = None
    message_lines: list[str] = []

    def flush() -> None:
        nonlocal current, message_lines
        if current is not None:
            current.message = "\n".join(message_lines).strip()
            commits.append(current)
        current = None
        message_lines = []

    for line in text.splitlines():
        match = _COMMIT_RE.match(line)
        if match:
            flush()
            current = Commit(
                sha=match.group(1),
                author="",
                email="",
                date=datetime.min,
                message="",
            )
            continue
        if current is None:
            if line.strip():
                raise GitLogError(f"content before first commit: {line!r}")
            continue
        match = _AUTHOR_RE.match(line)
        if match and not current.author:
            current.author = match.group(1) or ""
            current.email = match.group(2) or ""
            continue
        match = _DATE_RE.match(line)
        if match and current.date is datetime.min:
            current.date = parse_date(match.group(1))
            continue
        match = _STATUS_RE.match(line)
        if match:
            status, path_a, path_b = match.groups()
            if status.startswith(("R", "C")) and path_b is not None:
                change = FileChange(
                    status=status, path=path_b, old_path=path_a
                )
            else:
                change = FileChange(status=status, path=path_a)
            current.changes.append(change)
            continue
        if line.startswith("    "):
            message_lines.append(line[4:])
        # anything else (blank separators, Merge: lines) is ignored
    flush()

    for commit in commits:
        if commit.date is datetime.min:
            raise GitLogError(f"commit {commit.sha[:8]} has no Date line")
    return commits


def parse_repository(name: str, text: str) -> Repository:
    """Parse git-log text into a chronologically ordered repository."""
    commits = parse_git_log(text)
    commits.sort(key=lambda c: c.date)
    repo = Repository(name=name)
    for commit in commits:
        repo.add_commit(commit)
    return repo


def format_git_log(commits: list[Commit], *, newest_first: bool = True) -> str:
    """Emit git-log text (the inverse of :func:`parse_git_log`)."""
    ordered = list(commits)
    if newest_first:
        ordered = ordered[::-1]
    blocks: list[str] = []
    for commit in ordered:
        lines = [f"commit {commit.sha}"]
        author = commit.author or "unknown"
        email = commit.email or "unknown@example.org"
        lines.append(f"Author: {author} <{email}>")
        lines.append(f"Date:   {commit.date.strftime('%Y-%m-%d %H:%M:%S %z')}")
        lines.append("")
        message = commit.message or "(no message)"
        lines.extend(f"    {text}" for text in message.splitlines())
        lines.append("")
        for change in commit.changes:
            if change.old_path is not None:
                lines.append(
                    f"{change.status}\t{change.old_path}\t{change.path}"
                )
            else:
                lines.append(f"{change.status}\t{change.path}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + ("\n" if blocks else "")
