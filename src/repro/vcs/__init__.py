"""Version-control substrate: repository model and git-log text I/O."""

from .gitlog import (
    GitLogError,
    format_git_log,
    parse_date,
    parse_git_log,
    parse_repository,
)
from .model import (
    Commit,
    FileChange,
    FileVersion,
    Repository,
    synthetic_sha,
    utc,
)

__all__ = [
    "Commit",
    "FileChange",
    "FileVersion",
    "GitLogError",
    "Repository",
    "format_git_log",
    "parse_date",
    "parse_git_log",
    "parse_repository",
    "synthetic_sha",
    "utc",
]
