"""Change-impact extension: embedded queries vs schema evolution."""

from .deps import QueryDeps, analyze_query
from .extract import EmbeddedQuery, extract_from_files, extract_queries
from .workload import generate_workload
from .validate import (
    ValidationIssue,
    ValidationReport,
    validate_queries,
    validate_query,
)
from .impact import (
    Impact,
    ImpactReport,
    QueryImpact,
    analyze_impact,
    classify_query,
    dependency_graph,
    queries_touching,
)

__all__ = [
    "EmbeddedQuery",
    "Impact",
    "ImpactReport",
    "QueryDeps",
    "QueryImpact",
    "analyze_impact",
    "analyze_query",
    "classify_query",
    "dependency_graph",
    "extract_from_files",
    "extract_queries",
    "generate_workload",
    "queries_touching",
    "ValidationIssue",
    "ValidationReport",
    "validate_queries",
    "validate_query",
]
