"""Extraction of embedded SQL queries from application source code.

The paper's implications section calls for tooling that identifies "the
parts of the code affected by a schema change".  The first step is
finding the queries: this module scans source text for string literals
that look like SQL DML (the technique used by embedded-database studies
such as [37]).  It is deliberately conservative — a literal must start
with a DML keyword to count — because false positives poison impact
analysis downstream.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: String literals in the languages the corpus contains.
_STRING_RE = re.compile(
    r'"""(?P<triple>[^"\\]*(?:\\.[^"\\]*)*)"""'
    r"|'''(?P<triple2>[^'\\]*(?:\\.[^'\\]*)*)'''"
    r'|"(?P<double>[^"\\\n]*(?:\\.[^"\\\n]*)*)"'
    r"|'(?P<single>[^'\\\n]*(?:\\.[^'\\\n]*)*)'"
    r"|`(?P<backtick>[^`]*)`",
    re.DOTALL,
)

_DML_START = re.compile(
    r"^\s*(SELECT|INSERT|UPDATE|DELETE|REPLACE|WITH)\b", re.IGNORECASE
)


@dataclass(frozen=True)
class EmbeddedQuery:
    """One SQL query found in a source file."""

    file: str
    line: int
    text: str

    @property
    def kind(self) -> str:
        match = _DML_START.match(self.text)
        return match.group(1).upper() if match else "UNKNOWN"


def extract_queries(source: str, *, file: str = "<memory>") -> list[EmbeddedQuery]:
    """Find SQL-looking string literals in one source file's text."""
    queries: list[EmbeddedQuery] = []
    for match in _STRING_RE.finditer(source):
        literal = next(g for g in match.groups() if g is not None)
        if _DML_START.match(literal):
            line = source.count("\n", 0, match.start()) + 1
            queries.append(
                EmbeddedQuery(file=file, line=line, text=literal.strip())
            )
    return queries


def extract_from_files(
    files: dict[str, str]
) -> list[EmbeddedQuery]:
    """Extract queries from a {path: content} mapping."""
    queries: list[EmbeddedQuery] = []
    for path in sorted(files):
        queries.extend(extract_queries(files[path], file=path))
    return queries
