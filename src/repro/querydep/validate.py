"""Static validation of queries against a schema version.

Complements change-impact analysis: instead of asking "what will this
change break?", asks "is this query consistent with this schema *now*?"
— unknown tables and unknown qualified columns are reported.  Bare
column references in multi-table queries are only validated when they
resolve in none of the joined tables (the conservative reading).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema import Schema
from .deps import analyze_query
from .extract import EmbeddedQuery


@dataclass(frozen=True)
class ValidationIssue:
    """One inconsistency between a query and a schema."""

    query: EmbeddedQuery
    kind: str  # "unknown_table" | "unknown_column"
    element: str

    def __str__(self) -> str:
        return (
            f"{self.query.file}:{self.query.line}: "
            f"{self.kind} {self.element!r}"
        )


@dataclass
class ValidationReport:
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def __len__(self) -> int:
        return len(self.issues)

    def __iter__(self):
        return iter(self.issues)


def validate_query(
    query: EmbeddedQuery, schema: Schema
) -> list[ValidationIssue]:
    """Validate one query's references against a schema."""
    deps = analyze_query(query.text)
    issues: list[ValidationIssue] = []

    known_tables = {table.key for table in schema.tables}
    for table in sorted(deps.tables):
        if table not in known_tables:
            issues.append(
                ValidationIssue(query, "unknown_table", table)
            )

    for table, column in sorted(
        deps.columns, key=lambda tc: (tc[0] or "", tc[1])
    ):
        if table is not None:
            owner = schema.get(table)
            if owner is None:
                continue  # already reported as unknown_table
            if column not in owner:
                issues.append(
                    ValidationIssue(
                        query, "unknown_column", f"{table}.{column}"
                    )
                )
        else:
            # bare reference in a multi-table query: flag only when no
            # referenced table could supply it
            owners = [
                schema.get(t) for t in deps.tables if schema.get(t)
            ]
            if owners and not any(column in o for o in owners):
                issues.append(
                    ValidationIssue(query, "unknown_column", column)
                )
    return issues


def validate_queries(
    queries: list[EmbeddedQuery], schema: Schema
) -> ValidationReport:
    """Validate a whole workload against one schema version."""
    report = ValidationReport()
    for query in queries:
        report.issues.extend(validate_query(query, schema))
    return report
