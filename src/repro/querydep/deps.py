"""Schema dependencies of a DML query.

A lightweight DML analyser built on the shared SQL tokenizer: it
resolves which tables a query touches (FROM/JOIN/INTO/UPDATE targets,
with alias tracking) and which columns it references (qualified
``alias.column`` and bare identifiers in clause positions), plus whether
it relies on ``SELECT *`` — the reference shape needed for change-impact
analysis.  It is an approximation by design (construct validity is
discussed in the paper's §8); the tests pin down exactly what it claims
to resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sqlparser.lexer import Token, TokenType, tokenize

#: Keywords that introduce a table reference.
_TABLE_INTRODUCERS = {"FROM", "JOIN", "INTO", "UPDATE", "TABLE"}

#: Words never interpreted as identifiers in column position.
_RESERVED = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "HAVING", "LIMIT",
    "OFFSET", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS",
    "ON", "AS", "AND", "OR", "NOT", "NULL", "IN", "IS", "LIKE", "BETWEEN",
    "EXISTS", "UNION", "ALL", "DISTINCT", "INSERT", "INTO", "VALUES",
    "UPDATE", "SET", "DELETE", "CASE", "WHEN", "THEN", "ELSE", "END",
    "ASC", "DESC", "USING", "WITH", "RECURSIVE", "RETURNING", "COUNT",
    "SUM", "AVG", "MIN", "MAX", "COALESCE", "CAST", "CONCAT", "LOWER",
    "UPPER", "NOW", "TRUE", "FALSE", "INTERVAL", "ANY", "SOME",
}


@dataclass
class QueryDeps:
    """The schema surface one query depends on."""

    tables: set[str] = field(default_factory=set)
    #: resolved column references: (table, column); the table is the
    #: resolved alias target, or None for unqualified references in
    #: multi-table queries (attributed to every table conservatively)
    columns: set[tuple[str | None, str]] = field(default_factory=set)
    #: tables whose full row shape is consumed via SELECT *
    star_tables: set[str] = field(default_factory=set)
    #: tables written by a positional INSERT (no column list): the
    #: statement depends on the exact attribute arity/order
    positional_insert_tables: set[str] = field(default_factory=set)

    def references_table(self, table: str) -> bool:
        return table.lower() in self.tables

    def references_column(self, table: str, column: str) -> bool:
        table = table.lower()
        column = column.lower()
        if (table, column) in self.columns:
            return True
        return (None, column) in self.columns and table in self.tables


def analyze_query(text: str) -> QueryDeps:
    """Resolve the tables/columns referenced by one DML statement."""
    tokens = tokenize(text)
    deps = QueryDeps()
    aliases: dict[str, str] = {}
    _detect_positional_insert(tokens, deps)

    # pass 1: table references and aliases
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token.type is TokenType.WORD and token.upper in _TABLE_INTRODUCERS:
            i = _consume_table_refs(tokens, i + 1, deps, aliases)
            continue
        i += 1

    # pass 2: column references
    select_depth_star = False
    i = 0
    while i < len(tokens):
        token = tokens[i]
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        if (
            token.type is TokenType.OP
            and token.value == "*"
            and _star_is_projection(tokens, i)
        ):
            deps.star_tables.update(deps.tables)
            i += 1
            continue
        if token.is_name() and not token.is_word(*_RESERVED):
            # qualified reference: name '.' name
            if (
                nxt is not None
                and nxt.type is TokenType.OP
                and nxt.value == "."
                and i + 2 < len(tokens)
            ):
                target = tokens[i + 2]
                base = aliases.get(
                    token.value.lower(), token.value.lower()
                )
                if target.is_name():
                    deps.columns.add((base, target.value.lower()))
                elif target.type is TokenType.OP and target.value == "*":
                    deps.star_tables.add(base)
                i += 3
                continue
            lower = token.value.lower()
            is_table_word = lower in deps.tables or lower in aliases
            is_function_call = (
                nxt is not None and nxt.type is TokenType.LPAREN
            )
            if not is_table_word and not is_function_call:
                if len(deps.tables) == 1:
                    deps.columns.add((next(iter(deps.tables)), lower))
                else:
                    deps.columns.add((None, lower))
        i += 1
    return deps


def _detect_positional_insert(
    tokens: list[Token], deps: QueryDeps
) -> None:
    """Mark ``INSERT INTO t VALUES ...`` (no column list) targets.

    Without an explicit column list the statement binds to the table's
    full attribute arity and order, so *any* injection or ejection on
    that table breaks it.
    """
    for i, token in enumerate(tokens):
        if not token.is_word("INSERT"):
            continue
        j = i + 1
        if j < len(tokens) and tokens[j].is_word("INTO"):
            j += 1
        if j >= len(tokens) or not tokens[j].is_name():
            continue
        table = tokens[j].value.lower()
        j += 1
        # skip schema qualification
        while (
            j + 1 < len(tokens)
            and tokens[j].type is TokenType.OP
            and tokens[j].value == "."
            and tokens[j + 1].is_name()
        ):
            table = tokens[j + 1].value.lower()
            j += 2
        if j < len(tokens) and tokens[j].is_word("VALUES", "SELECT"):
            deps.positional_insert_tables.add(table)


def _consume_table_refs(
    tokens: list[Token],
    start: int,
    deps: QueryDeps,
    aliases: dict[str, str],
) -> int:
    """Parse ``t [AS] alias [, t2 [AS] alias2 ...]`` after an introducer."""
    i = start
    while i < len(tokens):
        token = tokens[i]
        if token.type is TokenType.LPAREN:
            return i  # subquery in FROM: its own FROM will be scanned
        if not token.is_name() or token.is_word(*_RESERVED):
            return i
        table = token.value.lower()
        deps.tables.add(table)
        i += 1
        # optional alias
        if i < len(tokens) and tokens[i].is_word("AS"):
            i += 1
        if (
            i < len(tokens)
            and tokens[i].is_name()
            and not tokens[i].is_word(*_RESERVED)
        ):
            nxt = tokens[i + 1] if i + 1 < len(tokens) else None
            is_column_list = (
                nxt is not None and nxt.type is TokenType.OP and nxt.value == "."
            )
            if not is_column_list:
                aliases[tokens[i].value.lower()] = table
                i += 1
        if i < len(tokens) and tokens[i].type is TokenType.COMMA:
            i += 1
            continue
        return i
    return i


def _star_is_projection(tokens: list[Token], index: int) -> bool:
    """``*`` counts as a projection only right after SELECT or a comma
    in the select list (not as multiplication)."""
    for j in range(index - 1, -1, -1):
        token = tokens[j]
        if token.type is TokenType.COMMA:
            continue
        if token.is_word("SELECT", "DISTINCT", "ALL"):
            return True
        return False
    return False
