"""Change-impact analysis: which queries does a schema change affect?

Given the atomic changes of a schema transition and the dependency sets
of the application's embedded queries, classify the impact per query:

* ``BREAKS`` — the query references a table or column that no longer
  exists (syntactic breakage);
* ``AT_RISK`` — a referenced column changed its data type or primary-key
  role (possible semantic/translation breakage);
* ``DRIFTS`` — the query consumes ``SELECT *`` from a table whose row
  shape changed (silent semantic drift, §1's "semantic inconsistency");
* ``UNAFFECTED`` — none of the above.

A dependency graph over (query, table, column) nodes is also exposed via
networkx for downstream tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import networkx as nx

from ..diff import AtomicChange, ChangeKind, SchemaDelta
from .deps import QueryDeps, analyze_query
from .extract import EmbeddedQuery


class Impact(Enum):
    BREAKS = "breaks"
    AT_RISK = "at_risk"
    DRIFTS = "drifts"
    UNAFFECTED = "unaffected"


#: Severity order, most severe first.
_SEVERITY = (Impact.BREAKS, Impact.AT_RISK, Impact.DRIFTS, Impact.UNAFFECTED)


@dataclass
class QueryImpact:
    """The impact of a schema transition on one query."""

    query: EmbeddedQuery
    impact: Impact
    reasons: list[str] = field(default_factory=list)


@dataclass
class ImpactReport:
    """Impacts for a whole application, worst first."""

    impacts: list[QueryImpact]

    def __iter__(self):
        return iter(self.impacts)

    def __len__(self) -> int:
        return len(self.impacts)

    def with_impact(self, impact: Impact) -> list[QueryImpact]:
        return [qi for qi in self.impacts if qi.impact is impact]

    @property
    def affected_count(self) -> int:
        return sum(
            1 for qi in self.impacts if qi.impact is not Impact.UNAFFECTED
        )


def classify_query(
    deps: QueryDeps, changes: list[AtomicChange]
) -> tuple[Impact, list[str]]:
    """Classify one query's impact under a list of atomic changes."""
    worst = Impact.UNAFFECTED
    reasons: list[str] = []

    def bump(level: Impact, reason: str) -> None:
        nonlocal worst
        reasons.append(reason)
        if _SEVERITY.index(level) < _SEVERITY.index(worst):
            worst = level

    dropped_tables = {
        c.table.lower()
        for c in changes
        if c.kind is ChangeKind.DELETED_WITH_TABLE
    }
    for table in dropped_tables:
        if deps.references_table(table):
            bump(Impact.BREAKS, f"table {table!r} was dropped")

    for change in changes:
        table = change.table.lower()
        column = change.attribute.lower()
        if change.kind is ChangeKind.EJECTED:
            if deps.references_column(table, column):
                bump(
                    Impact.BREAKS,
                    f"column {table}.{column} was removed",
                )
            elif table in deps.positional_insert_tables:
                bump(
                    Impact.BREAKS,
                    f"positional INSERT into {table!r} has wrong arity "
                    f"after {column!r} was removed",
                )
            elif table in deps.star_tables:
                bump(
                    Impact.DRIFTS,
                    f"SELECT * row shape of {table!r} lost {column!r}",
                )
        elif change.kind is ChangeKind.TYPE_CHANGED:
            if deps.references_column(table, column):
                bump(
                    Impact.AT_RISK,
                    f"column {table}.{column} changed type"
                    + (f" ({change.detail})" if change.detail else ""),
                )
        elif change.kind is ChangeKind.PK_CHANGED:
            if deps.references_column(table, column):
                bump(
                    Impact.AT_RISK,
                    f"column {table}.{column} changed primary-key role",
                )
        elif change.kind is ChangeKind.INJECTED:
            if table in deps.positional_insert_tables:
                bump(
                    Impact.BREAKS,
                    f"positional INSERT into {table!r} has wrong arity "
                    f"after {column!r} was added",
                )
            elif table in deps.star_tables:
                bump(
                    Impact.DRIFTS,
                    f"SELECT * row shape of {table!r} gained {column!r}",
                )
    return worst, reasons


def analyze_impact(
    queries: list[EmbeddedQuery], delta: SchemaDelta | list[AtomicChange]
) -> ImpactReport:
    """Classify every query against a schema transition's changes."""
    changes = list(delta)
    impacts = []
    for query in queries:
        deps = analyze_query(query.text)
        impact, reasons = classify_query(deps, changes)
        impacts.append(
            QueryImpact(query=query, impact=impact, reasons=reasons)
        )
    impacts.sort(key=lambda qi: _SEVERITY.index(qi.impact))
    return ImpactReport(impacts=impacts)


def dependency_graph(queries: list[EmbeddedQuery]) -> "nx.DiGraph":
    """Build the query → table/column dependency graph.

    Node kinds (``kind`` attribute): ``query``, ``table``, ``column``.
    Edges point from a query to the schema elements it references, and
    from each column to its table.
    """
    graph = nx.DiGraph()
    for query in queries:
        qnode = f"query:{query.file}:{query.line}"
        graph.add_node(qnode, kind="query", text=query.text)
        deps = analyze_query(query.text)
        for table in deps.tables:
            tnode = f"table:{table}"
            graph.add_node(tnode, kind="table")
            graph.add_edge(qnode, tnode)
        for table, column in deps.columns:
            if table is None:
                continue
            cnode = f"column:{table}.{column}"
            tnode = f"table:{table}"
            graph.add_node(cnode, kind="column")
            graph.add_node(tnode, kind="table")
            graph.add_edge(qnode, cnode)
            graph.add_edge(cnode, tnode)
    return graph


def queries_touching(graph: "nx.DiGraph", element: str) -> list[str]:
    """Query nodes that (transitively) depend on a table/column node."""
    if element not in graph:
        return []
    dependents = nx.ancestors(graph, element)
    return sorted(
        node for node in dependents
        if graph.nodes[node].get("kind") == "query"
    )
