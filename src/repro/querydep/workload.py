"""Synthetic query workloads over a schema.

To quantify the paper's closing conjecture — "the developers' reluctance
to actively maintain the schema is due to the effect that schema
evolution has to the surrounding code" — we need surrounding code.  This
module generates a plausible embedded-SQL workload against a schema
version: point lookups, joins over foreign keys, aggregates, inserts and
updates, with a realistic share of ``SELECT *``.  The burden analysis
(:mod:`repro.analysis.burden`) then replays a project's real schema
history against its workload and counts the casualties.
"""

from __future__ import annotations

import random

from ..schema import Schema, Table
from .extract import EmbeddedQuery


def generate_workload(
    schema: Schema,
    rng: random.Random,
    *,
    n_queries: int = 20,
    star_share: float = 0.15,
) -> list[EmbeddedQuery]:
    """A workload of ``n_queries`` DML statements over ``schema``.

    Queries reference only elements that exist in the given version, so
    a freshly generated workload always validates cleanly (asserted by
    the tests); breakage can then only come from subsequent evolution.
    """
    if not schema.tables:
        raise ValueError("cannot build a workload over an empty schema")
    queries: list[EmbeddedQuery] = []
    for i in range(n_queries):
        roll = rng.random()
        table = rng.choice(schema.tables)
        if roll < star_share:
            text = _select_star(table)
        elif roll < 0.55:
            text = _select(table, rng)
        elif roll < 0.70:
            text = _join(schema, table, rng)
        elif roll < 0.85:
            text = _insert(table, rng)
        else:
            text = _update(table, rng)
        queries.append(
            EmbeddedQuery(file="workload.py", line=i + 1, text=text)
        )
    return queries


def _columns_of(table: Table, rng: random.Random, *, k: int) -> list[str]:
    names = table.attribute_names
    k = min(k, len(names))
    return rng.sample(names, k)


def _filter_column(table: Table, rng: random.Random) -> str:
    if table.primary_key and rng.random() < 0.6:
        return table.primary_key[0]
    return rng.choice(table.attribute_names)


def _select_star(table: Table) -> str:
    return f"SELECT * FROM {table.name}"


def _select(table: Table, rng: random.Random) -> str:
    cols = ", ".join(_columns_of(table, rng, k=rng.randint(1, 3)))
    where = _filter_column(table, rng)
    return f"SELECT {cols} FROM {table.name} WHERE {where} = ?"


def _join(schema: Schema, table: Table, rng: random.Random) -> str:
    """Join along a foreign key when one exists, else a cross-table pair."""
    for fk in table.foreign_keys:
        other = schema.get(fk.ref_table)
        if other is not None and fk.ref_columns:
            left = rng.choice(table.attribute_names)
            right = rng.choice(other.attribute_names)
            return (
                f"SELECT a.{left}, b.{right} FROM {table.name} a "
                f"JOIN {other.name} b ON a.{fk.columns[0]} = "
                f"b.{fk.ref_columns[0]}"
            )
    if len(schema) > 1:
        other = rng.choice([t for t in schema.tables if t.key != table.key])
        left = rng.choice(table.attribute_names)
        right = rng.choice(other.attribute_names)
        return (
            f"SELECT a.{left}, b.{right} FROM {table.name} a, "
            f"{other.name} b"
        )
    return _select(table, rng)


def _insert(table: Table, rng: random.Random) -> str:
    cols = _columns_of(table, rng, k=rng.randint(1, 4))
    placeholders = ", ".join("?" for _ in cols)
    return (
        f"INSERT INTO {table.name} ({', '.join(cols)}) "
        f"VALUES ({placeholders})"
    )


def _update(table: Table, rng: random.Random) -> str:
    target = rng.choice(table.attribute_names)
    where = _filter_column(table, rng)
    return (
        f"UPDATE {table.name} SET {target} = ? WHERE {where} = ?"
    )
