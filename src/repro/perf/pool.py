"""A reusable warm worker pool for the study fan-outs.

Every parallel entry point used to build (and tear down) its own
``ProcessPoolExecutor``: ``generate_corpus(jobs=N)`` spun one up, threw
it away, and ``run_study``'s mine fan-out immediately paid worker
start-up *again* — plus each fresh worker re-warmed its in-memory parse
cache from nothing.  For the fused generate+mine flow that start-up tax
is pure waste: the worker functions are stateless module-level callables
and the processes are perfectly reusable.

:func:`warm_pool` hands out a process-wide executor keyed on

* ``jobs`` — pools of different widths coexist (tests mix widths), and
* the active :data:`~repro.perf.cache.CACHE_DIR_ENV` value — workers
  capture the cache directory when their process starts, so changing
  the configured cache dir must retire the old workers rather than let
  them keep writing to the stale location.

Pools are retained LRU up to a small cap, a broken pool (a worker
died; the executor poisons itself permanently) is detected and
replaced transparently, and everything is shut down at interpreter
exit.  Reuse is invisible to correctness: workers hold only their
content-addressed parse caches, which return oracle-equivalent results
whether warm or cold.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor

from .cache import CACHE_DIR_ENV

#: How many distinct (jobs, cache_dir) pools to keep alive at once.
_MAX_POOLS = 4

_pools: dict[tuple[int, str], ProcessPoolExecutor] = {}


def _pool_key(jobs: int) -> tuple[int, str]:
    return (jobs, os.environ.get(CACHE_DIR_ENV) or "")


def warm_pool(jobs: int) -> ProcessPoolExecutor:
    """The shared executor for ``jobs`` workers (created on first use).

    Callers use the returned executor *without* shutting it down (no
    ``with`` block): it stays warm for the next fan-out.  A pool whose
    workers died is replaced transparently, so callers never see a
    ``BrokenProcessPool`` left over from an earlier run's crash.
    """
    key = _pool_key(jobs)
    pool = _pools.get(key)
    if pool is not None and getattr(pool, "_broken", False):
        _pools.pop(key, None)
        pool.shutdown(wait=False, cancel_futures=True)
        pool = None
    if pool is None:
        # imported here: parallel pulls in the whole mining/analysis
        # stack, which itself imports repro.perf at package init
        from .parallel import worker_init

        pool = ProcessPoolExecutor(max_workers=jobs, initializer=worker_init)
        _pools[key] = pool
    else:
        # LRU refresh: re-insert at the end of the dict order
        _pools.pop(key)
        _pools[key] = pool
    while len(_pools) > _MAX_POOLS:
        _, oldest = next(iter(_pools.items()))
        _evict(oldest)
    return pool


def _evict(target: ProcessPoolExecutor) -> None:
    for key, pool in list(_pools.items()):
        if pool is target:
            _pools.pop(key, None)
    target.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> int:
    """Shut down every live pool; returns how many were closed.

    Mostly for tests and the atexit hook — long-lived callers just keep
    the pools warm.
    """
    closed = 0
    for pool in list(_pools.values()):
        pool.shutdown(wait=False, cancel_futures=True)
        closed += 1
    _pools.clear()
    return closed


atexit.register(shutdown_pools)
