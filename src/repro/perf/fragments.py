"""Per-statement fragment compilation — the incremental parse engine.

Consecutive versions of a mined DDL file differ in one or two statements
out of dozens; whole-file caching (:mod:`repro.perf.cache`) sees every
version as a brand-new content key and re-parses everything.  This
module caches parse work *per top-level statement*: a version is split
by the cheap segmenter (:mod:`repro.sqlparser.segment`), each segment is
compiled once into a :class:`StatementFragment`, and later versions that
contain the same statement text reuse the compiled fragment — skipping
the lexer entirely and, for self-contained CREATE TABLE statements, the
parser too.

Fragment kinds
==============

``PURE``
    A single CREATE TABLE statement that parsed cleanly on an empty
    scratch schema.  Applying it is one ``schema.add_table`` of the
    cached :class:`~repro.schema.Table` — the same object is shared by
    every version containing the identical statement text, which is
    what arms the identity fast path in the diff engine.
``MUTATING``
    ALTER / RENAME TABLE and any CREATE that was not pure (CREATE INDEX
    appends to an existing table's ``indexes``; a torn CREATE TABLE
    must re-raise its diagnostics against live schema state).  Replayed
    from cached tokens; may mutate tables already in the schema.
``INERT``
    Everything else — comment-only slices, DROP TABLE (removes entries
    from the schema's table list but never mutates a ``Table``), SET /
    INSERT / USE / CREATE VIEW and other ignored statements.  Replayed
    from cached tokens (DROP diagnostics depend on live schema state),
    but guaranteed never to touch a shared ``Table`` object.

Copy-on-write rule: when a version contains *any* MUTATING fragment,
pure fragments are applied as ``table.copy()`` instead of the shared
object, so no statement replayed later in the chain can corrupt a
``Table`` that an earlier version's schema is holding.

Correctness is oracle-gated: for every version the fragmented result
must equal ``parse_schema`` on the same text — same schema, same
issue list (with line numbers rebased from fragment-relative to
absolute), same statement counters.  ``tests/test_incremental_parse.py``
drives randomized histories through ``parse_history_reference`` to
enforce this version by version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..schema import Schema, Table
from ..sqlparser import ParseIssue, ParseResult, Token, split_statements, tokenize
from ..sqlparser.dialect import (
    dialect_from_mask,
    fragment_signal_mask,
    whole_text_signal_mask,
)
from ..sqlparser.parser import (
    BodyEffect,
    apply_statement,
    capture_body_element,
    strip_copy_blocks,
)
from ..sqlparser.segment import segment_statements

PURE = "pure"
MUTATING = "mutating"
INERT = "inert"


class ElementCache:
    """Memo of CREATE TABLE body-element parses, keyed on token content.

    The second cache level under statement fragments: when a statement
    *does* change between versions, it usually changes in one column —
    the other body elements re-parse from this memo.  Keys deliberately
    exclude token line numbers, so the same column definition hits from
    any file position and any project (``id INT NOT NULL`` is shared
    corpus-wide).  Install via
    :func:`repro.sqlparser.parser.set_element_cache`; installation is
    scoped by :class:`~repro.perf.cache.ParseCache` so the reference
    oracles always take the direct parse path.
    """

    __slots__ = ("_memo", "hits", "misses")

    def __init__(self) -> None:
        self._memo: dict[tuple, BodyEffect] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memo)

    def effect_for(self, element: list[Token]) -> BodyEffect:
        key = tuple((t.type, t.value, t.raw) for t in element)
        effect = self._memo.get(key)
        if effect is None:
            self.misses += 1
            effect = capture_body_element(element)
            self._memo[key] = effect
        else:
            self.hits += 1
        return effect


@dataclass
class StatementFragment:
    """One compiled top-level statement, reusable across versions.

    ``groups`` holds the statement's token groups (fragment-relative
    line numbers) for replay; ``table`` is the shared parsed table for
    PURE fragments; ``signal_mask`` caches the fragment-local dialect
    signals (computed over ``" " + text`` so word boundaries at the
    segment seam behave as in the full file); ``units`` is the
    fragment's parse-unit weight (body elements for CREATE TABLE,
    otherwise one per statement) used by the reuse-rate accounting.
    """

    kind: str
    groups: list[list[Token]]
    table: Table | None
    signal_mask: int
    units: int = 0


def compile_fragment(text: str) -> StatementFragment:
    """Lex, classify and (for CREATE TABLE) pre-parse one segment."""
    groups = split_statements(tokenize(text))
    signal_mask = fragment_signal_mask(" " + text)
    kind = INERT
    table: Table | None = None
    if len(groups) == 1:
        head = groups[0][0]
        if head.is_word("CREATE"):
            scratch_schema = Schema()
            scratch_result = ParseResult(schema=scratch_schema)
            apply_statement(groups[0], scratch_schema, scratch_result)
            if (
                not scratch_result.issues
                and scratch_result.statements_applied == 1
                and len(scratch_schema.tables) == 1
            ):
                kind = PURE
                table = scratch_schema.tables[0]
            elif scratch_result.statements_applied or scratch_result.issues:
                kind = MUTATING  # CREATE INDEX, torn CREATE TABLE, ...
            # else: CREATE VIEW / SEQUENCE / FUNCTION — ignored, inert
        elif head.is_word("ALTER", "RENAME"):
            kind = MUTATING
    elif len(groups) > 1:
        kind = MUTATING  # should not happen post-segmentation; be safe
    return StatementFragment(
        kind=kind, groups=groups, table=table, signal_mask=signal_mask
    )


def parse_schema_fragmented(
    text: str,
    *,
    dialect: str | None = None,
    lookup: Callable[[str], StatementFragment],
) -> ParseResult | None:
    """Parse ``text`` through the fragment cache.

    ``lookup`` maps a segment's exact text to its (possibly cached)
    :class:`StatementFragment`.  Returns ``None`` when the text cannot
    be segmented (MySQL ``/*!`` hints) — the caller falls back to
    whole-file :func:`~repro.sqlparser.parse_schema`.
    """
    if "stdin" in text:
        text = strip_copy_blocks(text)
    segments = segment_statements(text)
    if segments is None:
        return None
    fragments = [lookup(segment.text) for segment in segments]

    if dialect is None:
        mask = whole_text_signal_mask(text)
        for fragment in fragments:
            mask |= fragment.signal_mask
        dialect = dialect_from_mask(mask)

    schema = Schema(dialect=dialect)
    result = ParseResult(schema=schema)
    copy_on_write = any(f.kind is MUTATING for f in fragments)
    key_index = schema.key_index
    issues = result.issues

    for segment, fragment in zip(segments, fragments):
        if fragment.kind is PURE and fragment.table.key not in key_index:
            result.statements_total += 1
            table = fragment.table.copy() if copy_on_write else fragment.table
            schema.add_table(table)
            result.statements_applied += 1
            continue
        # replay the cached tokens against live schema state
        before = len(issues)
        for group in fragment.groups:
            apply_statement(group, schema, result)
        offset = segment.line - 1
        if offset and len(issues) > before:
            for idx in range(before, len(issues)):
                issue = issues[idx]
                issues[idx] = ParseIssue(issue.line + offset, issue.message)
    return result
