"""Performance layer: parse caching, parallel drivers, stage timing.

The extraction pipeline (corpus → mine → measure → figures) is
embarrassingly parallel across projects and dominated by DDL parsing;
this package supplies the three pieces of engineering that make the
study scale:

* :mod:`repro.perf.cache` — a content-addressed memo of ``parse_schema``
  keyed on (sha256 of the DDL text, dialect), with an optional on-disk
  store shared across processes and runs;
* :mod:`repro.perf.timing` — the per-stage wall-clock breakdown carried
  by :class:`~repro.analysis.study.StudyResult`;
* :mod:`repro.perf.parallel` — picklable worker functions for the
  ``ProcessPoolExecutor`` fan-out in ``run_study`` / ``generate_corpus``.
"""

from .cache import (
    CacheStats,
    ParseCache,
    cached_parse_schema,
    configure_cache,
    get_cache,
)
from .timing import StudyTimings, stage_timer

__all__ = [
    "CacheStats",
    "ParseCache",
    "StudyTimings",
    "cached_parse_schema",
    "configure_cache",
    "get_cache",
    "stage_timer",
]
