"""Performance layer: parse caching, parallel drivers, stage timing.

The extraction pipeline (corpus → mine → measure → figures) is
embarrassingly parallel across projects and dominated by DDL parsing;
this package supplies the three pieces of engineering that make the
study scale:

* :mod:`repro.perf.cache` — a content-addressed memo of ``parse_schema``
  keyed on (sha256 of the DDL text, dialect), with an optional on-disk
  store shared across processes and runs;
* :mod:`repro.perf.timing` — the per-stage wall-clock breakdown carried
  by :class:`~repro.analysis.study.StudyResult`;
* :mod:`repro.perf.parallel` — picklable worker functions for the
  ``ProcessPoolExecutor`` fan-out in ``run_study`` / ``generate_corpus``;
* :mod:`repro.perf.fragments` — the incremental statement-level parse
  engine behind the cache's miss path (fragment + element reuse);
* :mod:`repro.perf.pool` — the reusable warm worker pool shared by the
  generate and mine fan-outs.
"""

from .cache import (
    CacheStats,
    ParseCache,
    cached_parse_schema,
    configure_cache,
    get_cache,
)
from .pool import shutdown_pools, warm_pool
from .timing import StudyTimings, stage_timer

__all__ = [
    "CacheStats",
    "ParseCache",
    "StudyTimings",
    "cached_parse_schema",
    "configure_cache",
    "get_cache",
    "shutdown_pools",
    "stage_timer",
    "warm_pool",
]
