"""Per-stage wall-clock accounting for the study pipeline.

A :class:`StudyTimings` is attached to every
:class:`~repro.analysis.study.StudyResult`: the driver records the
mine / analyze split (summed across workers when running parallel),
``canonical_study`` adds the corpus-generation stage, and callers that
render figures can add a ``figures`` stage.  Cache counters ride along
so ``--profile`` output and ``BENCH_study.json`` expose the parse-cache
hit rate next to the stage breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .cache import CacheStats

#: Canonical stage names, in pipeline order (used for stable rendering).
STAGE_ORDER = (
    "generate", "mine", "analyze", "aggregate", "figures", "statistics",
    "report", "total",
)

#: The *map* stages of the sharded pipeline: one artifact per project
#: shard, so their hit/recompute counts scale with the corpus.
MAP_STAGES = ("generate", "mine", "analyze")

#: The *reduce* stages: one whole-corpus artifact each, keyed over the
#: sorted shard digests of the map family they fold.
REDUCE_STAGES = ("aggregate", "figures", "statistics", "report")


@dataclass(frozen=True)
class ArtifactStats:
    """Hit / recompute counts of one stage against the artifact store."""

    hits: int = 0
    recomputes: int = 0

    def __add__(self, other: "ArtifactStats") -> "ArtifactStats":
        return ArtifactStats(
            hits=self.hits + other.hits,
            recomputes=self.recomputes + other.recomputes,
        )

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "recomputes": self.recomputes}


@dataclass
class StudyTimings:
    """Stage → seconds, plus parallelism and parse-cache counters.

    ``resources`` maps a scope name — a stage, ``"driver"`` for the
    whole run, ``"workers"`` for the pool processes — to its
    ``{"peak_rss_bytes", "cpu_seconds"}`` footprint, recorded by the
    :mod:`repro.obs.resources` sampler.  Empty when telemetry is off or
    the platform exposes no RSS source; consumers must treat the block
    as optional.
    """

    stages: dict[str, float] = field(default_factory=dict)
    jobs: int = 1
    cache: CacheStats = field(default_factory=CacheStats)
    artifacts: dict[str, ArtifactStats] = field(default_factory=dict)
    resources: dict[str, dict] = field(default_factory=dict)
    #: Streaming-execution counters (backpressure window, spill stats,
    #: watchdog state) — optional like ``resources``; absent on fused
    #: runs and on records written before the streaming engine landed.
    streaming: dict[str, object] = field(default_factory=dict)

    def record(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` into ``stage``.

        Repeated records *sum*: the driver calls this once per worker
        result, so with ``jobs > 1`` a stage holds total worker seconds
        across processes (which can exceed the wall-clock ``total``).
        """
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def record_wall(self, seconds: float) -> None:
        """Set the run's wall-clock ``total`` (assignment, not a sum).

        ``record("total", ...)`` sums like any stage row, which let a
        caller that timed generation separately double-count the
        already-included wall total.  The whole-run clock has exactly
        one owner, so the owner *sets* it.
        """
        self.stages["total"] = seconds

    def record_resource(self, scope: str, sample) -> None:
        """Fold one resource sample into ``scope``.

        ``sample`` is a :class:`~repro.obs.resources.ResourceSample` or
        an equivalent ``{"peak_rss_bytes", "cpu_seconds"}`` dict.
        Peaks fold by ``max`` (a scope's footprint is its high-water
        mark across however many windows fed it), CPU seconds sum —
        mirroring the seconds semantics of :meth:`record`.  All-zero
        samples (no readable RSS source) are dropped so the telemetry
        block stays absent rather than asserting a zero-byte run.
        """
        if hasattr(sample, "as_dict"):
            sample = sample.as_dict()
        peak = int(sample.get("peak_rss_bytes") or 0)
        cpu = float(sample.get("cpu_seconds") or 0.0)
        if peak <= 0 and cpu <= 0.0:
            return
        current = self.resources.get(scope)
        if current is None:
            self.resources[scope] = {
                "peak_rss_bytes": peak,
                "cpu_seconds": round(cpu, 6),
            }
        else:
            current["peak_rss_bytes"] = max(
                current["peak_rss_bytes"], peak
            )
            current["cpu_seconds"] = round(
                current["cpu_seconds"] + cpu, 6
            )

    def record_streaming(self, key: str, value) -> None:
        """Record one streaming-execution counter block (assignment).

        ``key`` names the block (``"window"``, ``"aggregate_spill"``,
        ``"memory_watchdog"``); the owner sets it once at the end of the
        phase it describes, like :meth:`record_wall`.
        """
        self.streaming[key] = value

    def record_artifact(self, stage: str, *, hit: bool) -> None:
        """Count one store outcome (hit or recompute) for ``stage``."""
        current = self.artifacts.get(stage, ArtifactStats())
        self.artifacts[stage] = current + ArtifactStats(
            hits=int(hit), recomputes=int(not hit)
        )

    @property
    def artifact_totals(self) -> ArtifactStats:
        """Hits / recomputes summed over every stage."""
        total = ArtifactStats()
        for stats in self.artifacts.values():
            total = total + stats
        return total

    def merge_cache(self, stats: CacheStats) -> None:
        self.cache = self.cache + stats

    def merge(self, other: "StudyTimings") -> "StudyTimings":
        """Fold another accounting into this one (worker → driver).

        Sum semantics throughout: every stage of ``other`` is added to
        the same stage here (creating it at zero if absent) and the
        cache counters add element-wise, so merging per-worker timings
        yields total worker seconds per stage.  ``jobs`` keeps the
        receiving (driver) value.  Returns ``self`` for chaining.
        """
        for stage, seconds in other.stages.items():
            self.record(stage, seconds)
        self.merge_cache(other.cache)
        for stage, stats in other.artifacts.items():
            current = self.artifacts.get(stage, ArtifactStats())
            self.artifacts[stage] = current + stats
        for scope, sample in other.resources.items():
            self.record_resource(scope, sample)
        return self

    def eta_seconds(
        self,
        done: int,
        total: int,
        stages: tuple[str, ...] = ("mine", "analyze"),
        *,
        parallelism: int | None = None,
    ) -> float | None:
        """Estimated wall seconds left after ``done`` of ``total`` items.

        Uses the summed worker seconds recorded for ``stages`` so far
        (mean per completed item, divided by the *effective* parallelism
        to approximate wall clock under the fan-out).  ``parallelism``
        caps that divisor: a backpressured map runs at most its
        in-flight window wide, so with ``jobs=8`` but a window of 2 the
        honest divisor is 2, not 8 — without the cap a windowed run's
        ETA reads 4× too optimistic.  Returns ``None`` when the stages
        carry no seconds yet — callers fall back to wall-clock
        extrapolation — and ``0.0`` once nothing remains.
        """
        if done <= 0 or total <= done:
            return 0.0
        worked = sum(self.stages.get(stage, 0.0) for stage in stages)
        if worked <= 0.0:
            return None
        effective = max(1, self.jobs)
        if parallelism is not None:
            effective = max(1, min(effective, parallelism))
        return worked / done * (total - done) / effective

    @contextmanager
    def timed(self, stage: str):
        """Context manager recording the block's wall time into ``stage``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(stage, time.perf_counter() - start)

    def ordered_stages(self) -> list[tuple[str, float]]:
        """(stage, seconds) pairs, pipeline stages first, extras after."""
        known = [
            (name, self.stages[name])
            for name in STAGE_ORDER
            if name in self.stages
        ]
        extras = sorted(
            (name, seconds)
            for name, seconds in self.stages.items()
            if name not in STAGE_ORDER
        )
        return known + extras

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (the ``BENCH_study.json`` payload core).

        The ``artifact_store`` block appears only when the run actually
        resolved stages through the store, so fused-engine runs keep
        their historical payload shape.
        """
        payload: dict[str, object] = {
            "jobs": self.jobs,
            "stages": {
                name: round(seconds, 6)
                for name, seconds in self.ordered_stages()
            },
            "parse_cache": self.cache.as_dict(),
        }
        if self.artifacts:
            totals = self.artifact_totals
            lookups = totals.hits + totals.recomputes
            map_stats = ArtifactStats()
            reduce_stats = ArtifactStats()
            for name, stats in self.artifacts.items():
                if name in MAP_STAGES:
                    map_stats = map_stats + stats
                else:
                    reduce_stats = reduce_stats + stats
            payload["artifact_store"] = {
                "stages": {
                    name: self.artifacts[name].as_dict()
                    for name in sorted(self.artifacts)
                },
                "hits": totals.hits,
                "recomputes": totals.recomputes,
                "hit_rate": round(
                    totals.hits / lookups if lookups else 0.0, 4
                ),
                # the map/reduce split: map counts are per-shard (they
                # scale with the corpus), reduce counts are per-stage
                "map": map_stats.as_dict(),
                "reduce": reduce_stats.as_dict(),
            }
        if self.resources:
            # headline peak first (what bench-check's drift guard
            # reads), then the per-scope breakdown
            payload["resources"] = {
                "peak_rss_bytes": max(
                    entry["peak_rss_bytes"]
                    for entry in self.resources.values()
                ),
                "scopes": {
                    name: dict(self.resources[name])
                    for name in sorted(self.resources)
                },
            }
        if self.streaming:
            payload["streaming"] = {
                key: self.streaming[key] for key in sorted(self.streaming)
            }
        return payload

    def render(self) -> str:
        """Human-readable breakdown for ``repro-study study --profile``.

        With ``jobs > 1`` the mine/analyze rows are worker seconds summed
        across processes, so they can exceed the wall-clock ``total``.
        """
        suffix = ", stage rows are summed worker seconds" if self.jobs > 1 else ""
        lines = [f"Stage timings (jobs={self.jobs}{suffix}):"]
        for name, seconds in self.ordered_stages():
            lines.append(f"  {name:<10} {seconds:8.3f}s")
        cache = self.cache
        lines.append(
            f"  parse cache: {cache.hits} hits / {cache.misses} misses "
            f"({cache.hit_rate:.0%} hit rate, {cache.disk_hits} from disk)"
        )
        if cache.statement_lookups:
            # the incremental engine's own block: whole-version misses
            # above, per-statement reuse inside those misses here
            lines.append(
                f"  statements:  {cache.statement_hits} hits / "
                f"{cache.statement_misses} misses "
                f"({cache.statement_reuse_rate:.0%} parse-unit reuse, "
                f"{cache.fallback_parses} whole-file fallbacks)"
            )
        if self.artifacts:
            totals = self.artifact_totals
            warm = ", ".join(
                name for name in sorted(self.artifacts)
                if self.artifacts[name].hits
            ) or "none"
            lines.append(
                f"  artifact store: {totals.hits} hits / "
                f"{totals.recomputes} recomputes (warm: {warm})"
            )
        if self.resources:
            parts = ", ".join(
                f"{name} {self.resources[name]['peak_rss_bytes'] / 2**20:.0f} MiB"
                for name in sorted(self.resources)
            )
            lines.append(f"  peak RSS: {parts}")
        window = self.streaming.get("window")
        if window:
            lines.append(
                f"  streaming:   window {window.get('max_in_flight', 0)} "
                f"in flight, {window.get('submitted', 0)} submitted, "
                f"{window.get('shrinks', 0)} shrinks"
            )
        return "\n".join(lines)


@contextmanager
def stage_timer():
    """Yield a callable reading elapsed seconds since block entry."""
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start
