"""Picklable worker functions for the process-pool fan-out.

``run_study(corpus, jobs=N)`` and ``generate_corpus(jobs=N)`` ship each
project to a ``ProcessPoolExecutor`` worker through these module-level
functions (bound methods and closures cannot cross the pickle
boundary).  Each worker returns its own stage timings and parse-cache
deltas so the parent can aggregate a corpus-wide breakdown; every
worker process warms its own in-memory cache (and shares the on-disk
store when one is configured).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..analysis.measures import ProjectMeasures, analyze_project
from ..corpus.generator import (
    GeneratedProject,
    ProjectSpec,
    generate_project,
)
from ..corpus.profiles import TaxonProfile
from ..heartbeat import ZeroTotalError
from ..mining import mine_project
from .cache import CacheStats, get_cache


@dataclass
class MinedRow:
    """One project's worker result: a measure row or a skip."""

    name: str
    row: ProjectMeasures | None
    mine_seconds: float
    analyze_seconds: float
    cache: CacheStats

    @property
    def skipped(self) -> bool:
        return self.row is None


def mine_and_analyze(project: GeneratedProject) -> MinedRow:
    """The per-project unit of study work (also used by the serial path).

    Skips (``ZeroTotalError``) are carried in-band: raising across the
    process boundary would poison the whole chunk.
    """
    before = get_cache().stats
    start = time.perf_counter()
    history = mine_project(project.repository)
    mined = time.perf_counter()
    try:
        row = analyze_project(history, true_taxon=project.true_taxon)
    except ZeroTotalError:
        row = None
    done = time.perf_counter()
    return MinedRow(
        name=project.name,
        row=row,
        mine_seconds=mined - start,
        analyze_seconds=done - mined,
        cache=get_cache().stats - before,
    )


def generate_one(
    spec_and_profile: tuple[ProjectSpec, TaxonProfile]
) -> GeneratedProject:
    """Generate one project from its (spec, profile) pair.

    Deterministic regardless of scheduling: every project draws from its
    own ``spec.seed``-rooted RNG, so parallel generation is bit-identical
    to the serial loop.
    """
    spec, profile = spec_and_profile
    return generate_project(spec, profile)


def pool_chunksize(n_items: int, jobs: int) -> int:
    """A chunk size amortising pickling without starving the pool."""
    if jobs <= 1:
        return max(1, n_items)
    return max(1, n_items // (jobs * 4))
