"""Picklable worker functions for the process-pool fan-out.

``run_study(corpus, jobs=N)`` and ``generate_corpus(jobs=N)`` ship each
project to a ``ProcessPoolExecutor`` worker through these module-level
functions (bound methods and closures cannot cross the pickle
boundary).  Each worker returns its own stage timings, parse-cache
deltas, metrics deltas, warning window and (when tracing is enabled) the
serialised span tree of its work, so the parent can aggregate a
corpus-wide breakdown and reattach every worker span under its own
dispatching span; every worker process warms its own in-memory cache
(and shares the on-disk store when one is configured).

The same functions run in-process on the serial path, so serial and
parallel runs flow through identical instrumentation and produce
identical results.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field

from ..analysis.measures import ProjectMeasures, analyze_project
from ..corpus.generator import (
    GeneratedProject,
    ProjectSpec,
    generate_project,
)
from ..corpus.profiles import TaxonProfile
from ..heartbeat import ZeroTotalError
from ..mining import mine_project
from ..obs.bus import reset_bus
from ..obs.events import get_recorder, warn
from ..obs.metrics import MetricsSnapshot, get_metrics
from ..obs.resources import cpu_times, peak_rss_bytes
from ..obs.trace import get_tracer
from .cache import CacheStats, get_cache


@dataclass
class MinedRow:
    """One project's worker result: a measure row or a skip.

    Besides the row itself, a ``MinedRow`` carries everything the driver
    needs to reconstruct cross-process observability: stage seconds and
    cache deltas (summed into :class:`~repro.perf.timing.StudyTimings`),
    the metrics delta of the call, the warnings recorded during it, and
    the project's serialised span tree when tracing is on.
    """

    name: str
    row: ProjectMeasures | None
    mine_seconds: float
    analyze_seconds: float
    cache: CacheStats
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    warnings: list[dict] = field(default_factory=list)
    trace: dict | None = None
    #: The worker process's lifetime footprint at result time
    #: (``None`` on the in-process serial path, where the driver's own
    #: sampler window already covers the work).
    resources: dict | None = None

    @property
    def skipped(self) -> bool:
        return self.row is None


#: CPU clock at :func:`worker_init` time; ``None`` means this process
#: is the driver (serial path), whose footprint the driver's own
#: sampler windows already cover — workers alone ship samples back.
_worker_cpu_baseline: tuple[float, float] | None = None


def worker_init() -> None:
    """Detach inherited observability hooks in a pool worker.

    Forked workers inherit the driver's tracer and recorder *including*
    any live ``on_close``/``sink`` wired to an open ``--log-json``
    handle; left in place, every worker span and warning would be
    written twice — once from the worker through the duplicated file
    descriptor and once when the driver replays it at attach time.
    Workers therefore run sink-less: their spans and warnings travel
    back inside the :class:`MinedRow` and the driver alone emits them.
    The telemetry bus is reset for the same reason — a forked worker
    inherits the driver's bus *with* its event-log sink attached, and
    publishing through it would write through the duplicated file
    descriptor.  Workers publish into a fresh, consumer-less bus.

    Also marks the worker's CPU baseline so shipped resource samples
    report the worker's *work*, not its import/fork overhead, and so
    the serial path (where this initializer never runs) ships no
    sample at all.
    """
    tracer = get_tracer()
    tracer.on_close = None
    tracer.publish = False
    get_recorder().sink = None
    reset_bus()
    # a worker forked while --serve is up inherits the listening
    # socket fd; left open, the kernel keeps accepting on the port
    # after the driver shuts the server down (guarded import: a no-op
    # unless the driver loaded the server module)
    server_mod = sys.modules.get("repro.obs.server")
    if server_mod is not None:
        server_mod.close_inherited_sockets()
    global _worker_cpu_baseline
    _worker_cpu_baseline = cpu_times()


def _worker_sample() -> dict | None:
    """This worker's footprint for the driver, ``None`` on the driver.

    A pool worker is a single-purpose process, so its lifetime peak RSS
    *is* its work's peak — no sampler window needs to cross the pickle
    boundary.  CPU seconds are measured from the :func:`worker_init`
    baseline.
    """
    if _worker_cpu_baseline is None:
        return None
    user, system = cpu_times()
    return {
        "peak_rss_bytes": peak_rss_bytes(),
        "cpu_seconds": round(
            max(0.0, user - _worker_cpu_baseline[0])
            + max(0.0, system - _worker_cpu_baseline[1]),
            6,
        ),
        "pid": os.getpid(),
    }


def mine_and_analyze(project: GeneratedProject) -> MinedRow:
    """The per-project unit of study work (also used by the serial path).

    Skips (``ZeroTotalError``) are carried in-band: raising across the
    process boundary would poison the whole chunk.  The project's spans
    are built detached (no parent) and shipped back as a dict; the
    driver reattaches them under its dispatching span.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    recorder = get_recorder()
    cache_before = get_cache().stats
    metrics_before = metrics.snapshot()
    warn_mark = recorder.mark()
    # the worker pid becomes the span's thread lane in Chrome exports
    with tracer.detached(
        "project", project=project.name, worker=os.getpid()
    ) as span:
        start = time.perf_counter()
        with tracer.span("mine") as mine_span:
            history = mine_project(project.repository)
            mine_span.set(
                versions=history.schema_history.commit_count,
                months=history.duration_months,
            )
        mined = time.perf_counter()
        try:
            with tracer.span("analyze"):
                row = analyze_project(history, true_taxon=project.true_taxon)
        except ZeroTotalError:
            row = None
        done = time.perf_counter()
    metrics.inc("projects.mined")
    if row is None:
        metrics.inc("projects.skipped")
        warn(
            "empty-history",
            f"{project.name}: zero total activity on one side; "
            "project skipped",
            project=project.name,
        )
    for kind, count in _change_counts(history).items():
        metrics.inc(f"changes.{kind}", count)
    return MinedRow(
        name=project.name,
        row=row,
        mine_seconds=mined - start,
        analyze_seconds=done - mined,
        cache=get_cache().stats - cache_before,
        metrics=metrics.snapshot() - metrics_before,
        warnings=recorder.since(warn_mark),
        trace=span.to_dict() if tracer.enabled else None,
        resources=_worker_sample(),
    )


@dataclass
class MinedHistory:
    """One project's mine-only worker result (the stage-graph unit).

    The pipeline's ``mine`` stage stops before analysis so its artifact
    can be reused by every downstream consumer; like :class:`MinedRow`
    it carries the cross-process observability channels, but its payload
    is the full :class:`~repro.mining.ProjectHistory` plus the ground
    truth the ``analyze`` stage needs.
    """

    name: str
    history: object  # ProjectHistory (kept untyped: pickled across pools)
    true_taxon: object
    seconds: float
    cache: CacheStats
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    warnings: list[dict] = field(default_factory=list)
    trace: dict | None = None
    resources: dict | None = None


def mine_one(
    project: GeneratedProject, *, source: str = "ddl"
) -> MinedHistory:
    """The per-project unit of the pipeline's ``mine`` stage.

    Mirrors :func:`mine_and_analyze` up to (and excluding) analysis:
    the same detached ``project``/``mine`` span pair, the same
    ``projects.mined`` and ``changes.*`` counters, the same cache /
    metrics / warning deltas shipped back to the driver.  Analysis —
    and the empty-history skip decision it makes — happens driver-side
    in the ``analyze`` stage.  ``source`` names the
    :class:`~repro.mining.sources.HistorySource` the schema half mines
    through (the workload's source half; ``"ddl"`` is canonical).
    """
    tracer = get_tracer()
    metrics = get_metrics()
    recorder = get_recorder()
    cache_before = get_cache().stats
    metrics_before = metrics.snapshot()
    warn_mark = recorder.mark()
    with tracer.detached(
        "project", project=project.name, worker=os.getpid()
    ) as span:
        start = time.perf_counter()
        with tracer.span("mine") as mine_span:
            history = mine_project(project.repository, source=source)
            mine_span.set(
                versions=history.schema_history.commit_count,
                months=history.duration_months,
            )
        done = time.perf_counter()
    metrics.inc("projects.mined")
    for kind, count in _change_counts(history).items():
        metrics.inc(f"changes.{kind}", count)
    return MinedHistory(
        name=project.name,
        history=history,
        true_taxon=project.true_taxon,
        seconds=done - start,
        cache=get_cache().stats - cache_before,
        metrics=metrics.snapshot() - metrics_before,
        warnings=recorder.since(warn_mark),
        trace=span.to_dict() if tracer.enabled else None,
        resources=_worker_sample(),
    )


@dataclass
class ShardTask:
    """One cold map shard shipped to the fan-out.

    ``project`` carries a warm ``generate`` artifact payload when only
    the mine work is cold; ``None`` means the worker generates first.
    ``spec``/``profile`` are always present — they are the shard's
    identity, and generation needs them.  ``source`` names the history
    source the mine half runs through (the workload's source half;
    the default keeps canonical tasks pickle-compatible).
    """

    spec: ProjectSpec
    profile: TaxonProfile
    project: GeneratedProject | None = None
    source: str = "ddl"


@dataclass
class ShardResult:
    """What one fused map-shard unit hands back to the driver.

    ``generated`` is the freshly generated project when the worker had
    to generate (the driver stores it as the shard's ``generate``
    artifact), ``None`` when the task arrived with a warm project.
    The mine half always runs; its observability channels ride on
    ``mined`` exactly as in the unsharded stage.
    """

    name: str
    mined: MinedHistory
    generated: GeneratedProject | None = None
    generate_seconds: float = 0.0


def map_shard(task: ShardTask) -> ShardResult:
    """The fused per-shard unit of the map phase: generate? + mine.

    One code path for serial (``map``) and parallel (``executor.map``)
    runs: a cold shard generates its project from ``spec.seed`` (bit
    identical regardless of scheduling) and mines it in the same
    worker, so the project never crosses the process boundary twice.
    Analysis stays driver-side — it is orders of magnitude cheaper and
    owns the skip decision.
    """
    project = task.project
    generated = None
    generate_seconds = 0.0
    if project is None:
        start = time.perf_counter()
        project = generate_project(task.spec, task.profile)
        generate_seconds = time.perf_counter() - start
        generated = project
    return ShardResult(
        name=task.spec.name,
        mined=mine_one(project, source=task.source),
        generated=generated,
        generate_seconds=generate_seconds,
    )


def _change_counts(history) -> dict[str, int]:
    """Atomic-change totals by kind over one project's whole history."""
    totals: dict[str, int] = {}
    for transition in history.schema_history.transitions:
        for change in transition.delta.changes:
            kind = change.kind.value
            totals[kind] = totals.get(kind, 0) + 1
    return totals


def generate_one(
    spec_and_profile: tuple[ProjectSpec, TaxonProfile]
) -> GeneratedProject:
    """Generate one project from its (spec, profile) pair.

    Deterministic regardless of scheduling: every project draws from its
    own ``spec.seed``-rooted RNG, so parallel generation is bit-identical
    to the serial loop.  When tracing is enabled the project carries its
    detached ``generate_project`` span in ``project.trace``.
    """
    spec, profile = spec_and_profile
    return generate_project(spec, profile)


def pool_chunksize(n_items: int, jobs: int) -> int:
    """A chunk size amortising pickling without starving the pool."""
    if jobs <= 1:
        return max(1, n_items)
    return max(1, n_items // (jobs * 4))


@dataclass
class WindowStats:
    """What one :func:`window_map` drive actually did.

    ``max_in_flight`` is the high-water mark of simultaneously
    submitted-but-undrained tasks — the memory bound the window
    enforces.  ``shrinks`` counts the times a callable ``window``
    returned a smaller limit than the previous check (the memory
    watchdog's auto-shrink leaves its trail here).
    """

    submitted: int = 0
    completed: int = 0
    max_in_flight: int = 0
    shrinks: int = 0
    _last_limit: int | None = field(default=None, repr=False)

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "max_in_flight": self.max_in_flight,
            "shrinks": self.shrinks,
        }


def window_map(fn, items, *, executor=None, window=2, stats=None):
    """Backpressured fan-out: map ``fn`` over tasks, a window at a time.

    ``items`` yields ``(tag, kind, value)`` triples in corpus order:

    - ``kind == "ready"`` — ``value`` is already a result (a warm shard
      payload); it flows through untouched, in order.
    - ``kind == "task"`` — ``value`` is an argument for ``fn``.  With an
      ``executor`` it is submitted; serially it is evaluated lazily at
      drain time.  Either way at most ``window`` tasks are in flight at
      once — the producer is *not* advanced while the window is full,
      so planning, submission and result memory are all bounded.

    Yields ``(tag, result)`` strictly in item order (the reduce fold
    must see corpus order to stay byte-identical with the fused
    engine).  ``window`` may be a callable returning the current limit —
    the memory watchdog shrinks it under pressure; a limit drop takes
    effect at the next admission check, draining the surplus before any
    new submission.
    """
    from collections import deque

    if stats is None:
        stats = WindowStats()
    limit = window if callable(window) else (lambda: window)
    pending: deque = deque()

    def drain():
        tag, kind, value = pending.popleft()
        if kind == "task":
            stats.completed += 1
            if executor is None:
                return tag, fn(value)
            return tag, value.result()
        return tag, value

    def current_limit() -> int:
        now = max(1, int(limit()))
        if stats._last_limit is not None and now < stats._last_limit:
            stats.shrinks += 1
        stats._last_limit = now
        return now

    for item in items:
        tag, kind, value = item
        if kind == "task":
            if executor is not None:
                value = executor.submit(fn, value)
            stats.submitted += 1
        pending.append((tag, kind, value))
        in_flight = sum(1 for _, k, _v in pending if k == "task")
        stats.max_in_flight = max(stats.max_in_flight, in_flight)
        # ready fronts drain for free (order-preserving, keeps warm
        # payloads from piling up behind an in-flight task); a full
        # window blocks on the front task before admitting more work
        while pending and (
            pending[0][1] == "ready" or len(pending) >= current_limit()
        ):
            yield drain()
    while pending:
        yield drain()
