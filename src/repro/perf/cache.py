"""Content-addressed memoisation of DDL parsing.

Mining re-parses every version of every project's schema file; across a
study run that is thousands of ``parse_schema`` calls, and across
repeated CLI / benchmark runs the very same scripts are re-lexed from
scratch.  A :class:`ParseCache` keys parse results on the SHA-256 of the
script text plus the dialect hint, so identical inputs are parsed once:

* the in-memory layer is process-local and always on;
* the optional on-disk layer (``cache_dir`` / ``REPRO_CACHE_DIR``)
  persists pickled :class:`~repro.sqlparser.ParseResult` objects across
  processes and runs.  Writes are atomic (temp file + ``os.replace``),
  so concurrent workers sharing a directory never observe torn entries;
  each worker process still warms its own in-memory layer.

Cached results are shared objects: callers must treat the returned
schema as immutable (the mining pipeline only ever reads parsed
schemas).  Hit/miss counters feed the study's timing instrumentation.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

from ..pipeline.store import atomic_write_pickle, read_pickle
from ..sqlparser import ParseResult, parse_schema

#: Environment variable enabling the on-disk store for the default cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache's life so far (monotone, snapshot-able)."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from memory or disk (0 if none)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            disk_hits=self.disk_hits - other.disk_hits,
        )

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            disk_hits=self.disk_hits + other.disk_hits,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "hit_rate": round(self.hit_rate, 4),
        }


def content_key(text: str, dialect: str | None) -> str:
    """The cache key: sha256 over the dialect hint and the script text."""
    hasher = hashlib.sha256()
    hasher.update((dialect or "").encode())
    hasher.update(b"\x00")
    hasher.update(text.encode("utf-8", errors="surrogateescape"))
    return hasher.hexdigest()


class ParseCache:
    """Memoises ``parse_schema`` on (content hash, dialect).

    Args:
        cache_dir: when given, parse results are also pickled under this
            directory so later processes and runs start warm.
    """

    def __init__(self, cache_dir: str | Path | None = None):
        self._memory: dict[str, ParseResult] = {}
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._degrade_warned = False
        self.cache_dir: Path | None = None
        if cache_dir is not None:
            try:
                Path(cache_dir).mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                # an unusable cache dir (e.g. the path is an existing
                # file, or a read-only parent) degrades to memory-only
                self._warn_degraded(cache_dir, exc)
            else:
                self.cache_dir = Path(cache_dir)

    def _warn_degraded(self, cache_dir, exc: OSError) -> None:
        """Emit the cache-degrade warning event (once per cache)."""
        if self._degrade_warned:
            return
        self._degrade_warned = True
        from ..obs.events import warn

        warn(
            "cache-dir-degraded",
            f"parse cache dir {str(cache_dir)!r} unusable "
            f"({exc.__class__.__name__}: {exc}); running memory-only",
            cache_dir=str(cache_dir),
        )

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits, misses=self._misses, disk_hits=self._disk_hits
        )

    def clear(self) -> None:
        """Drop the in-memory layer (the disk store is left intact)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    def parse(self, text: str, *, dialect: str | None = None) -> ParseResult:
        """``parse_schema`` through the cache."""
        key = content_key(text, dialect)
        cached = self._memory.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        if self.cache_dir is not None:
            from_disk = self._load(key)
            if from_disk is not None:
                self._hits += 1
                self._disk_hits += 1
                self._memory[key] = from_disk
                return from_disk
        self._misses += 1
        result = parse_schema(text, dialect=dialect)
        self._memory[key] = result
        if self.cache_dir is not None:
            self._store(key, result)
        return result

    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def _load(self, key: str) -> ParseResult | None:
        result = read_pickle(self._path_for(key))
        return result if isinstance(result, ParseResult) else None

    def _store(self, key: str, result: ParseResult) -> None:
        path = self._path_for(key)
        try:
            atomic_write_pickle(path, result)
        except OSError as exc:
            # a read-only or full cache dir degrades to memory-only
            self._warn_degraded(path.parent, exc)


# ----------------------------------------------------------------------
# the process-global default cache
_active: ParseCache | None = None


def get_cache() -> ParseCache:
    """The process's active cache (created on first use).

    Honours :data:`CACHE_DIR_ENV` at creation time, so worker processes
    — forked or spawned — pick up the study's ``--cache-dir`` without
    any explicit plumbing.
    """
    global _active
    if _active is None:
        _active = ParseCache(cache_dir=os.environ.get(CACHE_DIR_ENV) or None)
    return _active


def configure_cache(cache_dir: str | Path | None = None) -> ParseCache:
    """Replace the active cache (fresh counters, optional disk store).

    Also exports :data:`CACHE_DIR_ENV` so worker processes spawned later
    inherit the same disk store.
    """
    global _active
    if cache_dir is not None:
        os.environ[CACHE_DIR_ENV] = str(cache_dir)
    else:
        os.environ.pop(CACHE_DIR_ENV, None)
    _active = ParseCache(cache_dir=cache_dir)
    return _active


def cached_parse_schema(
    text: str, *, dialect: str | None = None
) -> ParseResult:
    """Drop-in replacement for ``parse_schema`` through the active cache."""
    return get_cache().parse(text, dialect=dialect)
