"""Content-addressed memoisation of DDL parsing.

Mining re-parses every version of every project's schema file; across a
study run that is thousands of ``parse_schema`` calls, and across
repeated CLI / benchmark runs the very same scripts are re-lexed from
scratch.  A :class:`ParseCache` keys parse results on the SHA-256 of the
script text plus the dialect hint, so identical inputs are parsed once:

* the in-memory layer is process-local and always on;
* the optional on-disk layer (``cache_dir`` / ``REPRO_CACHE_DIR``)
  persists pickled :class:`~repro.sqlparser.ParseResult` objects across
  processes and runs.  Writes are atomic (temp file + ``os.replace``),
  so concurrent workers sharing a directory never observe torn entries;
  each worker process still warms its own in-memory layer.

Cached results are shared objects: callers must treat the returned
schema as immutable (the mining pipeline only ever reads parsed
schemas).  Hit/miss counters feed the study's timing instrumentation.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

from ..pipeline.store import atomic_write_pickle, read_pickle
from ..sqlparser import ParseResult, parse_schema
from ..sqlparser.parser import set_element_cache
from .fragments import (
    ElementCache,
    StatementFragment,
    compile_fragment,
    parse_schema_fragmented,
)

#: Environment variable enabling the on-disk store for the default cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache's life so far (monotone, snapshot-able).

    Three granularities are tracked:

    * whole-version lookups (``hits`` / ``misses`` / ``disk_hits``) —
      near-zero hit rate on a cold run by construction, since every
      version of every file is new text;
    * statement-fragment lookups inside each whole-version miss
      (``statement_hits`` / ``statement_misses``), plus
      ``fallback_parses`` counting versions that could not be segmented
      (semicolons inside MySQL ``/*!`` hint bodies) and went through
      the monolithic parser;
    * *parse units* (``unit_hits`` / ``unit_misses``): statements
      weighted by the work they carry — one unit per CREATE TABLE body
      element (column / constraint, shared corpus-wide through the
      element memo), one unit for any other statement.  A fully reused
      statement scores all its units as hits; a statement that changed
      in one column scores that column as the only unit miss.

    ``statement_reuse_rate`` is the unit-weighted rate — the number
    that actually reflects how much parse work the incremental engine
    is skipping.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    statement_hits: int = 0
    statement_misses: int = 0
    fallback_parses: int = 0
    unit_hits: int = 0
    unit_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from memory or disk (0 if none)."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def statement_lookups(self) -> int:
        return self.statement_hits + self.statement_misses

    @property
    def statement_reuse_rate(self) -> float:
        """Unit-weighted fraction of statement parse work reused (0 if none)."""
        lookups = self.unit_hits + self.unit_misses
        return self.unit_hits / lookups if lookups else 0.0

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            disk_hits=self.disk_hits - other.disk_hits,
            statement_hits=self.statement_hits - other.statement_hits,
            statement_misses=self.statement_misses - other.statement_misses,
            fallback_parses=self.fallback_parses - other.fallback_parses,
            unit_hits=self.unit_hits - other.unit_hits,
            unit_misses=self.unit_misses - other.unit_misses,
        )

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            disk_hits=self.disk_hits + other.disk_hits,
            statement_hits=self.statement_hits + other.statement_hits,
            statement_misses=self.statement_misses + other.statement_misses,
            fallback_parses=self.fallback_parses + other.fallback_parses,
            unit_hits=self.unit_hits + other.unit_hits,
            unit_misses=self.unit_misses + other.unit_misses,
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "hit_rate": round(self.hit_rate, 4),
            "statements": {
                "hits": self.statement_hits,
                "misses": self.statement_misses,
                "fallback_parses": self.fallback_parses,
                "unit_hits": self.unit_hits,
                "unit_misses": self.unit_misses,
                "reuse_rate": round(self.statement_reuse_rate, 4),
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheStats":
        """Rebuild from :meth:`as_dict` output (older records lack the
        ``statements`` block; their statement counters read as zero)."""
        statements = data.get("statements") or {}
        return cls(
            hits=int(data.get("hits", 0)),
            misses=int(data.get("misses", 0)),
            disk_hits=int(data.get("disk_hits", 0)),
            statement_hits=int(statements.get("hits", 0)),
            statement_misses=int(statements.get("misses", 0)),
            fallback_parses=int(statements.get("fallback_parses", 0)),
            unit_hits=int(statements.get("unit_hits", 0)),
            unit_misses=int(statements.get("unit_misses", 0)),
        )


def content_key(text: str, dialect: str | None) -> str:
    """The cache key: sha256 over the dialect hint and the script text."""
    hasher = hashlib.sha256()
    hasher.update((dialect or "").encode())
    hasher.update(b"\x00")
    hasher.update(text.encode("utf-8", errors="surrogateescape"))
    return hasher.hexdigest()


class ParseCache:
    """Memoises ``parse_schema`` on (content hash, dialect).

    Args:
        cache_dir: when given, parse results are also pickled under this
            directory so later processes and runs start warm.
    """

    def __init__(self, cache_dir: str | Path | None = None):
        self._memory: dict[str, ParseResult] = {}
        # statement-fragment layer: exact segment text -> compiled
        # fragment.  Memory-only: the shared Table objects inside would
        # lose their cross-version identity if round-tripped to disk.
        self._fragments: dict[str, StatementFragment] = {}
        self._elements = ElementCache()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._stmt_hits = 0
        self._stmt_misses = 0
        self._fallbacks = 0
        self._degrade_warned = False
        self.cache_dir: Path | None = None
        if cache_dir is not None:
            try:
                Path(cache_dir).mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                # an unusable cache dir (e.g. the path is an existing
                # file, or a read-only parent) degrades to memory-only
                self._warn_degraded(cache_dir, exc)
            else:
                self.cache_dir = Path(cache_dir)

    def _warn_degraded(self, cache_dir, exc: OSError) -> None:
        """Emit the cache-degrade warning event (once per cache)."""
        if self._degrade_warned:
            return
        self._degrade_warned = True
        from ..obs.events import warn

        warn(
            "cache-dir-degraded",
            f"parse cache dir {str(cache_dir)!r} unusable "
            f"({exc.__class__.__name__}: {exc}); running memory-only",
            cache_dir=str(cache_dir),
        )

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            disk_hits=self._disk_hits,
            statement_hits=self._stmt_hits,
            statement_misses=self._stmt_misses,
            fallback_parses=self._fallbacks,
            unit_hits=self._elements.hits,
            unit_misses=self._elements.misses,
        )

    def clear(self) -> None:
        """Drop the in-memory layers (the disk store is left intact).

        Counters are monotone and survive a clear (stats consumers
        subtract snapshots, so counters must never run backwards).
        """
        self._memory.clear()
        self._fragments.clear()
        fresh = ElementCache()
        fresh.hits = self._elements.hits
        fresh.misses = self._elements.misses
        self._elements = fresh

    # ------------------------------------------------------------------
    def parse(self, text: str, *, dialect: str | None = None) -> ParseResult:
        """``parse_schema`` through the cache.

        Whole-version hits come from memory or disk; misses go through
        the incremental fragment engine, which re-lexes only statements
        never seen before.  Inputs that cannot be segmented fall back
        to the monolithic parser.
        """
        key = content_key(text, dialect)
        cached = self._memory.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        if self.cache_dir is not None:
            from_disk = self._load(key)
            if from_disk is not None:
                self._hits += 1
                self._disk_hits += 1
                self._memory[key] = from_disk
                return from_disk
        self._misses += 1
        previous = set_element_cache(self._elements)
        try:
            result = parse_schema_fragmented(
                text, dialect=dialect, lookup=self._fragment_for
            )
            if result is None:
                self._fallbacks += 1
                result = parse_schema(text, dialect=dialect)
        finally:
            set_element_cache(previous)
        self._memory[key] = result
        if self.cache_dir is not None:
            self._store(key, result)
        return result

    def _fragment_for(self, fragment_text: str) -> StatementFragment:
        fragment = self._fragments.get(fragment_text)
        if fragment is None:
            self._stmt_misses += 1
            elements = self._elements
            before = elements.hits + elements.misses
            fragment = compile_fragment(fragment_text)
            element_lookups = elements.hits + elements.misses - before
            if element_lookups:
                fragment.units = element_lookups
            else:
                # no body elements touched: one unit per statement,
                # all fresh (comment-only fragments weigh nothing)
                fragment.units = len(fragment.groups)
                elements.misses += fragment.units
            self._fragments[fragment_text] = fragment
        else:
            self._stmt_hits += 1
            self._elements.hits += fragment.units
        return fragment

    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def _load(self, key: str) -> ParseResult | None:
        result = read_pickle(self._path_for(key))
        return result if isinstance(result, ParseResult) else None

    def _store(self, key: str, result: ParseResult) -> None:
        path = self._path_for(key)
        try:
            atomic_write_pickle(path, result)
        except OSError as exc:
            # a read-only or full cache dir degrades to memory-only
            self._warn_degraded(path.parent, exc)


# ----------------------------------------------------------------------
# the process-global default cache
_active: ParseCache | None = None


def get_cache() -> ParseCache:
    """The process's active cache (created on first use).

    Honours :data:`CACHE_DIR_ENV` at creation time, so worker processes
    — forked or spawned — pick up the study's ``--cache-dir`` without
    any explicit plumbing.
    """
    global _active
    if _active is None:
        _active = ParseCache(cache_dir=os.environ.get(CACHE_DIR_ENV) or None)
    return _active


def configure_cache(cache_dir: str | Path | None = None) -> ParseCache:
    """Replace the active cache (fresh counters, optional disk store).

    Also exports :data:`CACHE_DIR_ENV` so worker processes spawned later
    inherit the same disk store.
    """
    global _active
    if cache_dir is not None:
        os.environ[CACHE_DIR_ENV] = str(cache_dir)
    else:
        os.environ.pop(CACHE_DIR_ENV, None)
    _active = ParseCache(cache_dir=cache_dir)
    return _active


def cached_parse_schema(
    text: str, *, dialect: str | None = None
) -> ParseResult:
    """Drop-in replacement for ``parse_schema`` through the active cache."""
    return get_cache().parse(text, dialect=dialect)
