"""Co-evolution patching: joint schema + query adaptation."""

from .patcher import (
    CoEvolutionPlan,
    PatchedQuery,
    migration_script,
    patch_query,
    plan_coevolution,
)
from .rewrite import replace_identifiers

__all__ = [
    "CoEvolutionPlan",
    "PatchedQuery",
    "migration_script",
    "patch_query",
    "plan_coevolution",
    "replace_identifiers",
]
