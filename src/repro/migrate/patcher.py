"""Co-evolution patching: adapt queries to schema modifications.

Inspired by the demo paper [25] the study cites: a schema change is
described once (as an SMO) and the patcher derives both (a) the DDL to
apply, per vendor dialect, and (b) rewritten application queries where
the change is mechanically resolvable (renames).  Non-mechanical changes
(drops, type changes) are reported for human attention instead of being
guessed at.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..smo import SMO, DropAttribute, DropTable, RenameAttribute, RenameTable
from ..sqlparser.lexer import TokenType, tokenize
from .rewrite import replace_identifiers


@dataclass(frozen=True)
class PatchedQuery:
    """The outcome of patching one query under an SMO sequence."""

    original: str
    text: str
    changed: bool
    warnings: tuple[str, ...] = ()


def patch_query(query: str, smos: list[SMO]) -> PatchedQuery:
    """Rewrite ``query`` under a sequence of SMOs.

    Renames are applied textually (identifier-aware, not string
    replace); destructive operators produce warnings when the query
    references the dropped element.
    """
    text = query
    warnings: list[str] = []
    for smo in smos:
        if isinstance(smo, RenameTable):
            text = replace_identifiers(text, {smo.old_name: smo.new_name})
        elif isinstance(smo, RenameAttribute):
            text = replace_identifiers(text, {smo.old_name: smo.new_name})
        elif isinstance(smo, DropTable):
            if _mentions(text, smo.name):
                warnings.append(
                    f"query references dropped table {smo.name!r}; "
                    "manual adaptation required"
                )
        elif isinstance(smo, DropAttribute):
            if _mentions(text, smo.attribute):
                warnings.append(
                    f"query references dropped column "
                    f"{smo.table}.{smo.attribute}; manual adaptation required"
                )
    return PatchedQuery(
        original=query,
        text=text,
        changed=text != query,
        warnings=tuple(warnings),
    )


def _mentions(query: str, identifier: str) -> bool:
    wanted = identifier.lower()
    return any(
        token.type in (TokenType.WORD, TokenType.QUOTED)
        and token.value.lower() == wanted
        for token in tokenize(query)
    )


def migration_script(smos: list[SMO], *, dialect: str = "generic") -> str:
    """The DDL script realising an SMO sequence for one vendor."""
    statements = [smo.render_sql(dialect) for smo in smos]
    header = f"-- migration ({dialect})\n"
    return header + "\n".join(statements) + "\n"


@dataclass
class CoEvolutionPlan:
    """A change applied jointly to the schema and the query workload."""

    smos: list[SMO]
    ddl: str
    patches: list[PatchedQuery]

    @property
    def queries_changed(self) -> int:
        return sum(1 for p in self.patches if p.changed)

    @property
    def queries_needing_attention(self) -> int:
        return sum(1 for p in self.patches if p.warnings)


def plan_coevolution(
    smos: list[SMO],
    queries: list[str],
    *,
    dialect: str = "generic",
) -> CoEvolutionPlan:
    """Derive the joint schema + query adaptation for one change set."""
    return CoEvolutionPlan(
        smos=list(smos),
        ddl=migration_script(smos, dialect=dialect),
        patches=[patch_query(q, smos) for q in queries],
    )
