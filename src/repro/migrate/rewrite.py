"""Identifier-aware text rewriting for SQL strings.

String replace would corrupt queries (``user`` inside ``user_id``,
identifiers inside string literals); this rewriter tokenizes with the
shared SQL lexer and splices replacements back by source position, so
only genuine identifier tokens change and all surrounding text —
whitespace, comments, literals — survives byte-for-byte.
"""

from __future__ import annotations

import re

from ..sqlparser.lexer import TokenType, tokenize

_WORD_RE = re.compile(r"[A-Za-z_\$][A-Za-z0-9_\$]*")


def replace_identifiers(sql: str, renames: dict[str, str]) -> str:
    """Replace identifier tokens per ``renames`` (case-insensitive keys).

    Quoted identifiers are rewritten inside their quotes; bare words are
    replaced outright.  Keyword-position words are never renamed because
    rename maps come from schema element names, which the parsers reject
    as keywords anyway.
    """
    lowered = {old.lower(): new for old, new in renames.items()}
    out: list[str] = []
    cursor = 0
    position = 0
    for token in tokenize(sql):
        start = sql.find(token.raw, position)
        if start == -1:
            continue  # re-lexed hint bodies have no positions; skip
        position = start + len(token.raw)
        replacement = None
        if token.type is TokenType.WORD:
            new = lowered.get(token.value.lower())
            if new is not None:
                replacement = new
        elif token.type is TokenType.QUOTED:
            new = lowered.get(token.value.lower())
            if new is not None:
                quote = token.raw[0]
                if quote == "[":
                    replacement = f"[{new}]"
                else:
                    replacement = f"{quote}{new}{quote}"
        if replacement is not None:
            out.append(sql[cursor:start])
            out.append(replacement)
            cursor = position
    out.append(sql[cursor:])
    return "".join(out)
