"""Comparison of two studies.

For validating the synthetic corpus against real data (or one scenario
against another): per-measure medians side by side, Kolmogorov–Smirnov
two-sample tests on the distributions, and a rendered diff table.  Any
two :class:`~repro.analysis.StudyResult` objects compare — corpora of
different sizes included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from scipy.stats import ks_2samp

from ..stats import TestResult, median
from .measures import ProjectMeasures
from .study import StudyResult

#: The per-project measures a comparison covers.
COMPARED_MEASURES: dict[str, Callable[[ProjectMeasures], float | None]] = {
    "sync_10": lambda p: p.sync10,
    "sync_5": lambda p: p.sync5,
    "attainment_75": lambda p: p.attainment(0.75),
    "attainment_100": lambda p: p.attainment(1.00),
    "advance_over_source": lambda p: p.coevolution.advance_over_source,
    "advance_over_time": lambda p: p.coevolution.advance_over_time,
    "duration_months": lambda p: float(p.duration_months),
    "schema_activity": lambda p: p.schema_total_activity,
}


@dataclass(frozen=True)
class MeasureComparison:
    """One measure's distributions in the two studies."""

    measure: str
    median_a: float
    median_b: float
    ks: TestResult

    @property
    def distributions_differ(self) -> bool:
        """Significant at the 0.05 level under the KS two-sample test."""
        return self.ks.p_value < 0.05


@dataclass
class StudyComparison:
    """Side-by-side comparison of two studies."""

    label_a: str
    label_b: str
    rows: list[MeasureComparison]

    def row(self, measure: str) -> MeasureComparison:
        for row in self.rows:
            if row.measure == measure:
                return row
        raise KeyError(measure)

    @property
    def differing_measures(self) -> list[str]:
        return [r.measure for r in self.rows if r.distributions_differ]

    def render(self) -> str:
        from ..report.render import render_table

        return render_table(
            ["measure", f"median {self.label_a}",
             f"median {self.label_b}", "KS p", "differs"],
            [
                [
                    row.measure,
                    f"{row.median_a:.3f}",
                    f"{row.median_b:.3f}",
                    f"{row.ks.p_value:.4f}",
                    "yes" if row.distributions_differ else "no",
                ]
                for row in self.rows
            ],
            title=f"Study comparison: {self.label_a} vs {self.label_b}",
        )


def compare_studies(
    study_a: StudyResult,
    study_b: StudyResult,
    *,
    label_a: str = "A",
    label_b: str = "B",
) -> StudyComparison:
    """Compare two studies measure by measure (KS two-sample tests)."""
    rows: list[MeasureComparison] = []
    for name, extract in COMPARED_MEASURES.items():
        values_a = [
            v for v in (extract(p) for p in study_a.projects)
            if v is not None
        ]
        values_b = [
            v for v in (extract(p) for p in study_b.projects)
            if v is not None
        ]
        if len(values_a) < 3 or len(values_b) < 3:
            continue
        statistic, p_value = ks_2samp(values_a, values_b)
        rows.append(
            MeasureComparison(
                measure=name,
                median_a=median(values_a),
                median_b=median(values_b),
                ks=TestResult(
                    "ks_2samp", float(statistic), float(p_value)
                ),
            )
        )
    return StudyComparison(label_a=label_a, label_b=label_b, rows=rows)
