"""Co-change analysis: do schema commits carry source changes?

§3.3 of the paper studies "the commits to the source code in a small
window of changes before and after" schema commits, and [24] reports
that "only half of the software changes accompanied the schema change in
the same revision and only 16% of the cases showed an adaptation of the
code in prior or subsequent versions".  This module measures exactly
that on a repository: for every *active* schema commit, whether source
files changed in the same commit, and whether source-only commits exist
within a ±k-commit window around it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..vcs import Repository


@dataclass(frozen=True)
class CoChangeStats:
    """Co-change behaviour of one project's schema commits."""

    schema_commits: int
    same_commit: int
    in_window: int
    window: int

    @property
    def same_commit_rate(self) -> float:
        if self.schema_commits == 0:
            raise ValueError("no schema commits to rate")
        return self.same_commit / self.schema_commits

    @property
    def window_rate(self) -> float:
        """Rate of schema commits with *any* nearby source adaptation
        (same commit or within the window)."""
        if self.schema_commits == 0:
            raise ValueError("no schema commits to rate")
        return self.in_window / self.schema_commits


def cochange_stats(
    repo: Repository,
    ddl_path: str,
    *,
    window: int = 2,
    active_shas: set[str] | None = None,
) -> CoChangeStats:
    """Measure source co-change around the DDL file's commits.

    Args:
        repo: the project history.
        ddl_path: the schema file path.
        window: how many commits before/after count as "nearby".
        active_shas: restrict to these commits (e.g. the logically
            active schema commits); all touching commits by default.
    """
    commits = repo.commits
    schema_indices = [
        i for i, commit in enumerate(commits)
        if commit.touches(ddl_path)
        and (active_shas is None or commit.sha in active_shas)
    ]

    def has_source_changes(index: int) -> bool:
        return any(
            change.path != ddl_path for change in commits[index].changes
        )

    same = 0
    nearby = 0
    for index in schema_indices:
        in_same = has_source_changes(index)
        if in_same:
            same += 1
        lo = max(0, index - window)
        hi = min(len(commits) - 1, index + window)
        if in_same or any(
            has_source_changes(j) for j in range(lo, hi + 1) if j != index
        ):
            nearby += 1
    return CoChangeStats(
        schema_commits=len(schema_indices),
        same_commit=same,
        in_window=nearby,
        window=window,
    )


@dataclass(frozen=True)
class CorpusCoChange:
    """Co-change aggregates over a whole corpus."""

    projects: int
    mean_same_commit_rate: float
    mean_window_rate: float
    window: int


def corpus_cochange(
    repos: list[tuple[Repository, str]], *, window: int = 2
) -> CorpusCoChange:
    """Aggregate co-change rates over (repository, ddl_path) pairs."""
    same_rates = []
    window_rates = []
    for repo, ddl_path in repos:
        stats = cochange_stats(repo, ddl_path, window=window)
        if stats.schema_commits == 0:
            continue
        same_rates.append(stats.same_commit_rate)
        window_rates.append(stats.window_rate)
    if not same_rates:
        raise ValueError("no projects with schema commits")
    return CorpusCoChange(
        projects=len(same_rates),
        mean_same_commit_rate=sum(same_rates) / len(same_rates),
        mean_window_rate=sum(window_rates) / len(window_rates),
        window=window,
    )
