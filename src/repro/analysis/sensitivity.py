"""Sensitivity analyses for the study's fixed choices.

§8 of the paper names two construct-validity choices this module
stress-tests quantitatively:

* the **chronon** — "our unit of time is the month"; every measure is
  recomputed at coarser granularities (quarter, half-year) and the
  per-project measures are correlated against the monthly baseline;
* the **corpus draw** — the synthetic study adds a third axis the paper
  cannot have: re-running the whole study across generator seeds and
  reporting the spread of each headline number.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coevolution import (
    CoevolutionMeasures,
    JointProgress,
)
from ..stats import kendall_tau_b, median
from .measures import ProjectMeasures


@dataclass(frozen=True)
class ChrononComparison:
    """Monthly vs coarse-chronon agreement for one measure."""

    measure: str
    chronon_months: int
    kendall_tau: float
    median_monthly: float
    median_coarse: float


def coarse_joint(project: ProjectMeasures, chronon_months: int) -> JointProgress:
    """The project's joint progress recomputed at a coarser chronon.

    Reconstructs the two activity heartbeats from the stored cumulative
    fractions (they are exact up to float noise), rebuckets them, and
    realigns.
    """
    from ..heartbeat import Heartbeat

    def heartbeat_from(series: tuple[float, ...], total: float) -> Heartbeat:
        increments = [series[0]] + [
            b - a for a, b in zip(series, series[1:])
        ]
        return Heartbeat(
            project.joint.start,
            [max(0.0, inc) * total for inc in increments],
        )

    schema = heartbeat_from(
        project.joint.schema, project.schema_total_activity or 1.0
    )
    source = heartbeat_from(
        project.joint.project, project.project_total_updates or 1.0
    )
    return JointProgress.from_heartbeats(
        source.rebucket(chronon_months), schema.rebucket(chronon_months)
    )


def chronon_sensitivity(
    projects: list[ProjectMeasures],
    *,
    chronon_months: int = 3,
) -> list[ChrononComparison]:
    """Compare the headline measures at monthly vs coarse granularity."""
    monthly_sync: list[float] = []
    coarse_sync: list[float] = []
    monthly_att: list[float] = []
    coarse_att: list[float] = []
    for project in projects:
        if project.joint.n_points < 2 * chronon_months:
            continue  # too short to rebucket meaningfully
        coarse = CoevolutionMeasures.of(
            coarse_joint(project, chronon_months)
        )
        monthly_sync.append(project.sync10)
        coarse_sync.append(coarse.sync[0.10])
        monthly_att.append(project.attainment(0.75))
        coarse_att.append(coarse.attainment[0.75])
    return [
        ChrononComparison(
            measure="sync_10",
            chronon_months=chronon_months,
            kendall_tau=kendall_tau_b(monthly_sync, coarse_sync).statistic,
            median_monthly=median(monthly_sync),
            median_coarse=median(coarse_sync),
        ),
        ChrononComparison(
            measure="attainment_75",
            chronon_months=chronon_months,
            kendall_tau=kendall_tau_b(monthly_att, coarse_att).statistic,
            median_monthly=median(monthly_att),
            median_coarse=median(coarse_att),
        ),
    ]


@dataclass(frozen=True)
class SeedSpread:
    """The spread of one headline number across generator seeds."""

    measure: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def spread(self) -> float:
        return max(self.values) - min(self.values)


def seed_sensitivity(
    seeds: tuple[int, ...],
    *,
    keys: tuple[str, ...] = (
        "always_over_time",
        "always_over_source",
        "attain75_first20",
        "attain100_after80",
        "hand_in_hand",
    ),
) -> list[SeedSpread]:
    """Re-run the whole study per seed; collect headline spreads."""
    from ..corpus import generate_corpus
    from .study import run_study

    collected: dict[str, list[float]] = {key: [] for key in keys}
    for seed in seeds:
        headline = run_study(generate_corpus(seed=seed)).headline()
        for key in keys:
            collected[key].append(float(headline[key]))
    return [
        SeedSpread(measure=key, values=tuple(values))
        for key, values in collected.items()
    ]
