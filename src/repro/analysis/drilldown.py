"""Per-taxon and per-duration-band drill-downs.

§4's Fig. 5 reading (long-lived projects gravitate to mid-range
synchronicity), §5.2's taxon breakdown and §7's median tables all slice
the measures by taxon or duration.  This module computes those slices
as reusable summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..stats import median
from ..taxa import TAXA_ORDER, Taxon
from .measures import ProjectMeasures


@dataclass(frozen=True)
class TaxonSummary:
    """The per-taxon medians the paper discusses."""

    taxon: Taxon
    count: int
    median_sync10: float
    median_attainment75: float
    median_duration: float
    median_schema_activity: float
    always_both_rate: float


def taxon_summaries(
    projects: list[ProjectMeasures],
) -> list[TaxonSummary]:
    """One summary row per (populated) taxon, in canonical order."""
    rows: list[TaxonSummary] = []
    for taxon in TAXA_ORDER:
        group = [p for p in projects if p.taxon is taxon]
        if not group:
            continue
        rows.append(
            TaxonSummary(
                taxon=taxon,
                count=len(group),
                median_sync10=median([p.sync10 for p in group]),
                median_attainment75=median(
                    [p.attainment(0.75) for p in group]
                ),
                median_duration=median(
                    [p.duration_months for p in group]
                ),
                median_schema_activity=median(
                    [p.schema_total_activity for p in group]
                ),
                always_both_rate=sum(
                    p.coevolution.always_over_both for p in group
                ) / len(group),
            )
        )
    return rows


@dataclass(frozen=True)
class DurationBandSummary:
    """Synchronicity behaviour within one duration band (Fig. 5)."""

    label: str
    low_months: int
    high_months: int | None  # None = open-ended
    count: int
    median_sync10: float
    min_sync10: float
    max_sync10: float
    high_sync_rate: float  # share with sync >= 0.8


#: The paper's reading bands: the all-behaviours box and the 5-year tail.
DEFAULT_DURATION_BANDS = ((0, 24), (24, 60), (60, None))


def duration_band_summaries(
    projects: list[ProjectMeasures],
    *,
    bands: tuple = DEFAULT_DURATION_BANDS,
) -> list[DurationBandSummary]:
    """Synchronicity summaries per duration band."""
    rows: list[DurationBandSummary] = []
    for low, high in bands:
        group = [
            p for p in projects
            if p.duration_months > low
            and (high is None or p.duration_months <= high)
        ]
        if not group:
            continue
        syncs = [p.sync10 for p in group]
        label = f"{low}-{high}mo" if high is not None else f">{low}mo"
        rows.append(
            DurationBandSummary(
                label=label,
                low_months=low,
                high_months=high,
                count=len(group),
                median_sync10=median(syncs),
                min_sync10=min(syncs),
                max_sync10=max(syncs),
                high_sync_rate=sum(1 for s in syncs if s >= 0.8)
                / len(syncs),
            )
        )
    return rows
