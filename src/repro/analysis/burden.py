"""Maintenance-burden replay: what does schema evolution cost the code?

The paper closes with a conjecture: gravitation to rigidity exists
*because* schema change breaks the surrounding application ("crashes and
semantic inconsistencies") and fixing it is effort.  This analysis makes
the cost term concrete on the corpus:

1. generate a realistic embedded-SQL workload against a project's
   *initial* schema version;
2. replay the project's real schema history transition by transition,
   classifying every query's impact at each step;
3. after each transition, "repair" the workload the way a developer
   would — broken queries are rewritten against the current schema —
   so later transitions hit maintained code, not long-dead queries.

The result is a per-project count of break/at-risk/drift events per
atomic schema change, comparable to the impact factors the related work
reports ([28]: 19 code changes per table addition; [24]: 10–100 lines
per atomic change).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..mining import SchemaHistory
from ..querydep import Impact, analyze_impact, generate_workload


@dataclass
class TransitionBurden:
    """Impact of one schema transition on the (maintained) workload."""

    index: int
    activity: int
    breaks: int
    at_risk: int
    drifts: int

    @property
    def affected(self) -> int:
        return self.breaks + self.at_risk + self.drifts


@dataclass
class BurdenSummary:
    """Replay outcome for one project."""

    name: str
    workload_size: int
    transitions: list[TransitionBurden] = field(default_factory=list)

    @property
    def total_activity(self) -> int:
        return sum(t.activity for t in self.transitions)

    @property
    def total_breaks(self) -> int:
        return sum(t.breaks for t in self.transitions)

    @property
    def total_affected(self) -> int:
        return sum(t.affected for t in self.transitions)

    @property
    def breaks_per_change(self) -> float:
        """Broken queries per atomic schema change (the cost factor)."""
        if self.total_activity == 0:
            return 0.0
        return self.total_breaks / self.total_activity

    @property
    def affected_per_change(self) -> float:
        if self.total_activity == 0:
            return 0.0
        return self.total_affected / self.total_activity


def replay_burden(
    history: SchemaHistory,
    *,
    name: str = "",
    n_queries: int = 20,
    seed: int = 7,
    repair: bool = True,
) -> BurdenSummary:
    """Replay a schema history against a generated workload.

    Args:
        history: the project's parsed schema history.
        n_queries: workload size (regenerated per repair).
        seed: workload-generation seed.
        repair: when True (the default), the workload is regenerated
            against the current schema after any transition that
            affected it — the maintained-application model; when False,
            the day-one workload rides through unchanged.
    """
    rng = random.Random(seed)
    summary = BurdenSummary(name=name, workload_size=n_queries)
    workload = generate_workload(
        history.versions[0].schema, rng, n_queries=n_queries
    )

    for transition in history.transitions[1:]:
        if transition.delta.is_identical:
            summary.transitions.append(
                TransitionBurden(transition.index, 0, 0, 0, 0)
            )
            continue
        report = analyze_impact(workload, transition.delta)
        burden = TransitionBurden(
            index=transition.index,
            activity=transition.activity,
            breaks=len(report.with_impact(Impact.BREAKS)),
            at_risk=len(report.with_impact(Impact.AT_RISK)),
            drifts=len(report.with_impact(Impact.DRIFTS)),
        )
        summary.transitions.append(burden)
        if repair and burden.affected:
            current = history.versions[transition.index].schema
            if len(current) > 0:
                workload = generate_workload(
                    current, rng, n_queries=n_queries
                )
    return summary
