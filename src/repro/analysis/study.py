"""The study driver: corpus → measures → every figure and finding.

``run_study`` is the one-call entry point used by the CLI, the examples
and every benchmark: it mines each repository, computes the per-project
measures and exposes the figure computations plus the headline numbers
quoted in §4–§6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable

from ..corpus import DEFAULT_SEED, GeneratedProject, generate_corpus
from ..heartbeat import ZeroTotalError
from ..mining import mine_project
from ..taxa import Taxon
from .figures import (
    AdvanceTable,
    AlwaysAdvance,
    AttainmentBreakdown,
    SyncHistogram,
    fig4_sync_histogram,
    fig5_duration_scatter,
    fig6_advance_table,
    fig7_always_advance,
    fig8_attainment,
)
from .measures import ProjectMeasures, analyze_project
from .statistics import StatisticsReport, sec7_statistics


@dataclass
class StudyResult:
    """All per-project rows plus lazy access to figures and statistics."""

    projects: list[ProjectMeasures]
    skipped: list[str]

    def __len__(self) -> int:
        return len(self.projects)

    # figures -----------------------------------------------------------
    def fig4(self, *, theta: float = 0.10) -> SyncHistogram:
        return fig4_sync_histogram(self.projects, theta=theta)

    def fig5(self, *, theta: float = 0.10):
        return fig5_duration_scatter(self.projects, theta=theta)

    def fig6(self) -> AdvanceTable:
        return fig6_advance_table(self.projects)

    def fig7(self) -> AlwaysAdvance:
        return fig7_always_advance(self.projects)

    def fig8(self, **kwargs) -> AttainmentBreakdown:
        return fig8_attainment(self.projects, **kwargs)

    def statistics(self) -> StatisticsReport:
        return sec7_statistics(self.projects)

    # headline numbers ---------------------------------------------------
    def headline(self) -> dict[str, float]:
        """The headline findings quoted in the abstract and §4–§6."""
        n = len(self.projects)
        fig8 = self.fig8()
        fig7 = self.fig7()
        fig4 = self.fig4()
        att100 = fig8.counts[1.00]
        return {
            "projects": n,
            "blanks": sum(
                1 for p in self.projects
                if p.coevolution.advance_over_source is None
            ),
            "hand_in_hand": fig4.hand_in_hand_count,
            "always_over_time": fig7.total_over_time,
            "always_over_source": fig7.total_over_source,
            "always_over_both": fig7.total_over_both,
            "attain75_first20": fig8.early_count(0.75),
            "attain75_after80": fig8.late_count(0.75),
            "attain80_first20": fig8.early_count(0.80),
            "attain80_first50": (
                fig8.count(0.80, 0) + fig8.count(0.80, 1)
            ),
            "attain100_first20": att100[0],
            "attain100_first50": att100[0] + att100[1],
            "attain100_after80": att100[-1],
            "advance_src_ge_half": sum(
                1 for p in self.projects
                if p.coevolution.advance_over_source is not None
                and p.coevolution.advance_over_source >= 0.5
            ),
            "advance_time_ge_half": sum(
                1 for p in self.projects
                if p.coevolution.advance_over_time is not None
                and p.coevolution.advance_over_time >= 0.5
            ),
        }

    def by_taxon(self, taxon: Taxon) -> list[ProjectMeasures]:
        return [p for p in self.projects if p.taxon is taxon]


def run_study(corpus: Iterable[GeneratedProject]) -> StudyResult:
    """Mine and measure every project of a (generated) corpus."""
    rows: list[ProjectMeasures] = []
    skipped: list[str] = []
    for project in corpus:
        history = mine_project(project.repository)
        try:
            rows.append(
                analyze_project(history, true_taxon=project.true_taxon)
            )
        except ZeroTotalError:
            skipped.append(project.name)
    return StudyResult(projects=rows, skipped=skipped)


@lru_cache(maxsize=4)
def canonical_study(seed: int = DEFAULT_SEED) -> StudyResult:
    """The study over the canonical 195-project corpus (memoised)."""
    return run_study(generate_corpus(seed=seed))
