"""The study driver: corpus → measures → every figure and finding.

``run_study`` is the one-call entry point used by the CLI, the examples
and every benchmark: it mines each repository, computes the per-project
measures and exposes the figure computations plus the headline numbers
quoted in §4–§6 of the paper.

The pipeline is embarrassingly parallel across projects, so
``run_study(corpus, jobs=N)`` fans the mine + analyze work out over a
``ProcessPoolExecutor``; ``jobs=1`` (the default) keeps the original
serial path, and the two are result-identical (deterministic per-project
work, order-preserving collection — proven by the equivalence tests).
Every result carries a :class:`~repro.perf.timing.StudyTimings` with the
per-stage wall-clock breakdown and parse-cache hit rates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable

from ..corpus import DEFAULT_SEED, GeneratedProject
from ..heartbeat import ZeroTotalError
from ..mining import mine_project
from ..obs.events import get_recorder
from ..obs.metrics import MetricsSnapshot
from ..obs.progress import ProgressTracker
from ..obs.resources import get_monitor
from ..obs.trace import get_tracer
from ..perf.timing import StudyTimings
from ..taxa import Taxon
from .figures import (
    AdvanceTable,
    AlwaysAdvance,
    AttainmentBreakdown,
    SyncHistogram,
    fig4_sync_histogram,
    fig5_duration_scatter,
    fig6_advance_table,
    fig7_always_advance,
    fig8_attainment,
    headline_numbers,
)
from .measures import ProjectMeasures, analyze_project
from .statistics import StatisticsReport, sec7_statistics


@dataclass
class StudyResult:
    """All per-project rows plus lazy access to figures and statistics.

    ``timings``, ``metrics`` and ``warnings`` are observability
    side-channels — they never participate in equality, so a traced run
    compares equal to (and measures byte-identically with) an untraced
    one.
    """

    projects: list[ProjectMeasures]
    skipped: list[str]
    timings: StudyTimings = field(default_factory=StudyTimings, compare=False)
    metrics: MetricsSnapshot = field(
        default_factory=MetricsSnapshot, compare=False
    )
    warnings: list[dict] = field(default_factory=list, compare=False)
    # figure / statistics memo — seeded from store artifacts when the
    # result came through the pipeline, filled on first access otherwise
    _memo: dict = field(
        default_factory=dict, init=False, compare=False, repr=False
    )

    def __len__(self) -> int:
        return len(self.projects)

    def _memoised(self, key, compute):
        if key not in self._memo:
            self._memo[key] = compute()
        return self._memo[key]

    def prime_artifacts(
        self,
        *,
        figures: dict | None = None,
        statistics: dict | None = None,
    ) -> "StudyResult":
        """Seed the memo from pipeline artifacts (figures / statistics).

        After priming, the default-parameter accessors return the stored
        objects instead of recomputing — a warm study replays its
        figures from the store.
        """
        if figures:
            for name, key in (
                ("fig4", ("fig4", 0.10)),
                ("fig5", ("fig5", 0.10)),
                ("fig6", ("fig6",)),
                ("fig7", ("fig7",)),
                ("fig8", ("fig8", ())),
                ("headline", ("headline",)),
            ):
                if name in figures:
                    self._memo[key] = figures[name]
        if statistics is not None:
            self._memo[("statistics",)] = statistics
        return self

    # figures -----------------------------------------------------------
    def fig4(self, *, theta: float = 0.10) -> SyncHistogram:
        return self._memoised(
            ("fig4", theta),
            lambda: fig4_sync_histogram(self.projects, theta=theta),
        )

    def fig5(self, *, theta: float = 0.10):
        return self._memoised(
            ("fig5", theta),
            lambda: fig5_duration_scatter(self.projects, theta=theta),
        )

    def fig6(self) -> AdvanceTable:
        return self._memoised(
            ("fig6",), lambda: fig6_advance_table(self.projects)
        )

    def fig7(self) -> AlwaysAdvance:
        return self._memoised(
            ("fig7",), lambda: fig7_always_advance(self.projects)
        )

    def fig8(self, **kwargs) -> AttainmentBreakdown:
        return self._memoised(
            ("fig8", tuple(sorted(kwargs.items()))),
            lambda: fig8_attainment(self.projects, **kwargs),
        )

    def statistics(self) -> StatisticsReport:
        """The §7 battery; its failure replays like its success.

        The outcome memoises in artifact form (``ok``/``report`` or
        ``ok``/``error``) so a pipeline-stored statistics artifact and a
        lazily computed one behave identically — including re-raising
        the original ``ValueError`` for corpora too small to test.
        """
        outcome = self._memo.get(("statistics",))
        if outcome is None:
            try:
                outcome = {"ok": True, "report": sec7_statistics(self.projects)}
            except ValueError as exc:
                outcome = {"ok": False, "error": str(exc)}
            self._memo[("statistics",)] = outcome
        if not outcome["ok"]:
            raise ValueError(outcome["error"])
        return outcome["report"]

    # headline numbers ---------------------------------------------------
    def headline(self) -> dict[str, float]:
        """The headline findings quoted in the abstract and §4–§6.

        Memoised: repeated calls return the same dict object (derived
        from the memoised figures, so a primed result never recomputes).
        """
        return self._memoised(
            ("headline",),
            lambda: headline_numbers(
                self.projects,
                fig4=self.fig4(),
                fig7=self.fig7(),
                fig8=self.fig8(),
            ),
        )

    def by_taxon(self, taxon: Taxon) -> list[ProjectMeasures]:
        return [p for p in self.projects if p.taxon is taxon]


class StudyAccumulator:
    """Fold-style collection of worker results: ``update``/``finalize``.

    One :class:`~repro.perf.parallel.MinedRow` at a time: rows and skips
    accumulate, stage seconds / cache deltas / worker resource samples
    fold into the run's :class:`~repro.perf.timing.StudyTimings`, the
    metrics delta sums, worker span trees reattach under the driver's
    dispatching span, and worker warnings replay through the driver
    recorder.  Extracted from ``run_study``'s collection loop so the
    streaming pipeline can fold results as the backpressured window
    releases them — identical observability, never a corpus-wide list.
    """

    def __init__(self, timings: StudyTimings, *, jobs: int = 1):
        self.timings = timings
        self.jobs = jobs
        self.rows: list[ProjectMeasures] = []
        self.skipped: list[str] = []
        self.metrics = MetricsSnapshot()
        self.warnings: list[dict] = []
        self._tracer = get_tracer()
        self._recorder = get_recorder()

    def update(self, result) -> None:
        """Fold one worker result (a ``MinedRow``), corpus order."""
        if result.row is not None:
            self.rows.append(result.row)
        else:
            self.skipped.append(result.name)
        self.timings.record("mine", result.mine_seconds)
        self.timings.record("analyze", result.analyze_seconds)
        self.timings.merge_cache(result.cache)
        if result.resources is not None:
            self.timings.record_resource("workers", result.resources)
        self.metrics = self.metrics + result.metrics
        # per-project span trees built in workers (or detached
        # in-process on the serial path) reattach here; worker trees
        # also replay their span-close events, which no in-process
        # sink could observe
        if result.trace is not None:
            self._tracer.attach(result.trace, emit=self.jobs > 1)
        if result.warnings:
            self.warnings.extend(result.warnings)
            if self.jobs > 1:
                for record in result.warnings:
                    self._recorder.replay(record)

    def finalize(self) -> StudyResult:
        self.metrics.fold_cache(self.timings.cache)
        return StudyResult(
            projects=self.rows,
            skipped=self.skipped,
            timings=self.timings,
            metrics=self.metrics,
            warnings=self.warnings,
        )


def run_study(
    corpus: Iterable[GeneratedProject], *, jobs: int = 1
) -> StudyResult:
    """Mine and measure every project of a (generated) corpus.

    Args:
        corpus: the projects to study (any iterable; materialised once).
        jobs: worker processes for the mine + analyze fan-out.  ``1``
            (the default) runs the serial in-process path; ``N > 1``
            distributes chunks over a ``ProcessPoolExecutor`` while
            preserving corpus order, producing identical results.
    """
    from ..perf.parallel import MinedRow, mine_and_analyze, pool_chunksize
    from ..perf.pool import warm_pool

    tracer = get_tracer()
    projects = list(corpus)
    timings = StudyTimings(jobs=max(1, jobs))
    start = time.perf_counter()

    acc = StudyAccumulator(timings, jobs=jobs)
    with tracer.span(
        "study", projects=len(projects), jobs=max(1, jobs)
    ), get_monitor().window() as window:
        with tracer.span("mine_analyze"):
            # the heartbeat: one driver-side update per collected result
            # (ETA from the live per-stage timings), emitted to the
            # progress channel when --log-json / --progress listen
            tracker = ProgressTracker(
                "mine_analyze", len(projects), timings=timings
            )
            mined: Iterable[MinedRow]
            if jobs <= 1:
                mined = map(mine_and_analyze, projects)
            else:
                # executor.map yields in corpus order as chunks
                # complete, so lazy collection keeps results
                # identical to the serial path while letting the
                # heartbeat fire mid-run; the warm pool is shared
                # with generation and kept alive for the next run
                mined = warm_pool(jobs).map(
                    mine_and_analyze,
                    projects,
                    chunksize=pool_chunksize(len(projects), jobs),
                )

            for result in mined:
                acc.update(result)
                tracker.update(
                    result.name,
                    result.mine_seconds + result.analyze_seconds,
                )
            tracker.finish()
    timings.record_resource("driver", window.sample)
    timings.record("total", time.perf_counter() - start)
    return acc.finalize()


@lru_cache(maxsize=4)
def canonical_study(seed: int = DEFAULT_SEED, *, jobs: int = 1) -> StudyResult:
    """The study over the canonical 195-project corpus (memoised).

    Resolved through the stage-graph pipeline
    (:func:`repro.pipeline.graph.pipeline_study`) against the
    process-global artifact store, so repeated calls — and CLI runs
    sharing a ``--store-dir`` — replay clean stages instead of
    recomputing.  ``jobs`` parallelises both corpus generation and
    mining; the result is identical for every ``jobs`` value (each
    memoised separately).  ``timings.stages["total"]`` is the run's
    wall clock, set once by the pipeline — generation is *included* in
    it, not added on top.
    """
    from ..pipeline.graph import pipeline_study

    return pipeline_study(seed=seed, jobs=jobs)
