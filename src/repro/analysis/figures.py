"""Computations behind every figure and table of the paper.

Each function takes the list of per-project measures and returns a plain
result object that the report renderers (and the benchmarks) print.
Figure/table numbering follows the paper:

* Fig. 4 — histogram of projects per 10%-synchronicity bucket;
* Fig. 5 — scatter of duration vs synchronicity per taxon;
* Fig. 6 — table of life percentage of schema advance over source/time;
* Fig. 7 — per-taxon counts of schema always in advance;
* Fig. 8 — attainment of α of schema activity per life range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..stats import Bucket, bucket_counts, buckets_from_edges, equal_buckets
from ..taxa import TAXA_ORDER, Taxon
from .measures import ProjectMeasures

#: Life ranges of Fig. 8 (fractions of project lifetime).
LIFE_RANGE_EDGES = (0.0, 0.2, 0.5, 0.8, 1.0)
LIFE_RANGE_LABELS = ("0-20%", "20%-50%", "50%-80%", "80%-100%")


# ------------------------------------------------------------------ Fig 4


@dataclass(frozen=True)
class SyncHistogram:
    """Fig. 4: breakdown of projects per θ-synchronicity value range."""

    theta: float
    buckets: tuple[Bucket, ...]
    counts: tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def hand_in_hand_count(self) -> int:
        """Projects in the top bucket — 'hand-in-hand' co-evolution."""
        return self.counts[-1]


def fig4_sync_histogram(
    projects: list[ProjectMeasures], *, theta: float = 0.10
) -> SyncHistogram:
    """Fig. 4: bucket the corpus by θ-synchronicity (five 20% buckets)."""
    from ..coevolution import theta_synchronicity

    buckets = tuple(equal_buckets(5))
    values = [
        p.coevolution.sync.get(theta)
        if theta in p.coevolution.sync
        else theta_synchronicity(p.joint, theta)
        for p in projects
    ]
    counts, blanks = bucket_counts(values, buckets)
    assert blanks == 0  # synchronicity is defined for every project
    return SyncHistogram(
        theta=theta, buckets=buckets, counts=tuple(counts)
    )


# ------------------------------------------------------------------ Fig 5


@dataclass(frozen=True)
class ScatterPoint:
    duration_months: int
    synchronicity: float
    taxon: Taxon


def fig5_duration_scatter(
    projects: list[ProjectMeasures], *, theta: float = 0.10
) -> list[ScatterPoint]:
    """Fig. 5: (duration, θ-synchronicity, taxon) per project."""
    from ..coevolution import theta_synchronicity

    return [
        ScatterPoint(
            p.duration_months,
            p.coevolution.sync[theta]
            if theta in p.coevolution.sync
            else theta_synchronicity(p.joint, theta),
            p.taxon,
        )
        for p in projects
    ]


def long_life_sync_band(
    points: list[ScatterPoint], *, duration_threshold: int = 60
) -> tuple[float, float]:
    """Sync range of the long-lived projects (the §4 empty-space claim).

    Returns ``(min, max)`` synchronicity among projects older than the
    threshold; the paper observes this band avoids the extremes.
    """
    old = [p.synchronicity for p in points
           if p.duration_months > duration_threshold]
    if not old:
        raise ValueError("no projects above the duration threshold")
    return min(old), max(old)


# ------------------------------------------------------------------ Fig 6


@dataclass(frozen=True)
class AdvanceTableRow:
    """One value-range row of Fig. 6."""

    label: str
    source_count: int
    source_pct: float
    source_cum_pct: float
    time_count: int
    time_pct: float
    time_cum_pct: float


@dataclass
class AdvanceTable:
    """Fig. 6: life percentage of schema advance over source and time."""

    rows: list[AdvanceTableRow] = field(default_factory=list)
    blank_source: int = 0
    blank_time: int = 0
    total: int = 0

    def row(self, label: str) -> AdvanceTableRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)


def fig6_advance_table(projects: list[ProjectMeasures]) -> AdvanceTable:
    """Ten 10%-wide ranges, high to low, plus the "(blank)" row."""
    buckets = buckets_from_edges([i / 10 for i in range(11)])
    source_values = [p.coevolution.advance_over_source for p in projects]
    time_values = [p.coevolution.advance_over_time for p in projects]
    source_counts, source_blanks = bucket_counts(source_values, buckets)
    time_counts, time_blanks = bucket_counts(time_values, buckets)

    table = AdvanceTable(
        blank_source=source_blanks,
        blank_time=time_blanks,
        total=len(projects),
    )
    n = len(projects) or 1  # empty corpus: all-zero rows, no division error
    source_cum = 0
    time_cum = 0
    for i in reversed(range(len(buckets))):  # 0.9-1.0 first
        source_cum += source_counts[i]
        time_cum += time_counts[i]
        table.rows.append(
            AdvanceTableRow(
                label=buckets[i].label,
                source_count=source_counts[i],
                source_pct=source_counts[i] / n,
                source_cum_pct=source_cum / n,
                time_count=time_counts[i],
                time_pct=time_counts[i] / n,
                time_cum_pct=time_cum / n,
            )
        )
    return table


# ------------------------------------------------------------------ Fig 7


@dataclass(frozen=True)
class AlwaysAdvanceRow:
    taxon: Taxon
    total: int
    over_time: int
    over_source: int
    over_both: int


@dataclass(frozen=True)
class AlwaysAdvance:
    """Fig. 7 (and the §5.2 totals): schema always in advance."""

    rows: tuple[AlwaysAdvanceRow, ...]

    @property
    def total_over_time(self) -> int:
        return sum(r.over_time for r in self.rows)

    @property
    def total_over_source(self) -> int:
        return sum(r.over_source for r in self.rows)

    @property
    def total_over_both(self) -> int:
        return sum(r.over_both for r in self.rows)

    @property
    def total(self) -> int:
        return sum(r.total for r in self.rows)

    def row(self, taxon: Taxon) -> AlwaysAdvanceRow:
        for r in self.rows:
            if r.taxon is taxon:
                return r
        raise KeyError(taxon)


def fig7_always_advance(projects: list[ProjectMeasures]) -> AlwaysAdvance:
    """Fig. 7: per-taxon counts of schema always in advance."""
    rows = []
    for taxon in TAXA_ORDER:
        group = [p for p in projects if p.taxon is taxon]
        rows.append(
            AlwaysAdvanceRow(
                taxon=taxon,
                total=len(group),
                over_time=sum(
                    p.coevolution.always_over_time for p in group
                ),
                over_source=sum(
                    p.coevolution.always_over_source for p in group
                ),
                over_both=sum(
                    p.coevolution.always_over_both for p in group
                ),
            )
        )
    return AlwaysAdvance(rows=tuple(rows))


# ------------------------------------------------------------------ Fig 8


@dataclass(frozen=True)
class AttainmentBreakdown:
    """Fig. 8: projects per (α completion level, life range) cell."""

    alphas: tuple[float, ...]
    range_labels: tuple[str, ...]
    counts: dict[float, tuple[int, ...]]

    def count(self, alpha: float, range_index: int) -> int:
        return self.counts[alpha][range_index]

    def early_count(self, alpha: float) -> int:
        """Projects attaining α within the first 20% of life."""
        return self.counts[alpha][0]

    def late_count(self, alpha: float) -> int:
        """Projects attaining α only after 80% of life."""
        return self.counts[alpha][-1]


def headline_numbers(
    projects: list[ProjectMeasures],
    *,
    fig4: SyncHistogram,
    fig7: AlwaysAdvance,
    fig8: AttainmentBreakdown,
) -> dict[str, float]:
    """The headline findings quoted in the abstract and §4–§6.

    Takes the already-computed figures so callers holding figure
    artifacts (the pipeline, a memoised ``StudyResult``) derive the
    headline without recomputing them.
    """
    att100 = fig8.counts[1.00]
    return {
        "projects": len(projects),
        "blanks": sum(
            1 for p in projects
            if p.coevolution.advance_over_source is None
        ),
        "hand_in_hand": fig4.hand_in_hand_count,
        "always_over_time": fig7.total_over_time,
        "always_over_source": fig7.total_over_source,
        "always_over_both": fig7.total_over_both,
        "attain75_first20": fig8.early_count(0.75),
        "attain75_after80": fig8.late_count(0.75),
        "attain80_first20": fig8.early_count(0.80),
        "attain80_first50": fig8.count(0.80, 0) + fig8.count(0.80, 1),
        "attain100_first20": att100[0],
        "attain100_first50": att100[0] + att100[1],
        "attain100_after80": att100[-1],
        "advance_src_ge_half": sum(
            1 for p in projects
            if p.coevolution.advance_over_source is not None
            and p.coevolution.advance_over_source >= 0.5
        ),
        "advance_time_ge_half": sum(
            1 for p in projects
            if p.coevolution.advance_over_time is not None
            and p.coevolution.advance_over_time >= 0.5
        ),
    }


def fig8_attainment(
    projects: list[ProjectMeasures],
    *,
    alphas: tuple[float, ...] = (0.50, 0.75, 0.80, 1.00),
) -> AttainmentBreakdown:
    """Fig. 8: count projects per (α completion level, life range)."""
    buckets = buckets_from_edges(list(LIFE_RANGE_EDGES))
    # attainment fractions lie in (0, 1]; make every non-final bucket
    # closed on the right so "within the first 20%" includes 0.2 exactly
    closed = [
        Bucket(b.low, b.high, closed_high=True) for b in buckets[:-1]
    ]

    def locate(value: float) -> int:
        for i, bucket in enumerate(closed):
            if value in bucket:
                return i
        return len(closed)  # the last, open-ended range

    counts: dict[float, tuple[int, ...]] = {}
    for alpha in alphas:
        cells = [0] * (len(closed) + 1)
        for p in projects:
            cells[locate(p.attainment(alpha))] += 1
        counts[alpha] = tuple(cells)
    return AttainmentBreakdown(
        alphas=tuple(alphas),
        range_labels=LIFE_RANGE_LABELS,
        counts=counts,
    )
