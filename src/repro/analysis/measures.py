"""Per-project study measures.

One :class:`ProjectMeasures` row per project: identity, classified taxon,
heartbeat aggregates and the full set of co-evolution measures.  This is
the study's unit of analysis; figure computations aggregate over lists of
these rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..coevolution import CoevolutionMeasures, JointProgress
from ..heartbeat import ZeroTotalError
from ..mining import ProjectHistory
from ..taxa import Taxon, TaxonThresholds, classify


@dataclass
class ProjectMeasures:
    """Everything the study records about one project."""

    name: str
    taxon: Taxon
    duration_months: int
    schema_total_activity: float
    project_total_updates: float
    schema_commits: int
    active_schema_commits: int
    coevolution: CoevolutionMeasures
    joint: JointProgress
    true_taxon: Taxon | None = None

    @property
    def sync10(self) -> float:
        return self.coevolution.sync[0.10]

    @property
    def sync5(self) -> float:
        return self.coevolution.sync[0.05]

    def attainment(self, alpha: float) -> float:
        return self.coevolution.attainment[alpha]


def analyze_project(
    history: ProjectHistory,
    *,
    true_taxon: Taxon | None = None,
    thresholds: TaxonThresholds = TaxonThresholds(),
) -> ProjectMeasures:
    """Compute the full measure row for one mined project.

    Raises:
        ZeroTotalError: for histories with no activity on either
            heartbeat (these cannot enter the study at all; the dataset's
            elicitation rules exclude them up front).
    """
    joint = history.joint_progress()
    coevolution = CoevolutionMeasures.of(joint)
    taxon = classify(history.schema_heartbeat, thresholds=thresholds)
    return ProjectMeasures(
        name=history.name,
        taxon=taxon,
        duration_months=joint.n_points,
        schema_total_activity=history.schema_heartbeat.total,
        project_total_updates=history.project_heartbeat.total,
        schema_commits=history.schema_history.commit_count,
        active_schema_commits=history.schema_history.active_commit_count,
        coevolution=coevolution,
        joint=joint,
        true_taxon=true_taxon,
    )
