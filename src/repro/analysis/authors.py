"""Author-concentration analysis.

§3.3's case study observes that "90% of the studied updates were
performed by the same developer".  This module measures developer
concentration per project from the commit log: the top author's share
of commits and of file updates, and whether schema commits are more
concentrated than source commits (the "schema owner" phenomenon).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..vcs import Repository


@dataclass(frozen=True)
class AuthorStats:
    """Developer concentration of one project."""

    authors: int
    top_author: str
    top_commit_share: float
    top_update_share: float
    schema_top_share: float | None  # None when no schema commits

    @property
    def single_maintainer(self) -> bool:
        """The §3.3 pattern: one developer dominates (≥ 80%)."""
        return self.top_commit_share >= 0.8


def author_stats(repo: Repository, ddl_path: str | None = None) -> AuthorStats:
    """Measure author concentration from a repository's commits."""
    if not repo.commits:
        raise ValueError(f"{repo.name}: no commits")
    commits_by_author: dict[str, int] = {}
    updates_by_author: dict[str, int] = {}
    schema_by_author: dict[str, int] = {}
    for commit in repo.commits:
        author = commit.author or "unknown"
        commits_by_author[author] = commits_by_author.get(author, 0) + 1
        updates_by_author[author] = (
            updates_by_author.get(author, 0) + commit.files_updated
        )
        if ddl_path is not None and commit.touches(ddl_path):
            schema_by_author[author] = schema_by_author.get(author, 0) + 1

    total_commits = sum(commits_by_author.values())
    total_updates = sum(updates_by_author.values()) or 1
    top_author = max(commits_by_author, key=commits_by_author.get)

    schema_top_share = None
    if schema_by_author:
        schema_total = sum(schema_by_author.values())
        schema_top_share = max(schema_by_author.values()) / schema_total

    return AuthorStats(
        authors=len(commits_by_author),
        top_author=top_author,
        top_commit_share=commits_by_author[top_author] / total_commits,
        top_update_share=(
            updates_by_author.get(top_author, 0) / total_updates
        ),
        schema_top_share=schema_top_share,
    )
