"""Survival analysis of schema evolution: when do schemata go quiet?

"Gravitation to rigidity" says schemata stop evolving early.  Framed as
survival: the *event* is the last post-initial logical change of the
schema; the survival time is the fraction of the project's life at
which it occurs.  Projects whose schema was still changing inside the
final observation window are right-censored (we cannot know when —  or
whether — they would have stopped).  The Kaplan–Meier curve over the
corpus gives the cleanest single picture of rigidity: S(t) = the share
of schemata still evolving after life-fraction t.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..stats.survival import Observation, SurvivalCurve, kaplan_meier
from .measures import ProjectMeasures


@dataclass(frozen=True)
class SchemaSurvival:
    """The corpus-level survival picture of schema activity."""

    curve: SurvivalCurve
    censored: int
    never_evolved: int

    def share_quiet_by(self, life_fraction: float) -> float:
        """Share of schemata whose evolution had ended by this point."""
        return 1 - self.curve.survival_at(life_fraction)


def schema_survival(
    projects: list[ProjectMeasures],
    *,
    censor_window: float = 0.9,
) -> SchemaSurvival:
    """Kaplan–Meier over the last-change timepoints of the corpus.

    Args:
        projects: the study's measure rows.
        censor_window: a schema whose last change falls after this
            fraction of life is treated as right-censored at that point
            (it was still evolving when observation effectively ended).

    Projects with no post-initial evolution at all (the 100%-attainment
    happens at the initiating commit) are excluded from the curve and
    reported separately — they never entered the "evolving" state.
    """
    observations = []
    never = 0
    censored = 0
    for project in projects:
        last_change = project.attainment(1.0)
        first_possible = 1 / project.duration_months
        if last_change <= first_possible:
            never += 1
            continue
        if last_change >= censor_window:
            observations.append(Observation(last_change, event=False))
            censored += 1
        else:
            observations.append(Observation(last_change, event=True))
    if not observations:
        raise ValueError("no evolving projects to analyse")
    return SchemaSurvival(
        curve=kaplan_meier(observations),
        censored=censored,
        never_evolved=never,
    )
