"""The statistical analysis of §7.

* Normality: Shapiro–Wilk over every studied attribute (the paper finds
  p < 0.007 everywhere, i.e. nothing is normal).
* Taxon effects: Kruskal–Wallis of taxon over 10%-synchronicity and over
  the 75%-attainment fractional timepoint, with per-taxon medians.
* Lag: χ² and Freeman–Halton (r×c Fisher) exact tests of taxon ×
  always-in-advance, for time, source and both.
* Correlations: Kendall τ-b between the 5%- and 10%-synchronicity and
  between the advance-over-time and advance-over-source measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..stats import (
    TestResult,
    chi_square,
    fisher_exact_rxc,
    kendall_tau_b,
    kruskal_wallis,
    median,
    shapiro_wilk,
)
from ..taxa import TAXA_ORDER, Taxon
from .measures import ProjectMeasures


@dataclass
class TaxonEffect:
    """Kruskal–Wallis result plus per-taxon medians for one measure."""

    measure: str
    test: TestResult
    medians: dict[Taxon, float] = field(default_factory=dict)


@dataclass
class LagTest:
    """χ² and Fisher tests of taxon × one always-in-advance flag."""

    flag: str
    table: list[list[int]]
    chi2: TestResult
    fisher: TestResult


@dataclass
class StatisticsReport:
    """Everything §7 reports."""

    normality: dict[str, TestResult]
    sync_effect: TaxonEffect
    attainment_effect: TaxonEffect
    lag_tests: dict[str, LagTest]
    tau_sync: TestResult
    tau_advance: TestResult


def _groups_by_taxon(
    projects: list[ProjectMeasures], values
) -> list[list[float]]:
    groups = []
    for taxon in TAXA_ORDER:
        group = [
            values(p) for p in projects
            if p.taxon is taxon and values(p) is not None
        ]
        groups.append(group)
    return groups


def _taxon_effect(
    projects: list[ProjectMeasures], measure: str, values
) -> TaxonEffect:
    groups = _groups_by_taxon(projects, values)
    test = kruskal_wallis([g for g in groups if g])
    medians = {
        taxon: median(group)
        for taxon, group in zip(TAXA_ORDER, groups)
        if group
    }
    return TaxonEffect(measure=measure, test=test, medians=medians)


def _lag_test(
    projects: list[ProjectMeasures], flag_name: str, flag
) -> LagTest:
    table = []
    for taxon in TAXA_ORDER:
        group = [p for p in projects if p.taxon is taxon]
        yes = sum(1 for p in group if flag(p))
        table.append([yes, len(group) - yes])
    populated = [row for row in table if sum(row) > 0]
    return LagTest(
        flag=flag_name,
        table=table,
        chi2=chi_square(populated),
        fisher=fisher_exact_rxc(populated),
    )


def sec7_statistics(projects: list[ProjectMeasures]) -> StatisticsReport:
    """Run the full §7 battery over the study's measure rows."""
    attributes = {
        "sync_10": lambda p: p.sync10,
        "sync_5": lambda p: p.sync5,
        "attainment_75": lambda p: p.attainment(0.75),
        "duration_months": lambda p: float(p.duration_months),
        "schema_activity": lambda p: p.schema_total_activity,
        "project_activity": lambda p: p.project_total_updates,
    }
    normality = {
        name: shapiro_wilk([values(p) for p in projects])
        for name, values in attributes.items()
    }

    sync_effect = _taxon_effect(projects, "sync_10", lambda p: p.sync10)
    attainment_effect = _taxon_effect(
        projects, "attainment_75", lambda p: p.attainment(0.75)
    )

    lag_tests = {
        "time": _lag_test(
            projects, "time", lambda p: p.coevolution.always_over_time
        ),
        "source": _lag_test(
            projects, "source", lambda p: p.coevolution.always_over_source
        ),
        "both": _lag_test(
            projects, "both", lambda p: p.coevolution.always_over_both
        ),
    }

    tau_sync = kendall_tau_b(
        [p.sync5 for p in projects], [p.sync10 for p in projects]
    )
    defined = [
        p for p in projects
        if p.coevolution.advance_over_time is not None
        and p.coevolution.advance_over_source is not None
    ]
    tau_advance = kendall_tau_b(
        [p.coevolution.advance_over_time for p in defined],
        [p.coevolution.advance_over_source for p in defined],
    )
    return StatisticsReport(
        normality=normality,
        sync_effect=sync_effect,
        attainment_effect=attainment_effect,
        lag_tests=lag_tests,
        tau_sync=tau_sync,
        tau_advance=tau_advance,
    )
