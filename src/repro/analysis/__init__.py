"""The study driver and the computations behind every figure/table."""

from .authors import AuthorStats, author_stats
from .burden import BurdenSummary, TransitionBurden, replay_burden
from .cochange import (
    CoChangeStats,
    CorpusCoChange,
    cochange_stats,
    corpus_cochange,
)
from .compare import (
    COMPARED_MEASURES,
    MeasureComparison,
    StudyComparison,
    compare_studies,
)
from .drilldown import (
    DEFAULT_DURATION_BANDS,
    DurationBandSummary,
    TaxonSummary,
    duration_band_summaries,
    taxon_summaries,
)
from .figures import (
    LIFE_RANGE_EDGES,
    LIFE_RANGE_LABELS,
    AdvanceTable,
    AdvanceTableRow,
    AlwaysAdvance,
    AlwaysAdvanceRow,
    AttainmentBreakdown,
    ScatterPoint,
    SyncHistogram,
    fig4_sync_histogram,
    fig5_duration_scatter,
    fig6_advance_table,
    fig7_always_advance,
    fig8_attainment,
    long_life_sync_band,
)
from .measures import ProjectMeasures, analyze_project
from .sensitivity import (
    ChrononComparison,
    SeedSpread,
    chronon_sensitivity,
    coarse_joint,
    seed_sensitivity,
)
from .statistics import (
    LagTest,
    StatisticsReport,
    TaxonEffect,
    sec7_statistics,
)
from .study import StudyResult, canonical_study, run_study
from .survival import SchemaSurvival, schema_survival

__all__ = [
    "AuthorStats",
    "author_stats",
    "BurdenSummary",
    "TransitionBurden",
    "replay_burden",
    "CoChangeStats",
    "CorpusCoChange",
    "LIFE_RANGE_EDGES",
    "cochange_stats",
    "corpus_cochange",
    "DEFAULT_DURATION_BANDS",
    "DurationBandSummary",
    "TaxonSummary",
    "duration_band_summaries",
    "taxon_summaries",
    "ChrononComparison",
    "SeedSpread",
    "chronon_sensitivity",
    "coarse_joint",
    "seed_sensitivity",
    "LIFE_RANGE_LABELS",
    "AdvanceTable",
    "AdvanceTableRow",
    "AlwaysAdvance",
    "AlwaysAdvanceRow",
    "AttainmentBreakdown",
    "LagTest",
    "ProjectMeasures",
    "ScatterPoint",
    "StatisticsReport",
    "StudyResult",
    "SyncHistogram",
    "TaxonEffect",
    "analyze_project",
    "canonical_study",
    "fig4_sync_histogram",
    "fig5_duration_scatter",
    "fig6_advance_table",
    "fig7_always_advance",
    "fig8_attainment",
    "long_life_sync_band",
    "run_study",
    "SchemaSurvival",
    "schema_survival",
    "COMPARED_MEASURES",
    "MeasureComparison",
    "StudyComparison",
    "compare_studies",
    "sec7_statistics",
]
