"""Histogram bucketing helpers used by the figure computations.

The paper's figures group projects into value-range buckets (five
20%-wide buckets in Fig. 4, ten 10%-wide buckets in Fig. 6, four
lifetime ranges in Fig. 8).  These helpers implement the bucketing with
explicit edge conventions so the figure code cannot disagree about
boundary membership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Bucket:
    """A half-open value range ``[low, high)``; the last bucket of a
    scheme is closed on both ends so 1.0 lands in it."""

    low: float
    high: float
    closed_high: bool = False

    def __contains__(self, value: float) -> bool:
        if self.closed_high:
            return self.low <= value <= self.high + 1e-12
        return self.low <= value < self.high

    @property
    def label(self) -> str:
        low = f"{self.low:.2f}".rstrip("0").rstrip(".")
        high = f"{self.high:.2f}".rstrip("0").rstrip(".")
        return f"{low}-{high}"

    def pct_label(self) -> str:
        closer = "]" if self.closed_high else ")"
        return f"[{self.low:.0%}-{self.high:.0%}{closer}"


def equal_buckets(n: int, *, low: float = 0.0, high: float = 1.0) -> list[Bucket]:
    """``n`` equal-width buckets covering ``[low, high]``."""
    if n <= 0:
        raise ValueError("need at least one bucket")
    width = (high - low) / n
    return [
        Bucket(
            low=low + i * width,
            high=low + (i + 1) * width,
            closed_high=(i == n - 1),
        )
        for i in range(n)
    ]


def buckets_from_edges(edges: Sequence[float]) -> list[Bucket]:
    """Buckets from explicit edges, last one closed."""
    if len(edges) < 2:
        raise ValueError("need at least two edges")
    if list(edges) != sorted(edges):
        raise ValueError("edges must be increasing")
    n = len(edges) - 1
    return [
        Bucket(edges[i], edges[i + 1], closed_high=(i == n - 1))
        for i in range(n)
    ]


def bucket_index(buckets: Sequence[Bucket], value: float) -> int:
    """Index of the bucket containing ``value``; raises when none does."""
    for i, bucket in enumerate(buckets):
        if value in bucket:
            return i
    raise ValueError(f"value {value} outside all buckets")


def bucket_counts(
    values: Sequence[float | None], buckets: Sequence[Bucket]
) -> tuple[list[int], int]:
    """Count values per bucket; ``None`` values are tallied separately.

    Returns ``(counts, blank_count)`` — the paper's Fig. 6 keeps a
    "(blank)" row for projects whose measure is undefined.
    """
    counts = [0] * len(buckets)
    blanks = 0
    for value in values:
        if value is None:
            blanks += 1
        else:
            counts[bucket_index(buckets, value)] += 1
    return counts, blanks
