"""Rank-based statistics, implemented from scratch.

The paper's analysis (§7) is entirely non-parametric: Kendall τ for the
correlation of measures, Kruskal–Wallis for taxon effects.  Both are
implemented here directly (with tie corrections); the test suite
cross-checks them against scipy on random data.
"""

from __future__ import annotations

import math
from typing import Sequence

from scipy.stats import chi2 as _chi2

from .result import TestResult


def rank_with_ties(values: Sequence[float]) -> list[float]:
    """Average ranks (1-based), ties sharing their mean rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (
            j + 1 < len(order)
            and values[order[j + 1]] == values[order[i]]
        ):
            j += 1
        mean_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def kendall_tau_b(x: Sequence[float], y: Sequence[float]) -> TestResult:
    """Kendall's τ-b rank correlation with tie correction.

    Returns the statistic and a normal-approximation two-sided p-value
    (adequate for n ≥ 10, which all the study's uses satisfy).
    """
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    n = len(x)
    if n < 2:
        raise ValueError("need at least two observations")

    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = x[i] - x[j]
            dy = y[i] - y[j]
            product = dx * dy
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1

    n0 = n * (n - 1) // 2
    n1 = _tie_pairs(x)
    n2 = _tie_pairs(y)
    denominator = math.sqrt((n0 - n1) * (n0 - n2))
    if denominator == 0:
        return TestResult("kendall_tau_b", float("nan"), 1.0)
    tau = (concordant - discordant) / denominator

    # normal approximation of the null distribution of tau
    variance = (2 * (2 * n + 5)) / (9 * n * (n - 1))
    z = tau / math.sqrt(variance)
    p = 2 * (1 - _normal_cdf(abs(z)))
    return TestResult(
        "kendall_tau_b",
        tau,
        p,
        details={"concordant": concordant, "discordant": discordant, "z": z},
    )


def _tie_pairs(values: Sequence[float]) -> int:
    counts: dict[float, int] = {}
    for v in values:
        counts[v] = counts.get(v, 0) + 1
    return sum(c * (c - 1) // 2 for c in counts.values())


def _normal_cdf(z: float) -> float:
    return 0.5 * (1 + math.erf(z / math.sqrt(2)))


def kruskal_wallis(groups: Sequence[Sequence[float]]) -> TestResult:
    """Kruskal–Wallis H test over k independent groups, with ties.

    The p-value uses the χ² approximation with k−1 degrees of freedom,
    standard for group sizes ≥ 5 (all taxa qualify).
    """
    groups = [list(g) for g in groups if len(g) > 0]
    k = len(groups)
    if k < 2:
        raise ValueError("need at least two non-empty groups")
    pooled: list[float] = [v for g in groups for v in g]
    n = len(pooled)
    if n <= k:
        raise ValueError("too few observations")
    ranks = rank_with_ties(pooled)

    h = 0.0
    offset = 0
    for group in groups:
        size = len(group)
        rank_sum = sum(ranks[offset:offset + size])
        h += rank_sum * rank_sum / size
        offset += size
    h = 12 / (n * (n + 1)) * h - 3 * (n + 1)

    # tie correction
    counts: dict[float, int] = {}
    for v in pooled:
        counts[v] = counts.get(v, 0) + 1
    tie_term = sum(c ** 3 - c for c in counts.values())
    correction = 1 - tie_term / (n ** 3 - n)
    if correction > 0:
        h /= correction

    p = float(_chi2.sf(h, k - 1))
    group_medians = [median(g) for g in groups]
    return TestResult(
        "kruskal_wallis",
        h,
        p,
        details={"df": k - 1, "group_medians": group_medians},
    )


def median(values: Sequence[float]) -> float:
    """Plain sample median (interpolated for even sizes)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2


def shapiro_wilk(values: Sequence[float]) -> TestResult:
    """Shapiro–Wilk normality test (delegates to scipy)."""
    from scipy.stats import shapiro

    if len(values) < 3:
        raise ValueError("Shapiro-Wilk needs at least 3 observations")
    statistic, p = shapiro(list(values))
    return TestResult("shapiro_wilk", float(statistic), float(p))
