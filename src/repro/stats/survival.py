"""Kaplan–Meier survival estimation (from scratch).

Used by the schema-activity survival analysis: "at what fraction of a
project's life does the schema stop evolving?" is a survival question —
the event is the last logical change, and schemata still changing near
the end of the observation window are right-censored (their true
stopping point is unknown).  The estimator is the standard product-limit
form with right censoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Observation:
    """One subject: time of event (or of censoring)."""

    time: float
    event: bool  # True = the event occurred; False = right-censored

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("negative observation time")


@dataclass(frozen=True)
class SurvivalPoint:
    """One step of the survival curve."""

    time: float
    at_risk: int
    events: int
    survival: float


@dataclass(frozen=True)
class SurvivalCurve:
    """A Kaplan–Meier step function."""

    points: tuple[SurvivalPoint, ...]
    n_subjects: int
    n_events: int

    def survival_at(self, time: float) -> float:
        """S(t): the probability of surviving beyond ``time``."""
        survival = 1.0
        for point in self.points:
            if point.time > time:
                break
            survival = point.survival
        return survival

    def median_time(self) -> float | None:
        """First time S(t) drops to 0.5 or below (None if it never does)."""
        for point in self.points:
            if point.survival <= 0.5:
                return point.time
        return None


def kaplan_meier(observations: Sequence[Observation]) -> SurvivalCurve:
    """The product-limit estimator over right-censored observations."""
    if not observations:
        raise ValueError("no observations")
    ordered = sorted(observations, key=lambda o: o.time)
    n_events_total = sum(1 for o in ordered if o.event)

    points: list[SurvivalPoint] = []
    survival = 1.0
    at_risk = len(ordered)
    index = 0
    while index < len(ordered):
        time = ordered[index].time
        events = 0
        removed = 0
        while index < len(ordered) and ordered[index].time == time:
            if ordered[index].event:
                events += 1
            removed += 1
            index += 1
        if events > 0:
            survival *= 1 - events / at_risk
            points.append(
                SurvivalPoint(
                    time=time,
                    at_risk=at_risk,
                    events=events,
                    survival=survival,
                )
            )
        at_risk -= removed
    return SurvivalCurve(
        points=tuple(points),
        n_subjects=len(ordered),
        n_events=n_events_total,
    )
