"""Statistical substrate: rank tests, contingency tests, bucketing."""

from .bootstrap import Interval, bootstrap, median_interval, share_interval
from .buckets import (
    Bucket,
    bucket_counts,
    bucket_index,
    buckets_from_edges,
    equal_buckets,
)
from .contingency import chi_square, fisher_exact_rxc
from .ranks import (
    kendall_tau_b,
    kruskal_wallis,
    median,
    rank_with_ties,
    shapiro_wilk,
)
from .result import TestResult
from .survival import (
    Observation,
    SurvivalCurve,
    SurvivalPoint,
    kaplan_meier,
)

__all__ = [
    "Bucket",
    "Interval",
    "bootstrap",
    "median_interval",
    "share_interval",
    "TestResult",
    "Observation",
    "SurvivalCurve",
    "SurvivalPoint",
    "kaplan_meier",
    "bucket_counts",
    "bucket_index",
    "buckets_from_edges",
    "chi_square",
    "equal_buckets",
    "fisher_exact_rxc",
    "kendall_tau_b",
    "kruskal_wallis",
    "median",
    "rank_with_ties",
    "shapiro_wilk",
]
