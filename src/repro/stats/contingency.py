"""Contingency-table tests: χ² and an r×c Fisher exact test.

The paper (§7, "Testing Lag") runs a Chi-square and a two-sided Fisher
test over taxon × always-lag tables, which are 6×2 — beyond scipy's 2×2
``fisher_exact``.  This module implements the Freeman–Halton
generalisation from scratch: exact enumeration of all tables with the
observed margins when that is tractable, and Patefield-style Monte Carlo
sampling otherwise.
"""

from __future__ import annotations

import math
from typing import Sequence

from scipy.stats import chi2 as _chi2

from .result import TestResult

Matrix = Sequence[Sequence[int]]


def _validate(table: Matrix) -> list[list[int]]:
    rows = [list(row) for row in table]
    if not rows or not rows[0]:
        raise ValueError("empty contingency table")
    width = len(rows[0])
    for row in rows:
        if len(row) != width:
            raise ValueError("ragged contingency table")
        for cell in row:
            if cell < 0 or cell != int(cell):
                raise ValueError("cells must be non-negative integers")
    return rows


def chi_square(table: Matrix) -> TestResult:
    """Pearson's χ² test of independence for an r×c table."""
    rows = _validate(table)
    row_sums = [sum(row) for row in rows]
    col_sums = [sum(col) for col in zip(*rows)]
    total = sum(row_sums)
    if total == 0:
        raise ValueError("empty table (all zero)")
    if any(s == 0 for s in row_sums) or any(s == 0 for s in col_sums):
        raise ValueError("zero margin; drop empty rows/columns first")

    statistic = 0.0
    min_expected = float("inf")
    for i, row in enumerate(rows):
        for j, observed in enumerate(row):
            expected = row_sums[i] * col_sums[j] / total
            min_expected = min(min_expected, expected)
            statistic += (observed - expected) ** 2 / expected
    df = (len(rows) - 1) * (len(col_sums) - 1)
    p = float(_chi2.sf(statistic, df))
    return TestResult(
        "chi_square",
        statistic,
        p,
        details={"df": df, "min_expected": min_expected},
    )


def fisher_exact_rxc(
    table: Matrix,
    *,
    max_exact_tables: int = 200_000,
    monte_carlo_samples: int = 200_000,
    seed: int = 20230331,
) -> TestResult:
    """Two-sided Freeman–Halton exact test for an r×c table.

    The p-value is the total null probability of all tables with the
    observed margins whose probability does not exceed the observed
    table's.  Enumeration is used when the number of candidate tables is
    within ``max_exact_tables``; otherwise a Monte Carlo estimate over
    ``monte_carlo_samples`` margin-preserving random tables is returned
    (``details["method"]`` says which).
    """
    rows = _validate(table)
    rows = [row for row in rows if sum(row) > 0]
    if not rows:
        raise ValueError("empty table (all zero)")
    cols_keep = [j for j in range(len(rows[0])) if sum(r[j] for r in rows) > 0]
    rows = [[row[j] for j in cols_keep] for row in rows]
    if len(rows) < 2 or len(rows[0]) < 2:
        raise ValueError("need at least a 2x2 table after dropping zeros")

    row_sums = [sum(row) for row in rows]
    col_sums = [sum(col) for col in zip(*rows)]
    total = sum(row_sums)
    log_fact = _log_factorials(total)

    log_margin = (
        sum(log_fact[s] for s in row_sums)
        + sum(log_fact[s] for s in col_sums)
        - log_fact[total]
    )

    def log_prob(cells: list[int]) -> float:
        return log_margin - sum(log_fact[c] for c in cells)

    observed_cells = [c for row in rows for c in row]
    observed_log_p = log_prob(observed_cells)

    estimate = _count_tables(row_sums, col_sums, max_exact_tables)
    if estimate is not None:
        p = _exact_sum(rows, row_sums, col_sums, log_fact, observed_log_p)
        return TestResult(
            "fisher_exact_rxc",
            math.exp(observed_log_p),
            min(1.0, p),
            details={"method": "exact", "tables": estimate},
        )

    p = _monte_carlo_p(
        row_sums, col_sums, observed_log_p, monte_carlo_samples, seed
    )
    return TestResult(
        "fisher_exact_rxc",
        math.exp(observed_log_p),
        p,
        details={"method": "monte_carlo", "samples": monte_carlo_samples},
    )


def _log_factorials(n: int) -> list[float]:
    out = [0.0] * (n + 1)
    for i in range(2, n + 1):
        out[i] = out[i - 1] + math.log(i)
    return out


def _count_tables(
    row_sums: list[int], col_sums: list[int], limit: int
) -> int | None:
    """Count tables with the given margins, or None when above ``limit``.

    Uses the same recursive structure as the enumeration itself, with
    memoisation on (row index, remaining column sums), aborting early.
    """
    n_cols = len(col_sums)
    cache: dict[tuple, int] = {}

    def rec(row_idx: int, remaining: tuple[int, ...]) -> int:
        if row_idx == len(row_sums) - 1:
            # last row is forced
            return 1
        key = (row_idx, remaining)
        if key in cache:
            return cache[key]
        total = 0
        target = row_sums[row_idx]

        def fill(col: int, left: int, rem: list[int]) -> None:
            nonlocal total
            if total > limit:
                return
            if col == n_cols - 1:
                if left <= rem[col]:
                    rem[col] -= left
                    total += rec(row_idx + 1, tuple(rem))
                    rem[col] += left
                return
            upper = min(left, rem[col])
            for take in range(upper + 1):
                rem[col] -= take
                fill(col + 1, left - take, rem)
                rem[col] += take
                if total > limit:
                    return

        fill(0, target, list(remaining))
        cache[key] = total
        return total

    count = rec(0, tuple(col_sums))
    return count if count <= limit else None


def _exact_sum(
    rows: list[list[int]],
    row_sums: list[int],
    col_sums: list[int],
    log_fact: list[float],
    observed_log_p: float,
) -> float:
    """Sum the probabilities of all as-or-less-probable tables."""
    n_rows = len(row_sums)
    n_cols = len(col_sums)
    log_margin = (
        sum(log_fact[s] for s in row_sums)
        + sum(log_fact[s] for s in col_sums)
        - log_fact[sum(row_sums)]
    )
    p_total = 0.0

    def rec(row_idx: int, remaining: list[int], partial: float) -> None:
        nonlocal p_total
        if row_idx == n_rows - 1:
            log_p = log_margin - partial - sum(
                log_fact[c] for c in remaining
            )
            if log_p <= observed_log_p + 1e-9:
                p_total += math.exp(log_p)
            return
        target = row_sums[row_idx]

        def fill(col: int, left: int, acc: float) -> None:
            if col == n_cols - 1:
                if left <= remaining[col]:
                    remaining[col] -= left
                    rec(row_idx + 1, remaining, acc + log_fact[left])
                    remaining[col] += left
                return
            upper = min(left, remaining[col])
            for take in range(upper + 1):
                remaining[col] -= take
                fill(col + 1, left - take, acc + log_fact[take])
                remaining[col] += take

        fill(0, target, partial)

    rec(0, list(col_sums), 0.0)
    return p_total


def _monte_carlo_p(
    row_sums: list[int],
    col_sums: list[int],
    observed_log_p: float,
    samples: int,
    seed: int,
) -> float:
    """Monte Carlo Freeman–Halton p-value (vectorised with numpy).

    Random tables with the observed margins are drawn by filling rows
    top to bottom; within a row, each cell is a hypergeometric draw from
    the remaining column capacities (the correct conditional
    distribution given fixed margins).  All ``samples`` tables are drawn
    simultaneously via numpy's element-wise hypergeometric sampler, so
    the cost is ``(rows − 1) × (cols − 1)`` vectorised draws.
    """
    import numpy as np
    from scipy.special import gammaln

    rng = np.random.default_rng(seed)
    n_rows = len(row_sums)
    n_cols = len(col_sums)
    total = sum(row_sums)
    log_margin = (
        float(sum(gammaln(s + 1) for s in row_sums))
        + float(sum(gammaln(s + 1) for s in col_sums))
        - float(gammaln(total + 1))
    )

    remaining = np.tile(np.array(col_sums, dtype=np.int64), (samples, 1))
    cell_log_fact = np.zeros(samples)
    for i in range(n_rows - 1):
        left = np.full(samples, row_sums[i], dtype=np.int64)
        for j in range(n_cols - 1):
            ngood = remaining[:, j]
            nbad = remaining[:, j + 1:].sum(axis=1)
            can_draw = left > 0
            take = np.zeros(samples, dtype=np.int64)
            if can_draw.any():
                take[can_draw] = rng.hypergeometric(
                    ngood[can_draw], nbad[can_draw], left[can_draw]
                )
            remaining[:, j] -= take
            left -= take
            cell_log_fact += gammaln(take + 1)
        remaining[:, n_cols - 1] -= left
        cell_log_fact += gammaln(left + 1)
    # the last row is forced to the remaining column capacities
    cell_log_fact += gammaln(remaining + 1).sum(axis=1)

    log_p = log_margin - cell_log_fact
    hits = int(np.count_nonzero(log_p <= observed_log_p + 1e-9)) + 1
    return hits / (samples + 1)
