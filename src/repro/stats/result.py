"""Common result type for hypothesis tests."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test."""

    name: str
    statistic: float
    p_value: float
    details: dict = field(default_factory=dict)

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    def __str__(self) -> str:
        return (
            f"{self.name}: statistic={self.statistic:.4f}, "
            f"p={self.p_value:.4g}"
        )
