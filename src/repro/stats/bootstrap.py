"""Bootstrap confidence intervals for corpus-level shares and medians.

The paper reports point shares ("41% of the projects..."); with 195
projects those carry non-trivial sampling noise.  The reproduction adds
percentile-bootstrap intervals so measured-vs-paper comparisons in
EXPERIMENTS.md can say whether a paper value sits inside the synthetic
corpus's plausible band.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from .ranks import median

T = TypeVar("T")


@dataclass(frozen=True)
class Interval:
    """A percentile bootstrap interval around a point estimate."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.estimate:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] "
            f"@{self.confidence:.0%}"
        )


def bootstrap(
    items: Sequence[T],
    statistic: Callable[[Sequence[T]], float],
    *,
    replicates: int = 2000,
    confidence: float = 0.95,
    seed: int = 1729,
) -> Interval:
    """Percentile bootstrap of an arbitrary statistic."""
    if not items:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence out of (0, 1): {confidence}")
    rng = random.Random(seed)
    n = len(items)
    values = []
    for _ in range(replicates):
        resample = [items[rng.randrange(n)] for _ in range(n)]
        values.append(statistic(resample))
    values.sort()
    alpha = (1 - confidence) / 2
    low_index = int(alpha * replicates)
    high_index = min(replicates - 1, int((1 - alpha) * replicates))
    return Interval(
        estimate=statistic(items),
        low=values[low_index],
        high=values[high_index],
        confidence=confidence,
    )


def share_interval(
    flags: Sequence[bool],
    *,
    replicates: int = 2000,
    confidence: float = 0.95,
    seed: int = 1729,
) -> Interval:
    """Bootstrap interval of a boolean share (e.g. 'always in advance')."""
    return bootstrap(
        list(flags),
        lambda sample: sum(sample) / len(sample),
        replicates=replicates,
        confidence=confidence,
        seed=seed,
    )


def median_interval(
    values: Sequence[float],
    *,
    replicates: int = 2000,
    confidence: float = 0.95,
    seed: int = 1729,
) -> Interval:
    """Bootstrap interval of a sample median."""
    return bootstrap(
        list(values),
        median,
        replicates=replicates,
        confidence=confidence,
        seed=seed,
    )
