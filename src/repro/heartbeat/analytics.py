"""Shape analytics over heartbeats.

The case study (§3.3) describes histories in terms of *flat-line
periods* connected by bursts of change; the taxa of [33] are defined by
how concentrated activity is in time.  This module quantifies those
shapes: flat-line segments, the Gini coefficient of temporal activity
concentration, burstiness, and the share of activity inside the densest
fifth of the months (the temporal Pareto reading of §6.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .series import Heartbeat


@dataclass(frozen=True)
class FlatLine:
    """A maximal run of months with no activity."""

    start_index: int
    length: int

    @property
    def end_index(self) -> int:
        return self.start_index + self.length - 1


def flat_lines(
    heartbeat: Heartbeat, *, min_length: int = 2
) -> list[FlatLine]:
    """Maximal zero-activity runs of at least ``min_length`` months."""
    runs: list[FlatLine] = []
    start = None
    for index, value in enumerate(heartbeat.values):
        if value == 0:
            if start is None:
                start = index
        elif start is not None:
            length = index - start
            if length >= min_length:
                runs.append(FlatLine(start, length))
            start = None
    if start is not None:
        length = len(heartbeat.values) - start
        if length >= min_length:
            runs.append(FlatLine(start, length))
    return runs


def longest_flat_line(heartbeat: Heartbeat) -> int:
    """Length of the longest zero-activity run (0 when none)."""
    runs = flat_lines(heartbeat, min_length=1)
    return max((run.length for run in runs), default=0)


def gini(heartbeat: Heartbeat) -> float:
    """Gini coefficient of the temporal concentration of activity.

    0 means activity is spread perfectly evenly over the months; values
    toward 1 mean a few months hold almost all of it (the frozen and
    focused-shot shapes).  Undefined (raises) for all-zero heartbeats.
    """
    values = sorted(heartbeat.values)
    total = sum(values)
    if total <= 0:
        raise ValueError("Gini of an all-zero heartbeat is undefined")
    n = len(values)
    weighted = sum((i + 1) * v for i, v in enumerate(values))
    return (2 * weighted) / (n * total) - (n + 1) / n


def burstiness(heartbeat: Heartbeat) -> float:
    """Goh–Barabási burstiness of the monthly activity values.

    ``(σ − μ) / (σ + μ)`` in [−1, 1]: −1 for perfectly periodic
    (constant) signals, 0 for Poisson-like, toward +1 for heavy bursts.
    """
    values = heartbeat.values
    n = len(values)
    mean = sum(values) / n
    if mean == 0:
        raise ValueError("burstiness of an all-zero heartbeat is undefined")
    variance = sum((v - mean) ** 2 for v in values) / n
    sigma = math.sqrt(variance)
    if sigma + mean == 0:
        return -1.0
    return (sigma - mean) / (sigma + mean)


def top_share(heartbeat: Heartbeat, *, fraction: float = 0.2) -> float:
    """Share of total activity inside the densest ``fraction`` of months.

    ``top_share(hb, fraction=0.2)`` is the temporal 80/20 measure: 0.8
    means the busiest fifth of the months holds 80% of all activity.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction out of (0, 1]: {fraction}")
    total = heartbeat.total
    if total <= 0:
        raise ValueError("top share of an all-zero heartbeat is undefined")
    k = max(1, round(len(heartbeat.values) * fraction))
    densest = sorted(heartbeat.values, reverse=True)[:k]
    return sum(densest) / total


@dataclass(frozen=True)
class ShapeSummary:
    """All shape analytics of one heartbeat."""

    gini: float
    burstiness: float
    top20_share: float
    longest_flat_line: int
    flat_line_count: int
    active_months: int
    duration_months: int

    @classmethod
    def of(cls, heartbeat: Heartbeat) -> "ShapeSummary":
        return cls(
            gini=gini(heartbeat),
            burstiness=burstiness(heartbeat),
            top20_share=top_share(heartbeat, fraction=0.2),
            longest_flat_line=longest_flat_line(heartbeat),
            flat_line_count=len(flat_lines(heartbeat)),
            active_months=heartbeat.active_months,
            duration_months=heartbeat.duration_months,
        )
