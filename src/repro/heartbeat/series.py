"""Monthly heartbeats and cumulative fractional progressions.

A *heartbeat* (paper §3.1) is the zero-filled sequence of monthly activity
measurements of a project — either Schema Activity (attribute-level atomic
changes) or Project Activity (files updated).  Its *cumulative fractional
activity* (§3.2, eq. 1) is the running total of per-month percentages of
lifetime activity, a monotone series ending at 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime
from typing import Iterable, Sequence

from .months import Month, month_range


class ZeroTotalError(ValueError):
    """A cumulative fraction was requested for an all-zero heartbeat."""


@dataclass
class Heartbeat:
    """A zero-filled monthly activity series starting at ``start``."""

    start: Month
    values: list[float] = field(default_factory=list)
    label: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a heartbeat needs at least one month")
        if any(v < 0 for v in self.values):
            raise ValueError("negative activity")

    @classmethod
    def from_events(
        cls,
        events: Iterable[tuple[datetime | date | Month, float]],
        *,
        span: tuple[Month, Month] | None = None,
        label: str = "",
    ) -> "Heartbeat":
        """Aggregate timestamped activity amounts into monthly buckets.

        Args:
            events: ``(moment, amount)`` pairs in any order.
            span: explicit ``(first, last)`` month window; defaults to the
                span of the events themselves.  Events outside an explicit
                span raise ``ValueError`` (they indicate misalignment bugs).
            label: display label.
        """
        buckets: dict[int, float] = {}
        for moment, amount in events:
            month = moment if isinstance(moment, Month) else Month.of(moment)
            buckets[month.index] = buckets.get(month.index, 0.0) + amount
        if span is None:
            if not buckets:
                raise ValueError("no events and no explicit span")
            first = Month.from_index(min(buckets))
            last = Month.from_index(max(buckets))
        else:
            first, last = span
            if buckets:
                if min(buckets) < first.index or max(buckets) > last.index:
                    raise ValueError("event outside the explicit span")
        values = [
            buckets.get(month.index, 0.0) for month in month_range(first, last)
        ]
        return cls(start=first, values=values, label=label)

    @property
    def months(self) -> list[Month]:
        return [self.start.shift(i) for i in range(len(self.values))]

    @property
    def end(self) -> Month:
        return self.start.shift(len(self.values) - 1)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def duration_months(self) -> int:
        """Number of monthly time-points (paper: project duration)."""
        return len(self.values)

    @property
    def active_months(self) -> int:
        return sum(1 for v in self.values if v > 0)

    def __len__(self) -> int:
        return len(self.values)

    def aligned(self, start: Month, end: Month) -> "Heartbeat":
        """Re-window onto ``[start, end]``, zero-filling outside data.

        Activity outside the target window would be silently lost, so it
        raises instead.
        """
        if start > self.start or end < self.end:
            inside = (
                self.start >= start
                and self.end <= end
            )
            if not inside:
                clipped_left = [
                    v for m, v in zip(self.months, self.values)
                    if m < start and v > 0
                ]
                clipped_right = [
                    v for m, v in zip(self.months, self.values)
                    if m > end and v > 0
                ]
                if clipped_left or clipped_right:
                    raise ValueError(
                        "aligning would clip non-zero activity"
                    )
        lead = self.start - start
        out = [0.0] * (end - start + 1)
        for i, value in enumerate(self.values):
            position = lead + i
            if 0 <= position < len(out):
                out[position] = value
        return Heartbeat(start=start, values=out, label=self.label)

    def rebucket(self, chronon_months: int) -> "Heartbeat":
        """Re-aggregate into coarser buckets of ``chronon_months`` months.

        The paper's unit of time is the month (§8 discusses this as a
        construct-validity choice); rebucketing lets the sensitivity
        analysis recompute every measure at quarterly or half-yearly
        granularity.  The coarse heartbeat keeps the same start month;
        the last bucket may cover fewer source months.
        """
        if chronon_months < 1:
            raise ValueError("chronon must be at least one month")
        if chronon_months == 1:
            return Heartbeat(self.start, list(self.values), self.label)
        coarse = [
            sum(self.values[i:i + chronon_months])
            for i in range(0, len(self.values), chronon_months)
        ]
        return Heartbeat(start=self.start, values=coarse, label=self.label)

    def cumulative(self) -> list[float]:
        """Running totals of the raw activity values."""
        out: list[float] = []
        running = 0.0
        for value in self.values:
            running += value
            out.append(running)
        return out

    def cumulative_fraction(self) -> list[float]:
        """The paper's cumulative fractional activity (eq. 1), in [0, 1].

        Raises:
            ZeroTotalError: when the heartbeat has no activity at all
                (undefined progression — the "(blank)" projects of Fig. 6).
        """
        total = self.total
        if total <= 0:
            raise ZeroTotalError(
                f"heartbeat {self.label!r} has zero total activity"
            )
        return [value / total for value in self.cumulative()]


def time_progress(n_points: int) -> list[float]:
    """Cumulative fractional *time* over ``n_points`` monthly time-points.

    Time is treated as a uniform heartbeat (one unit per month, including
    the initiating month), so the progression at month ``i`` is
    ``(i + 1) / n_points`` and ends at exactly 1.0 — directly comparable
    with the activity progressions.
    """
    if n_points <= 0:
        raise ValueError("need at least one time-point")
    return [(i + 1) / n_points for i in range(n_points)]


def fraction_of_life(index: int, n_points: int) -> float:
    """The fraction of project life covered by monthly time-point ``index``.

    Used for attainment timepoints: month 0 of a 1-month project covers
    100% of its life; month ``i`` of an ``n``-point life covers
    ``(i + 1) / n``.
    """
    if not 0 <= index < n_points:
        raise ValueError(f"index {index} outside 0..{n_points - 1}")
    return (index + 1) / n_points


def is_monotone(series: Sequence[float], *, tolerance: float = 1e-12) -> bool:
    """True when ``series`` never decreases (within float tolerance)."""
    return all(
        later >= earlier - tolerance
        for earlier, later in zip(series, series[1:])
    )
