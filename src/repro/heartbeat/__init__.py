"""Monthly heartbeats: bucketing, alignment, cumulative progressions."""

from .analytics import (
    FlatLine,
    ShapeSummary,
    burstiness,
    flat_lines,
    gini,
    longest_flat_line,
    top_share,
)
from .months import Month, month_range
from .series import (
    Heartbeat,
    ZeroTotalError,
    fraction_of_life,
    is_monotone,
    time_progress,
)

__all__ = [
    "FlatLine",
    "Heartbeat",
    "ShapeSummary",
    "burstiness",
    "flat_lines",
    "gini",
    "longest_flat_line",
    "top_share",
    "Month",
    "ZeroTotalError",
    "fraction_of_life",
    "is_monotone",
    "month_range",
    "time_progress",
]
