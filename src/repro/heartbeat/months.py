"""Calendar-month arithmetic.

The paper quantises all time into months ("a reasonable, common chronon"
for multi-year projects).  :class:`Month` is a total-ordered value type
with index arithmetic so heartbeats can be aligned and zero-filled.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime


@dataclass(frozen=True, order=True)
class Month:
    """A calendar month, e.g. ``Month(2015, 3)``."""

    year: int
    month: int

    def __post_init__(self) -> None:
        if not 1 <= self.month <= 12:
            raise ValueError(f"month out of range: {self.month}")

    @classmethod
    def of(cls, moment: datetime | date) -> "Month":
        return cls(moment.year, moment.month)

    @classmethod
    def from_index(cls, index: int) -> "Month":
        year, month0 = divmod(index, 12)
        return cls(year, month0 + 1)

    @property
    def index(self) -> int:
        """Months since year 0 — the linearised position of this month."""
        return self.year * 12 + (self.month - 1)

    def shift(self, months: int) -> "Month":
        return Month.from_index(self.index + months)

    def __sub__(self, other: "Month") -> int:
        """Whole months between two Months (self - other)."""
        return self.index - other.index

    def __str__(self) -> str:
        return f"{self.year:04d}-{self.month:02d}"


def month_range(start: Month, end: Month) -> list[Month]:
    """All months from ``start`` to ``end`` inclusive."""
    if end < start:
        raise ValueError(f"end {end} before start {start}")
    return [start.shift(i) for i in range(end - start + 1)]
