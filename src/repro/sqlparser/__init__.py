"""From-scratch SQL DDL parsing (MySQL / PostgreSQL dialects)."""

from .dialect import detect_dialect
from .lexer import LexError, Token, TokenType, tokenize, tokenize_reference
from .parser import (
    ParseIssue,
    ParseResult,
    parse_schema,
    parse_table,
    split_statements,
)

__all__ = [
    "LexError",
    "ParseIssue",
    "ParseResult",
    "Token",
    "TokenType",
    "detect_dialect",
    "parse_schema",
    "parse_table",
    "split_statements",
    "tokenize",
    "tokenize_reference",
]
