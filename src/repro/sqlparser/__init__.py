"""From-scratch SQL DDL parsing with a pluggable dialect registry."""

from .dialect import (
    Dialect,
    EmitterConventions,
    detect_dialect,
    get_dialect,
    register_dialect,
    registered_dialects,
)
from .lexer import LexError, Token, TokenType, tokenize, tokenize_reference
from .parser import (
    ParseIssue,
    ParseResult,
    apply_statement,
    parse_schema,
    parse_table,
    split_statements,
    strip_copy_blocks,
)
from .segment import Segment, segment_statements

__all__ = [
    "Dialect",
    "EmitterConventions",
    "LexError",
    "ParseIssue",
    "ParseResult",
    "Segment",
    "Token",
    "TokenType",
    "apply_statement",
    "detect_dialect",
    "get_dialect",
    "register_dialect",
    "registered_dialects",
    "parse_schema",
    "parse_table",
    "segment_statements",
    "split_statements",
    "strip_copy_blocks",
    "tokenize",
    "tokenize_reference",
]
