"""From-scratch SQL DDL parsing (MySQL / PostgreSQL dialects)."""

from .dialect import detect_dialect
from .lexer import LexError, Token, TokenType, tokenize, tokenize_reference
from .parser import (
    ParseIssue,
    ParseResult,
    apply_statement,
    parse_schema,
    parse_table,
    split_statements,
    strip_copy_blocks,
)
from .segment import Segment, segment_statements

__all__ = [
    "LexError",
    "ParseIssue",
    "ParseResult",
    "Segment",
    "Token",
    "TokenType",
    "apply_statement",
    "detect_dialect",
    "parse_schema",
    "parse_table",
    "segment_statements",
    "split_statements",
    "strip_copy_blocks",
    "tokenize",
    "tokenize_reference",
]
