"""Dialect detection for mined DDL files.

The study corpus keeps MySQL or Postgres schema files (in that order of
preference when a project ships both).  We detect the dialect from surface
features so the parser and re-emitter can make dialect-appropriate choices
and so corpus statistics can report the vendor mix.
"""

from __future__ import annotations

import re

_MYSQL_SIGNALS = (
    re.compile(r"`"),                          # backtick identifiers
    re.compile(r"\bENGINE\s*=", re.I),
    re.compile(r"\bAUTO_INCREMENT\b", re.I),
    re.compile(r"\bUNSIGNED\b", re.I),
    re.compile(r"^\s*#", re.M),                # '#' comments
    re.compile(r"\bCHARSET\s*=", re.I),
    re.compile(r"\bENUM\s*\(", re.I),
)

_SQLITE_SIGNALS = (
    re.compile(r"\bAUTOINCREMENT\b", re.I),       # no underscore: SQLite
    re.compile(r"\bWITHOUT\s+ROWID\b", re.I),
    re.compile(r"^\s*PRAGMA\b", re.I | re.M),
    re.compile(r"\bIF\s+NOT\s+EXISTS\b.*\bsqlite_", re.I),
)

_POSTGRES_SIGNALS = (
    re.compile(r"\bSERIAL\b", re.I),
    re.compile(r"\bBIGSERIAL\b", re.I),
    re.compile(r"::"),                         # cast operator
    re.compile(r"\bnextval\s*\(", re.I),
    re.compile(r"\$\$"),                       # dollar quoting
    re.compile(r"\bBYTEA\b", re.I),
    re.compile(r"\bTIMESTAMPTZ\b", re.I),
    re.compile(r"\bWITH\s+TIME\s+ZONE\b", re.I),
    re.compile(r"\bCREATE\s+SEQUENCE\b", re.I),
    re.compile(r"\bOWNER\s+TO\b", re.I),
)


def detect_dialect(text: str) -> str:
    """Return ``"mysql"``, ``"postgres"``, ``"sqlite"`` or ``"generic"``.

    Scores each dialect by the number of distinct signal patterns
    present; ties and empty scores fall back to ``"generic"``.  SQLite
    files appear in the wild even though the study's elicitation rules
    keep MySQL/Postgres only, so the miner labels them correctly rather
    than misattributing their features.
    """
    scores = {
        "mysql": sum(
            1 for pattern in _MYSQL_SIGNALS if pattern.search(text)
        ),
        "postgres": sum(
            1 for pattern in _POSTGRES_SIGNALS if pattern.search(text)
        ),
        "sqlite": sum(
            1 for pattern in _SQLITE_SIGNALS if pattern.search(text)
        ),
    }
    best = max(scores, key=scores.get)
    best_score = scores[best]
    if best_score == 0:
        return "generic"
    if sum(1 for s in scores.values() if s == best_score) > 1:
        return "generic"  # ambiguous tie
    return best
