"""Dialect detection for mined DDL files.

The study corpus keeps MySQL or Postgres schema files (in that order of
preference when a project ships both).  We detect the dialect from surface
features so the parser and re-emitter can make dialect-appropriate choices
and so corpus statistics can report the vendor mix.

Detection is expressed as bitmasks over a fixed signal table so the
incremental parse engine can cache a mask per statement fragment and OR
the masks of a version's fragments instead of rescanning the whole file.
Most signal patterns are *fragment-local*: a match in the whole file
lies entirely inside one top-level statement segment (no pattern except
the whole-text ones below can match across a top-level ``;``), and a
match inside a segment is a match in the whole file.  Three patterns
cannot be localised and are evaluated on the full text each time:

* ``^\\s*#`` and ``^\\s*PRAGMA`` are ``re.M`` line-anchored — a segment
  that starts mid-line (right after a ``;``) would gain a fake
  line-start anchor when scanned standalone;
* the SQLite ``IF NOT EXISTS ... sqlite_`` heuristic uses ``.*`` which
  may span a ``;`` within one line.
"""

from __future__ import annotations

import re

#: Fragment-local signals as ``(dialect, pattern)``; bit ``i`` of a
#: signal mask corresponds to entry ``i`` of this table.
_FRAGMENT_SIGNALS: tuple[tuple[str, re.Pattern[str]], ...] = (
    # --- MySQL
    ("mysql", re.compile(r"`")),                          # backtick identifiers
    ("mysql", re.compile(r"\bENGINE\s*=", re.I)),
    ("mysql", re.compile(r"\bAUTO_INCREMENT\b", re.I)),
    ("mysql", re.compile(r"\bUNSIGNED\b", re.I)),
    ("mysql", re.compile(r"\bCHARSET\s*=", re.I)),
    ("mysql", re.compile(r"\bENUM\s*\(", re.I)),
    # --- SQLite
    ("sqlite", re.compile(r"\bAUTOINCREMENT\b", re.I)),   # no underscore: SQLite
    ("sqlite", re.compile(r"\bWITHOUT\s+ROWID\b", re.I)),
    # --- Postgres
    ("postgres", re.compile(r"\bSERIAL\b", re.I)),
    ("postgres", re.compile(r"\bBIGSERIAL\b", re.I)),
    ("postgres", re.compile(r"::")),                      # cast operator
    ("postgres", re.compile(r"\bnextval\s*\(", re.I)),
    ("postgres", re.compile(r"\$\$")),                    # dollar quoting
    ("postgres", re.compile(r"\bBYTEA\b", re.I)),
    ("postgres", re.compile(r"\bTIMESTAMPTZ\b", re.I)),
    ("postgres", re.compile(r"\bWITH\s+TIME\s+ZONE\b", re.I)),
    ("postgres", re.compile(r"\bCREATE\s+SEQUENCE\b", re.I)),
    ("postgres", re.compile(r"\bOWNER\s+TO\b", re.I)),
)

#: Whole-text-only signals; their bits sit above the fragment bits.
_WHOLE_TEXT_SIGNALS: tuple[tuple[str, re.Pattern[str]], ...] = (
    ("mysql", re.compile(r"^\s*#", re.M)),                # '#' comments
    ("sqlite", re.compile(r"^\s*PRAGMA\b", re.I | re.M)),
    ("sqlite", re.compile(r"\bIF\s+NOT\s+EXISTS\b.*\bsqlite_", re.I)),
)

_WHOLE_TEXT_SHIFT = len(_FRAGMENT_SIGNALS)

#: Per-dialect bitmasks over the combined signal table.
_DIALECT_BITS: dict[str, int] = {}
for _bit, (_dialect, _) in enumerate(_FRAGMENT_SIGNALS + _WHOLE_TEXT_SIGNALS):
    _DIALECT_BITS[_dialect] = _DIALECT_BITS.get(_dialect, 0) | (1 << _bit)


def fragment_signal_mask(text: str) -> int:
    """Bitmask of the fragment-local signals present in ``text``.

    Callers scanning a statement fragment (rather than a whole file)
    should pass ``" " + fragment`` so that ``\\b`` anchors at the
    fragment's first character behave as they do in the full text,
    where the preceding character is ``;`` or start-of-file — all
    non-word, like the space.
    """
    mask = 0
    for bit, (_, pattern) in enumerate(_FRAGMENT_SIGNALS):
        if pattern.search(text):
            mask |= 1 << bit
    return mask


def whole_text_signal_mask(text: str) -> int:
    """Bitmask of the three signals that must see the full text."""
    mask = 0
    for bit, (_, pattern) in enumerate(_WHOLE_TEXT_SIGNALS):
        if pattern.search(text):
            mask |= 1 << (bit + _WHOLE_TEXT_SHIFT)
    return mask


def dialect_from_mask(mask: int) -> str:
    """Resolve a combined signal mask to a dialect label.

    Scores each dialect by the number of distinct signal bits present;
    ties and empty scores fall back to ``"generic"``.
    """
    scores = {
        dialect: (mask & bits).bit_count()
        for dialect, bits in _DIALECT_BITS.items()
    }
    best = max(scores, key=scores.get)
    best_score = scores[best]
    if best_score == 0:
        return "generic"
    if sum(1 for s in scores.values() if s == best_score) > 1:
        return "generic"  # ambiguous tie
    return best


def detect_dialect(text: str) -> str:
    """Return ``"mysql"``, ``"postgres"``, ``"sqlite"`` or ``"generic"``.

    SQLite files appear in the wild even though the study's elicitation
    rules keep MySQL/Postgres only, so the miner labels them correctly
    rather than misattributing their features.
    """
    return dialect_from_mask(
        fragment_signal_mask(text) | whole_text_signal_mask(text)
    )
