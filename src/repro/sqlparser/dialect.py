"""The dialect plugin registry: detection signals + emission conventions.

The study corpus keeps MySQL, Postgres or SQLite schema files.  Each
supported vendor is a :class:`Dialect` plugin registered here: it
declares the surface signals that vote for it during detection, the
lexer keyword extensions and parser quirks it relies on, and the
re-emission conventions (:class:`EmitterConventions`) the corpus
generator uses to serialise schemas in its flavour.  New workload
families add a dialect by calling :func:`register_dialect` — nothing
else in the parser or the mining loaders needs to change.

Detection is expressed as bitmasks over a fixed signal table so the
incremental parse engine can cache a mask per statement fragment and OR
the masks of a version's fragments instead of rescanning the whole
file.  The combined table is rebuilt from the registry on every
registration; bit positions are an in-process detail (masks are never
persisted), so registering a new dialect cannot invalidate any stored
artifact.

Almost every signal pattern is *fragment-local*: a match in the whole
file lies entirely inside one top-level statement segment (no
fragment-local pattern can match across a top-level ``;``), and a match
inside a segment is a match in the whole file.  The SQLite
``IF NOT EXISTS ... sqlite_`` heuristic is deliberately bounded with
``[^;]*`` so it cannot cross a statement boundary either — an unbounded
``.*`` used to connect an ``IF NOT EXISTS`` in one statement with a
``sqlite_`` reference in a *later* statement on the same line,
mis-voting mixed-dialect files (and it would disagree between the
whole-text and per-fragment scans).  Two patterns cannot be localised
and are evaluated on the full text each time: ``^\\s*#`` and
``^\\s*PRAGMA`` are ``re.M`` line-anchored — a segment that starts
mid-line (right after a ``;``) would gain a fake line-start anchor when
scanned standalone.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass(frozen=True)
class EmitterConventions:
    """How :func:`~repro.corpus.ddlgen.emit_ddl` speaks this dialect.

    ``type_names`` maps normalised type *families* to the dialect's
    preferred spelling (SQLite's type-affinity names); unmapped families
    render through :meth:`~repro.schema.types.DataType.render_sql`
    unchanged.  The mapping must stay injective under
    :func:`~repro.schema.types.normalize_type` so emitted texts re-parse
    to the same logical schema.  ``rowid_tables`` switches on SQLite's
    rowid conventions: a single integer primary key renders inline as
    ``INTEGER PRIMARY KEY AUTOINCREMENT``; any other key renders
    table-level and the table gains a ``WITHOUT ROWID`` suffix.
    """

    ident_quote: str = ""
    preamble: tuple[str, ...] = ()
    table_suffix: str = ""
    type_names: tuple[tuple[str, str], ...] = ()
    rowid_tables: bool = False

    def quote(self, name: str) -> str:
        return f"{self.ident_quote}{name}{self.ident_quote}"

    def type_name(self, family: str) -> str | None:
        for key, spelled in self.type_names:
            if key == family:
                return spelled
        return None


@dataclass(frozen=True)
class Dialect:
    """One pluggable dialect: detection signals + parse/emit conventions.

    ``fragment_signals`` are the dialect's fragment-local detection
    patterns (cacheable per statement fragment); ``whole_text_signals``
    are the few that must see the full text (``re.M`` line anchors).
    ``keywords`` documents the lexer keyword extensions the dialect
    leans on and ``quirks`` the parser behaviours it requires — both are
    the registry's contract for the (tolerant) lexer and parser, which
    accept the union of all registered dialects' extensions.
    """

    name: str
    fragment_signals: tuple[re.Pattern, ...] = ()
    whole_text_signals: tuple[re.Pattern, ...] = ()
    keywords: frozenset[str] = frozenset()
    quirks: frozenset[str] = frozenset()
    emitter: EmitterConventions = field(default_factory=EmitterConventions)


#: The registry, in registration order (bit positions follow it).
_REGISTRY: dict[str, Dialect] = {}

#: Fragment-local signals as ``(dialect, pattern)``; bit ``i`` of a
#: signal mask corresponds to entry ``i`` of this table.  Rebuilt from
#: the registry by :func:`register_dialect`.
_FRAGMENT_SIGNALS: tuple[tuple[str, re.Pattern], ...] = ()

#: Whole-text-only signals; their bits sit above the fragment bits.
_WHOLE_TEXT_SIGNALS: tuple[tuple[str, re.Pattern], ...] = ()

_WHOLE_TEXT_SHIFT = 0

#: Per-dialect bitmasks over the combined signal table.
_DIALECT_BITS: dict[str, int] = {}


def _rebuild_signal_tables() -> None:
    global _FRAGMENT_SIGNALS, _WHOLE_TEXT_SIGNALS
    global _WHOLE_TEXT_SHIFT, _DIALECT_BITS
    fragment: list[tuple[str, re.Pattern]] = []
    whole: list[tuple[str, re.Pattern]] = []
    for dialect in _REGISTRY.values():
        fragment.extend(
            (dialect.name, pattern)
            for pattern in dialect.fragment_signals
        )
        whole.extend(
            (dialect.name, pattern)
            for pattern in dialect.whole_text_signals
        )
    _FRAGMENT_SIGNALS = tuple(fragment)
    _WHOLE_TEXT_SIGNALS = tuple(whole)
    _WHOLE_TEXT_SHIFT = len(_FRAGMENT_SIGNALS)
    bits: dict[str, int] = {}
    for bit, (name, _) in enumerate(_FRAGMENT_SIGNALS + _WHOLE_TEXT_SIGNALS):
        bits[name] = bits.get(name, 0) | (1 << bit)
    _DIALECT_BITS = bits


def register_dialect(dialect: Dialect) -> Dialect:
    """Register (or replace) a dialect plugin and rebuild the tables.

    Masks computed before a registration are not comparable with masks
    computed after it (bit positions shift) — callers that cache masks
    cache them per process, never across registrations.  In practice
    registration happens at import time, before any mask is computed.
    """
    _REGISTRY[dialect.name] = dialect
    _rebuild_signal_tables()
    return dialect


def get_dialect(name: str) -> Dialect:
    """The registered dialect plugin called ``name`` (KeyError if none)."""
    return _REGISTRY[name]


def registered_dialects() -> tuple[str, ...]:
    """All registered dialect names, in registration order."""
    return tuple(_REGISTRY)


# ----------------------------------------------------------------------
# the built-in dialects (registration order fixes the bit layout)

MYSQL = register_dialect(Dialect(
    name="mysql",
    fragment_signals=(
        re.compile(r"`"),                          # backtick identifiers
        re.compile(r"\bENGINE\s*=", re.I),
        re.compile(r"\bAUTO_INCREMENT\b", re.I),
        re.compile(r"\bUNSIGNED\b", re.I),
        re.compile(r"\bCHARSET\s*=", re.I),
        re.compile(r"\bENUM\s*\(", re.I),
    ),
    whole_text_signals=(
        re.compile(r"^\s*#", re.M),                # '#' comments
    ),
    keywords=frozenset({"AUTO_INCREMENT", "UNSIGNED", "ENGINE", "CHARSET"}),
    quirks=frozenset({
        "backtick-identifiers", "table-options", "executable-comments",
    }),
    emitter=EmitterConventions(
        ident_quote="`",
        table_suffix=" ENGINE=InnoDB DEFAULT CHARSET=utf8",
    ),
))

SQLITE = register_dialect(Dialect(
    name="sqlite",
    fragment_signals=(
        re.compile(r"\bAUTOINCREMENT\b", re.I),    # no underscore: SQLite
        re.compile(r"\bWITHOUT\s+ROWID\b", re.I),
        # system-table references near IF NOT EXISTS (sqlite_sequence
        # etc.); bounded to the containing statement — ``[^;]*`` cannot
        # cross a top-level ``;`` in either the whole-text or the
        # per-fragment scan, so the signal is fragment-local
        re.compile(r"\bIF\s+NOT\s+EXISTS\b[^;]*\bsqlite_", re.I),
    ),
    whole_text_signals=(
        re.compile(r"^\s*PRAGMA\b", re.I | re.M),
    ),
    keywords=frozenset({"AUTOINCREMENT", "PRAGMA", "WITHOUT", "ROWID"}),
    quirks=frozenset({
        "inline-rowid-pk", "without-rowid-tables", "pragma-statements",
        "type-affinity",
    }),
    emitter=EmitterConventions(
        preamble=("PRAGMA foreign_keys = OFF;",),
        # type-affinity spellings; injective under normalize_type
        # ("REAL" aliases to the otherwise-unused "float" family)
        type_names=(
            ("int", "INTEGER"),
            ("decimal", "NUMERIC"),
            ("double", "REAL"),
        ),
        rowid_tables=True,
    ),
))

POSTGRES = register_dialect(Dialect(
    name="postgres",
    fragment_signals=(
        re.compile(r"\bSERIAL\b", re.I),
        re.compile(r"\bBIGSERIAL\b", re.I),
        re.compile(r"::"),                         # cast operator
        re.compile(r"\bnextval\s*\(", re.I),
        re.compile(r"\$\$"),                       # dollar quoting
        re.compile(r"\bBYTEA\b", re.I),
        re.compile(r"\bTIMESTAMPTZ\b", re.I),
        re.compile(r"\bWITH\s+TIME\s+ZONE\b", re.I),
        re.compile(r"\bCREATE\s+SEQUENCE\b", re.I),
        re.compile(r"\bOWNER\s+TO\b", re.I),
    ),
    keywords=frozenset({"SERIAL", "BIGSERIAL", "BYTEA", "TIMESTAMPTZ"}),
    quirks=frozenset({
        "serial-autoincrement", "dollar-quoting", "set-statements",
    }),
    emitter=EmitterConventions(
        preamble=("SET client_encoding = 'UTF8';",),
    ),
))


# ----------------------------------------------------------------------
# mask computation (the fragment-cache contract)

def fragment_signal_mask(text: str) -> int:
    """Bitmask of the fragment-local signals present in ``text``.

    Callers scanning a statement fragment (rather than a whole file)
    should pass ``" " + fragment`` so that ``\\b`` anchors at the
    fragment's first character behave as they do in the full text,
    where the preceding character is ``;`` or start-of-file — all
    non-word, like the space.
    """
    mask = 0
    for bit, (_, pattern) in enumerate(_FRAGMENT_SIGNALS):
        if pattern.search(text):
            mask |= 1 << bit
    return mask


def whole_text_signal_mask(text: str) -> int:
    """Bitmask of the signals that must see the full text."""
    mask = 0
    for bit, (_, pattern) in enumerate(_WHOLE_TEXT_SIGNALS):
        if pattern.search(text):
            mask |= 1 << (bit + _WHOLE_TEXT_SHIFT)
    return mask


def dialect_from_mask(mask: int) -> str:
    """Resolve a combined signal mask to a dialect label.

    Scores each dialect by the number of distinct signal bits present;
    ties and empty scores fall back to ``"generic"``.
    """
    scores = {
        dialect: (mask & bits).bit_count()
        for dialect, bits in _DIALECT_BITS.items()
    }
    best = max(scores, key=scores.get)
    best_score = scores[best]
    if best_score == 0:
        return "generic"
    if sum(1 for s in scores.values() if s == best_score) > 1:
        return "generic"  # ambiguous tie
    return best


def detect_dialect(text: str) -> str:
    """Return a registered dialect name or ``"generic"``.

    SQLite files appear in the wild even though the paper's elicitation
    rules keep MySQL/Postgres only, so the miner labels them correctly
    rather than misattributing their features.
    """
    return dialect_from_mask(
        fragment_signal_mask(text) | whole_text_signal_mask(text)
    )
