"""A tokenizer for SQL DDL scripts.

Handles the lexical quirks of the two dialects the study corpus uses
(MySQL and PostgreSQL):

* ``--`` line comments, ``#`` line comments (MySQL), ``/* ... */`` block
  comments (including MySQL's executable ``/*! ... */`` hints, whose body
  is re-lexed as ordinary tokens);
* single-quoted strings with ``''`` and backslash escapes;
* backtick-quoted identifiers (MySQL), double-quoted identifiers
  (PostgreSQL / ANSI), bracket-quoted identifiers (for robustness against
  SQL Server flavoured files in the wild);
* dollar-quoted strings (PostgreSQL ``$$ ... $$`` / ``$tag$ ... $tag$``);
* numbers, operators and punctuation.

The lexer never fails: unknown bytes become single-character OP tokens so
the statement splitter downstream can always make progress.
"""

from __future__ import annotations

import re
import sys
from enum import Enum, auto


class TokenType(Enum):
    WORD = auto()        # bare identifier or keyword
    QUOTED = auto()      # quoted identifier (backtick / double-quote / [])
    STRING = auto()      # string literal
    NUMBER = auto()
    OP = auto()          # punctuation / operator character(s)
    SEMICOLON = auto()
    LPAREN = auto()
    RPAREN = auto()
    COMMA = auto()


#: Memo of ``value -> sys.intern(value.upper())``.  DDL vocabulary is
#: small (keywords plus the corpus's identifier pool), so the memo stays
#: bounded while turning every keyword comparison in the parser into a
#: pointer check against interned literals.
_UPPER_MEMO: dict[str, str] = {}


def _interned_upper(value: str) -> str:
    cached = _UPPER_MEMO.get(value)
    if cached is None:
        cached = sys.intern(value.upper())
        _UPPER_MEMO[value] = cached
    return cached


class Token:
    """One lexical token.

    ``value`` is the decoded payload (quotes stripped, escapes resolved for
    identifiers); ``raw`` is the exact source slice.  Implemented with
    ``__slots__`` (tokens are the most-allocated object on the mine hot
    path); equality and hashing follow the ``(type, value, raw, line)``
    tuple exactly as the former frozen dataclass did.
    """

    __slots__ = ("type", "value", "raw", "line", "_upper")

    def __init__(self, type: TokenType, value: str, raw: str, line: int):
        self.type = type
        self.value = value
        self.raw = raw
        self.line = line
        # Only name-like tokens are ever keyword-compared; others
        # resolve ``upper`` lazily through the property below.
        if type is TokenType.WORD or type is TokenType.QUOTED:
            self._upper = _interned_upper(value)
        else:
            self._upper = None

    @property
    def upper(self) -> str:
        cached = self._upper
        return cached if cached is not None else self.value.upper()

    def is_word(self, *words: str) -> bool:
        return self.type is TokenType.WORD and self._upper in words

    def is_name(self) -> bool:
        """Usable as an identifier (bare word or quoted)."""
        return self.type in (TokenType.WORD, TokenType.QUOTED)

    def __repr__(self) -> str:
        return (
            f"Token(type={self.type!r}, value={self.value!r}, "
            f"raw={self.raw!r}, line={self.line!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.type is other.type
            and self.value == other.value
            and self.raw == other.raw
            and self.line == other.line
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value, self.raw, self.line))


class LexError(Exception):
    """Raised on irrecoverably malformed input (unterminated quote)."""


_WORD_RE = re.compile(r"[A-Za-z_\$][A-Za-z0-9_\$]*")
_NUMBER_RE = re.compile(r"\d+(\.\d+)?([eE][+-]?\d+)?")
_DOLLAR_TAG_RE = re.compile(r"\$([A-Za-z_]\w*)?\$")

_SINGLE_OPS = {
    ";": TokenType.SEMICOLON,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
}

#: Single compiled master pattern for the common token shapes.  One
#: ``match`` call replaces the per-character dispatch chain for
#: whitespace runs, line comments, bare words, numbers and structural
#: punctuation — the overwhelming majority of tokens in real DDL.
#: Quoting (strings, identifiers, dollar quotes) and block comments
#: stay on the explicit dispatch path below.  ``$``-initial words are
#: excluded here because ``$`` may open a dollar quote.
_MASTER_RE = re.compile(
    r"(?P<ws>[ \t\r\n]+)"
    r"|(?P<comment>--[^\n]*|\#[^\n]*)"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_\$]*)"
    r"|(?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"|(?P<punct>[;(),])"
)


def tokenize(text: str, *, strict: bool = False) -> list[Token]:
    """Tokenize an SQL script (single-pass master-regex fast path).

    Behaviour-identical to :func:`tokenize_reference` (the original
    per-character implementation, kept as the equivalence oracle).

    Args:
        text: the script.
        strict: when True, unterminated quotes raise :class:`LexError`;
            when False (the default, suitable for mining files in the
            wild), the remainder of the file is consumed as one token.
    """
    tokens: list[Token] = []
    append = tokens.append
    i = 0
    line = 1
    n = len(text)
    master_match = _MASTER_RE.match
    word_type = TokenType.WORD
    number_type = TokenType.NUMBER

    def advance_lines(chunk: str) -> None:
        nonlocal line
        line += chunk.count("\n")

    while i < n:
        match = master_match(text, i)
        if match is not None:
            # group indices follow _MASTER_RE's alternation order:
            # 1=ws 2=comment 3=word 4=number 5=punct
            kind = match.lastindex
            if kind == 3:
                word = match.group()
                append(Token(word_type, word, word, line))
            elif kind == 1:
                chunk = match.group()
                if "\n" in chunk:
                    line += chunk.count("\n")
            elif kind == 5:
                ch = match.group()
                append(Token(_SINGLE_OPS[ch], ch, ch, line))
            elif kind == 4:
                num = match.group()
                append(Token(number_type, num, num, line))
            # else: line comment — skip
            i = match.end()
            continue

        ch = text[i]

        # /* block comment */  (MySQL executable hints are re-lexed)
        if ch == "/" and text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                if strict:
                    raise LexError(f"unterminated block comment at line {line}")
                advance_lines(text[i:])
                break
            body = text[i + 2:end]
            if body.startswith("!"):
                hint = re.sub(r"^!\d*", "", body)
                tokens.extend(
                    Token(t.type, t.value, t.raw, line + _offset_lines(text, i, t))
                    for t in tokenize(hint, strict=strict)
                )
            advance_lines(text[i:end + 2])
            i = end + 2
            continue

        # string literal
        if ch == "'":
            value, raw, consumed = _read_quoted(text, i, "'", strict, line)
            append(Token(TokenType.STRING, value, raw, line))
            advance_lines(raw)
            i += consumed
            continue

        # dollar-quoted string (PostgreSQL) or a '$'-initial bare word
        if ch == "$":
            match = _DOLLAR_TAG_RE.match(text, i)
            if match:
                tag = match.group(0)
                end = text.find(tag, match.end())
                if end == -1:
                    if strict:
                        raise LexError(
                            f"unterminated dollar quote at line {line}"
                        )
                    raw = text[i:]
                    append(
                        Token(TokenType.STRING, text[match.end():], raw, line)
                    )
                    advance_lines(raw)
                    break
                raw = text[i:end + len(tag)]
                append(
                    Token(TokenType.STRING, text[match.end():end], raw, line)
                )
                advance_lines(raw)
                i = end + len(tag)
                continue
            word_match = _WORD_RE.match(text, i)
            assert word_match is not None  # '$' alone matches the word RE
            word = word_match.group(0)
            append(Token(TokenType.WORD, word, word, line))
            i = word_match.end()
            continue

        # quoted identifiers
        if ch == "`":
            value, raw, consumed = _read_quoted(text, i, "`", strict, line)
            append(Token(TokenType.QUOTED, value, raw, line))
            advance_lines(raw)
            i += consumed
            continue
        if ch == '"':
            value, raw, consumed = _read_quoted(text, i, '"', strict, line)
            append(Token(TokenType.QUOTED, value, raw, line))
            advance_lines(raw)
            i += consumed
            continue
        if ch == "[":
            end = text.find("]", i + 1)
            if end == -1:
                append(Token(TokenType.OP, "[", "[", line))
                i += 1
                continue
            append(
                Token(TokenType.QUOTED, text[i + 1:end], text[i:end + 1], line)
            )
            i = end + 1
            continue

        # anything else: operator / unknown byte, one character at a time
        append(Token(_SINGLE_OPS.get(ch, TokenType.OP), ch, ch, line))
        i += 1

    return tokens


def tokenize_reference(text: str, *, strict: bool = False) -> list[Token]:
    """The original per-character tokenizer.

    Kept verbatim as the behavioural specification for :func:`tokenize`;
    the equivalence tests run both over the corpus generator's output
    and adversarial scripts and require identical token streams.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(text)

    def advance_lines(chunk: str) -> None:
        nonlocal line
        line += chunk.count("\n")

    while i < n:
        ch = text[i]

        if ch in " \t\r\n":
            if ch == "\n":
                line += 1
            i += 1
            continue

        # -- line comment
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue

        # # line comment (MySQL)
        if ch == "#":
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue

        # /* block comment */  (MySQL executable hints are re-lexed)
        if ch == "/" and text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                if strict:
                    raise LexError(f"unterminated block comment at line {line}")
                advance_lines(text[i:])
                break
            body = text[i + 2:end]
            if body.startswith("!"):
                hint = re.sub(r"^!\d*", "", body)
                tokens.extend(
                    Token(t.type, t.value, t.raw, line + _offset_lines(text, i, t))
                    for t in tokenize_reference(hint, strict=strict)
                )
            advance_lines(text[i:end + 2])
            i = end + 2
            continue

        # string literal
        if ch == "'":
            value, raw, consumed = _read_quoted(text, i, "'", strict, line)
            tokens.append(Token(TokenType.STRING, value, raw, line))
            advance_lines(raw)
            i += consumed
            continue

        # dollar-quoted string (PostgreSQL)
        if ch == "$":
            match = _DOLLAR_TAG_RE.match(text, i)
            if match:
                tag = match.group(0)
                end = text.find(tag, match.end())
                if end == -1:
                    if strict:
                        raise LexError(
                            f"unterminated dollar quote at line {line}"
                        )
                    raw = text[i:]
                    tokens.append(
                        Token(TokenType.STRING, text[match.end():], raw, line)
                    )
                    advance_lines(raw)
                    break
                raw = text[i:end + len(tag)]
                tokens.append(
                    Token(TokenType.STRING, text[match.end():end], raw, line)
                )
                advance_lines(raw)
                i = end + len(tag)
                continue

        # quoted identifiers
        if ch == "`":
            value, raw, consumed = _read_quoted(text, i, "`", strict, line)
            tokens.append(Token(TokenType.QUOTED, value, raw, line))
            advance_lines(raw)
            i += consumed
            continue
        if ch == '"':
            value, raw, consumed = _read_quoted(text, i, '"', strict, line)
            tokens.append(Token(TokenType.QUOTED, value, raw, line))
            advance_lines(raw)
            i += consumed
            continue
        if ch == "[":
            end = text.find("]", i + 1)
            if end == -1:
                tokens.append(Token(TokenType.OP, "[", "[", line))
                i += 1
                continue
            tokens.append(
                Token(TokenType.QUOTED, text[i + 1:end], text[i:end + 1], line)
            )
            i = end + 1
            continue

        # number (ASCII digits only: str.isdigit also accepts Unicode
        # digit-like characters that the number pattern rejects)
        if ch in "0123456789":
            match = _NUMBER_RE.match(text, i)
            assert match is not None
            tokens.append(
                Token(TokenType.NUMBER, match.group(0), match.group(0), line)
            )
            i = match.end()
            continue

        # word
        match = _WORD_RE.match(text, i)
        if match:
            word = match.group(0)
            tokens.append(Token(TokenType.WORD, word, word, line))
            i = match.end()
            continue

        # structural single characters & everything else
        token_type = _SINGLE_OPS.get(ch, TokenType.OP)
        tokens.append(Token(token_type, ch, ch, line))
        i += 1

    return tokens


def _offset_lines(text: str, start: int, token: Token) -> int:
    # line numbers inside re-lexed hint bodies are approximate
    return 0


def _read_quoted(
    text: str, start: int, quote: str, strict: bool, line: int
) -> tuple[str, str, int]:
    """Read a quoted region starting at ``start``.

    Returns ``(decoded_value, raw_slice, consumed_chars)``.  Doubling the
    quote escapes it; backslash escapes are honoured inside single quotes
    and backticks (MySQL behaviour).
    """
    out: list[str] = []
    i = start + 1
    n = len(text)
    backslash_escapes = quote in ("'", "`")
    while i < n:
        ch = text[i]
        if ch == "\\" and backslash_escapes and i + 1 < n:
            out.append(text[i + 1])
            i += 2
            continue
        if ch == quote:
            if i + 1 < n and text[i + 1] == quote:
                out.append(quote)
                i += 2
                continue
            return "".join(out), text[start:i + 1], i + 1 - start
        out.append(ch)
        i += 1
    if strict:
        raise LexError(f"unterminated {quote!r} quote at line {line}")
    return "".join(out), text[start:], n - start
