"""Parser for SQL DDL scripts into :class:`~repro.schema.Schema` objects.

The parser is built for *mining*: schema files in FOSS repositories contain
vendor-specific noise (SET statements, INSERTs seeding lookup tables,
stored routines, comments), so the statement loop is tolerant — statements
that are not understood are recorded as :class:`ParseIssue` diagnostics and
skipped, never fatal.  CREATE TABLE / ALTER TABLE / DROP TABLE / RENAME
TABLE are interpreted and applied in order, so a script that builds a
schema incrementally (common in migration-style dumps) still yields the
correct final schema.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..schema import (
    Attribute,
    DataType,
    ForeignKey,
    Index,
    Schema,
    SchemaError,
    Table,
    normalize_type,
)
from .lexer import Token, TokenType, tokenize

#: Multi-word type spellings, longest first.  Each entry is the tuple of
#: uppercased words following the first type word.
_TYPE_CONTINUATIONS = {
    "DOUBLE": [("PRECISION",)],
    "CHARACTER": [("VARYING",)],
    "BIT": [("VARYING",)],
    "TIMESTAMP": [("WITH", "TIME", "ZONE"), ("WITHOUT", "TIME", "ZONE")],
    "TIME": [("WITH", "TIME", "ZONE"), ("WITHOUT", "TIME", "ZONE")],
}

#: Words that terminate a column definition's type/constraint scan.
_COLUMN_CONSTRAINT_WORDS = {
    "NOT", "NULL", "DEFAULT", "AUTO_INCREMENT", "AUTOINCREMENT", "PRIMARY",
    "UNIQUE", "KEY", "REFERENCES", "CHECK", "COMMENT", "COLLATE",
    "CHARACTER", "CHARSET", "ON", "GENERATED", "AS", "CONSTRAINT",
    "UNSIGNED", "ZEROFILL", "SIGNED", "STORED", "VIRTUAL", "IDENTITY",
    "SERIAL",
}


@dataclass(frozen=True)
class ParseIssue:
    """A non-fatal problem encountered while parsing a script."""

    line: int
    message: str

    def __str__(self) -> str:
        return f"line {self.line}: {self.message}"


@dataclass
class ParseResult:
    """The outcome of parsing a DDL script."""

    schema: Schema
    issues: list[ParseIssue] = field(default_factory=list)
    statements_total: int = 0
    statements_applied: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues


class _TokenStream:
    """Cursor over a token list with convenience accessors."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def __bool__(self) -> bool:
        return self._pos < len(self._tokens)

    @property
    def line(self) -> int:
        token = self.peek()
        return token.line if token else 0

    def peek(self, offset: int = 0) -> Token | None:
        idx = self._pos + offset
        return self._tokens[idx] if idx < len(self._tokens) else None

    def next(self) -> Token | None:
        token = self.peek()
        if token is not None:
            self._pos += 1
        return token

    def accept_word(self, *words: str) -> bool:
        token = self.peek()
        if token is not None and token.is_word(*words):
            self._pos += 1
            return True
        return False

    def accept_words(self, *sequence: str) -> bool:
        """Consume a whole word sequence or nothing."""
        for offset, word in enumerate(sequence):
            token = self.peek(offset)
            if token is None or not token.is_word(word):
                return False
        self._pos += len(sequence)
        return True

    def expect_name(self) -> Token:
        token = self.next()
        if token is None or not token.is_name():
            raise _StatementError(
                f"expected identifier, got {token.raw if token else 'EOF'!r}"
            )
        return token

    def expect_type(self, token_type: TokenType) -> Token:
        token = self.next()
        if token is None or token.type is not token_type:
            raise _StatementError(
                f"expected {token_type.name}, got "
                f"{token.raw if token else 'EOF'!r}"
            )
        return token

    def skip_parenthesized(self) -> list[Token]:
        """Consume a balanced ``( ... )`` group, returning its inner tokens."""
        self.expect_type(TokenType.LPAREN)
        depth = 1
        inner: list[Token] = []
        while self:
            token = self.next()
            assert token is not None
            if token.type is TokenType.LPAREN:
                depth += 1
            elif token.type is TokenType.RPAREN:
                depth -= 1
                if depth == 0:
                    return inner
            inner.append(token)
        raise _StatementError("unbalanced parentheses")


class _StatementError(Exception):
    """Internal: statement could not be interpreted."""


def split_statements(tokens: list[Token]) -> list[list[Token]]:
    """Split a token list on top-level semicolons; empty groups dropped."""
    statements: list[list[Token]] = []
    current: list[Token] = []
    for token in tokens:
        if token.type is TokenType.SEMICOLON:
            if current:
                statements.append(current)
                current = []
        else:
            current.append(token)
    if current:
        statements.append(current)
    return statements


_COPY_BLOCK_RE = re.compile(
    r"^COPY\s[^\n]*FROM\s+stdin;\n.*?\n\\\.$",
    re.MULTILINE | re.DOTALL | re.IGNORECASE,
)


def strip_copy_blocks(text: str) -> str:
    """Remove pg_dump ``COPY ... FROM stdin; <data> \\.`` blocks.

    COPY payloads are raw tab-separated data, not SQL: a stray quote in
    a data row would otherwise swallow the rest of the file during
    lenient lexing.
    """
    return _COPY_BLOCK_RE.sub("", text)


def parse_schema(text: str, *, dialect: str | None = None) -> ParseResult:
    """Parse a DDL script into a schema, applying statements in order.

    Args:
        text: the SQL script.
        dialect: optional dialect hint (``"mysql"`` / ``"postgres"``);
            when omitted the dialect is detected from surface features.

    Returns:
        a :class:`ParseResult` with the final schema and diagnostics.
    """
    from .dialect import detect_dialect

    if "stdin" in text:
        text = strip_copy_blocks(text)
    if dialect is None:
        dialect = detect_dialect(text)
    schema = Schema(dialect=dialect)
    result = ParseResult(schema=schema)

    for statement in split_statements(tokenize(text)):
        apply_statement(statement, schema, result)
    return result


def apply_statement(
    statement: list[Token], schema: Schema, result: ParseResult
) -> None:
    """Apply one statement token group to ``schema`` in place.

    This is the statement-loop body of :func:`parse_schema`, exposed so
    the incremental engine (:mod:`repro.perf.fragments`) can replay
    cached token groups against a live schema without re-lexing.
    Counters and diagnostics are recorded on ``result`` exactly as the
    whole-script path does.
    """
    result.statements_total += 1
    stream = _TokenStream(statement)
    head = stream.peek()
    if head is None:
        return
    try:
        if head.is_word("CREATE"):
            applied = _parse_create(stream, schema)
        elif head.is_word("ALTER"):
            applied = _parse_alter(stream, schema, result)
        elif head.is_word("DROP"):
            applied = _parse_drop(stream, schema, result)
        elif head.is_word("RENAME"):
            applied = _parse_rename(stream, schema)
        else:
            applied = False  # SET, INSERT, USE, COMMENT ON, ...
        if applied:
            result.statements_applied += 1
    except (_StatementError, SchemaError) as exc:
        result.issues.append(ParseIssue(head.line, str(exc)))


def parse_table(text: str) -> Table:
    """Parse a single CREATE TABLE statement into a :class:`Table`."""
    result = parse_schema(text)
    if len(result.schema) != 1:
        raise SchemaError(
            f"expected exactly one table, found {len(result.schema)}"
        )
    return result.schema.tables[0]


# ---------------------------------------------------------------- CREATE


def _parse_create(stream: _TokenStream, schema: Schema) -> bool:
    stream.next()  # CREATE
    stream.accept_word("TEMPORARY", "GLOBAL", "LOCAL", "UNLOGGED")
    stream.accept_words("OR", "REPLACE")
    unique_index = False
    if stream.accept_word("UNIQUE"):
        unique_index = True
    if stream.accept_word("INDEX"):
        return _parse_create_index(stream, schema, unique=unique_index)
    if unique_index or not stream.accept_word("TABLE"):
        return False  # CREATE VIEW / FUNCTION / SEQUENCE ... : ignored
    if_not_exists = stream.accept_words("IF", "NOT", "EXISTS")
    name = _parse_qualified_name(stream)
    table = Table(name=name)

    body = stream.skip_parenthesized()
    _parse_table_body(_TokenStream(body), table)
    _parse_table_options(stream, table)

    if table.key in {t.key for t in schema.tables}:
        if if_not_exists:
            return False
        schema.drop_table(table.name)  # re-definition wins
    schema.add_table(table)
    return True


def _parse_create_index(
    stream: _TokenStream, schema: Schema, *, unique: bool
) -> bool:
    """CREATE [UNIQUE] INDEX [name] ON table [USING m] (cols)."""
    stream.accept_words("CONCURRENTLY")
    stream.accept_words("IF", "NOT", "EXISTS")
    name = None
    token = stream.peek()
    if token is not None and token.is_name() and not token.is_word("ON"):
        name = stream.next().value
    if not stream.accept_word("ON"):
        return False
    table_name = _parse_qualified_name(stream)
    table = schema.get(table_name)
    if table is None:
        raise _StatementError(
            f"CREATE INDEX on unknown table {table_name!r}"
        )
    kind = ""
    if stream.accept_word("USING"):
        method = stream.next()
        kind = method.upper if method is not None else ""
    token = stream.peek()
    if token is None or token.type is not TokenType.LPAREN:
        return False
    columns = _parse_column_list(stream)
    if not columns:
        return False
    table.indexes.append(
        Index(columns=columns, name=name, unique=unique, kind=kind)
    )
    return True


def _parse_qualified_name(stream: _TokenStream) -> str:
    """Parse ``name`` or ``schema.name``; returns the last component."""
    token = stream.expect_name()
    name = token.value
    while True:
        dot = stream.peek()
        if dot is not None and dot.type is TokenType.OP and dot.value == ".":
            stream.next()
            name = stream.expect_name().value
        else:
            return name


def _split_body_elements(stream: _TokenStream) -> list[list[Token]]:
    """Split a CREATE TABLE body on depth-0 commas."""
    elements: list[list[Token]] = []
    current: list[Token] = []
    depth = 0
    while stream:
        token = stream.next()
        assert token is not None
        if token.type is TokenType.LPAREN:
            depth += 1
        elif token.type is TokenType.RPAREN:
            depth -= 1
        elif token.type is TokenType.COMMA and depth == 0:
            if current:
                elements.append(current)
            current = []
            continue
        current.append(token)
    if current:
        elements.append(current)
    return elements


#: Body-element memo installed by the incremental engine
#: (:mod:`repro.perf.fragments`); ``None`` means parse elements directly.
_ACTIVE_ELEMENT_CACHE = None


def set_element_cache(cache):
    """Install a body-element cache; returns the previous one.

    The cache must expose ``effect_for(element) -> BodyEffect``.  The
    incremental engine scopes installation around its own parses so
    the reference oracles always run the direct, uncached path.
    """
    global _ACTIVE_ELEMENT_CACHE
    previous = _ACTIVE_ELEMENT_CACHE
    _ACTIVE_ELEMENT_CACHE = cache
    return previous


def _parse_table_body(stream: _TokenStream, table: Table) -> None:
    cache = _ACTIVE_ELEMENT_CACHE
    for element in _split_body_elements(stream):
        if cache is None:
            _apply_body_element(element, table)
        else:
            apply_body_effect(cache.effect_for(element), table)


def _apply_body_element(element: list[Token], table: Table) -> None:
    """Parse one CREATE TABLE body element and apply it to ``table``."""
    item = _TokenStream(element)
    head = item.peek()
    if head is None:
        return
    if head.is_word("PRIMARY"):
        item.next()
        if item.accept_word("KEY"):
            table.primary_key = _parse_column_list(item)
        return
    if head.is_word("UNIQUE"):
        item.next()
        item.accept_word("KEY", "INDEX")
        _parse_index_def(item, table, unique=True)
        return
    if head.is_word("KEY", "INDEX"):
        item.next()
        _parse_index_def(item, table)
        return
    if head.is_word("FULLTEXT", "SPATIAL"):
        kind = item.next().upper
        item.accept_word("KEY", "INDEX")
        _parse_index_def(item, table, kind=kind)
        return
    if head.is_word("CHECK"):
        return
    if head.is_word("CONSTRAINT"):
        item.next()
        token = item.peek()
        if token is not None and token.is_name() and not token.is_word(
            "PRIMARY", "UNIQUE", "FOREIGN", "CHECK"
        ):
            constraint_name = item.next().value
        else:
            constraint_name = None
        _parse_table_constraint(item, table, constraint_name)
        return
    if head.is_word("FOREIGN"):
        _parse_table_constraint(item, table, None)
        return
    if head.is_word("LIKE"):
        return
    _parse_column_def(item, table)


class _UnsetPK(tuple):
    """Falsy empty-tuple stand-in distinguishable by identity.

    ``capture_body_element`` needs to know whether an element *assigned*
    the scratch table's primary key — including an assignment of the
    empty tuple, which CPython interns, so a plain ``()`` initial value
    could not be told apart from an assigned ``()``.
    """


@dataclass(frozen=True)
class BodyEffect:
    """The captured, replayable effect of one CREATE TABLE body element.

    Element parsing is context-free (it never reads the surrounding
    table), so an element's effect can be captured once against a
    scratch table and replayed onto any table.  ``primary_key`` is
    ``None`` when the element never assigned one; ``pk_conditional``
    marks column-level ``PRIMARY KEY`` (applied only when the table has
    none yet) as opposed to table-level constraints (always applied).
    A captured parse error is re-raised on every replay.
    """

    attributes: tuple[Attribute, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()
    indexes: tuple[Index, ...] = ()
    primary_key: tuple[str, ...] | None = None
    pk_conditional: bool = True
    error: str | None = None
    error_kind: str = ""


def capture_body_element(element: list[Token]) -> BodyEffect:
    """Parse one body element against a scratch table, capturing its effect."""
    scratch = Table(name="__element__")
    unset_pk = _UnsetPK()
    scratch.primary_key = unset_pk
    error: str | None = None
    error_kind = ""
    try:
        _apply_body_element(element, scratch)
    except _StatementError as exc:
        error, error_kind = str(exc), "statement"
    except SchemaError as exc:
        error, error_kind = str(exc), "schema"
    head = element[0] if element else None
    pk_conditional = not (
        head is not None and head.is_word("PRIMARY", "CONSTRAINT", "FOREIGN")
    )
    return BodyEffect(
        attributes=tuple(scratch.attributes),
        foreign_keys=tuple(scratch.foreign_keys),
        indexes=tuple(scratch.indexes),
        primary_key=(
            None if scratch.primary_key is unset_pk
            else tuple(scratch.primary_key)
        ),
        pk_conditional=pk_conditional,
        error=error,
        error_kind=error_kind,
    )


def apply_body_effect(effect: BodyEffect, table: Table) -> None:
    """Replay a captured element effect onto ``table``.

    Replay order mirrors the direct path: constraints recorded during
    the element's scan land before the attribute append (whose
    duplicate check may raise), and a captured parse error re-raises
    after the element's partial effects — exactly where the direct
    parse would have stopped.
    """
    table.foreign_keys.extend(effect.foreign_keys)
    table.indexes.extend(effect.indexes)
    for attr in effect.attributes:
        table.add_attribute(attr)
    if effect.primary_key is not None:
        if not effect.pk_conditional or not table.primary_key:
            table.primary_key = effect.primary_key
    if effect.error is not None:
        if effect.error_kind == "statement":
            raise _StatementError(effect.error)
        raise SchemaError(effect.error)


def _parse_table_constraint(
    item: _TokenStream, table: Table, constraint_name: str | None
) -> None:
    if item.accept_word("PRIMARY"):
        if item.accept_word("KEY"):
            table.primary_key = _parse_column_list(item)
        return
    if item.accept_word("FOREIGN"):
        if not item.accept_word("KEY"):
            return
        columns = _parse_column_list(item)
        if not item.accept_word("REFERENCES"):
            return
        ref_table = _parse_qualified_name(item)
        ref_columns: tuple[str, ...] = ()
        token = item.peek()
        if token is not None and token.type is TokenType.LPAREN:
            ref_columns = _parse_column_list(item)
        table.foreign_keys.append(
            ForeignKey(
                columns=columns,
                ref_table=ref_table,
                ref_columns=ref_columns,
                name=constraint_name,
            )
        )
        return
    if item.accept_word("UNIQUE"):
        item.accept_word("KEY", "INDEX")
        _parse_index_def(item, table, unique=True, name=constraint_name)
        return
    # CHECK table constraints are not tracked.


def _parse_column_list(stream: _TokenStream) -> tuple[str, ...]:
    inner = stream.skip_parenthesized()
    names: list[str] = []
    for token in inner:
        if token.is_name():
            names.append(token.value)
        elif token.type is TokenType.LPAREN:
            break  # prefix length like KEY (col(10)) — already captured
    return tuple(names)


def _parse_index_def(
    item: _TokenStream,
    table: Table,
    *,
    unique: bool = False,
    kind: str = "",
    name: str | None = None,
) -> None:
    """Parse ``[name] (col [, col ...])`` into an :class:`Index`."""
    token = item.peek()
    if name is None and token is not None and token.is_name():
        name = item.next().value
    token = item.peek()
    if token is None or token.type is not TokenType.LPAREN:
        return  # e.g. ALTER TABLE ... DROP KEY name — nothing to add
    columns = _parse_column_list(item)
    if columns:
        table.indexes.append(
            Index(columns=columns, name=name, unique=unique, kind=kind)
        )


def _parse_column_def(item: _TokenStream, table: Table) -> None:
    name_token = item.expect_name()
    data_type = _parse_data_type(item)
    attr = Attribute(name=name_token.value, data_type=data_type)
    if data_type.family in ("serial", "bigserial", "smallserial"):
        attr = Attribute(
            name=attr.name,
            data_type=data_type,
            nullable=False,
            auto_increment=True,
        )

    nullable = attr.nullable
    default = attr.default
    auto_increment = attr.auto_increment
    pk_here = False

    while item:
        token = item.peek()
        assert token is not None
        if token.is_word("NOT"):
            item.next()
            if item.accept_word("NULL"):
                nullable = False
            continue
        if token.is_word("NULL"):
            item.next()
            nullable = True
            continue
        if token.is_word("DEFAULT"):
            item.next()
            default = _parse_default_expr(item)
            continue
        if token.is_word("AUTO_INCREMENT", "AUTOINCREMENT"):
            item.next()
            auto_increment = True
            continue
        if token.is_word("PRIMARY"):
            item.next()
            item.accept_word("KEY")
            pk_here = True
            continue
        if token.is_word("GENERATED"):
            # GENERATED ALWAYS AS IDENTITY / AS (expr)
            item.next()
            item.accept_word("ALWAYS", "BY")
            item.accept_word("DEFAULT")
            item.accept_word("AS")
            if item.accept_word("IDENTITY"):
                auto_increment = True
                token = item.peek()
                if token is not None and token.type is TokenType.LPAREN:
                    item.skip_parenthesized()
            else:
                token = item.peek()
                if token is not None and token.type is TokenType.LPAREN:
                    item.skip_parenthesized()
            continue
        if token.is_word("REFERENCES"):
            item.next()
            ref_table = _parse_qualified_name(item)
            ref_columns: tuple[str, ...] = ()
            peeked = item.peek()
            if peeked is not None and peeked.type is TokenType.LPAREN:
                ref_columns = _parse_column_list(item)
            table.foreign_keys.append(
                ForeignKey(
                    columns=(name_token.value,),
                    ref_table=ref_table,
                    ref_columns=ref_columns,
                )
            )
            continue
        if token.is_word("CHECK"):
            item.next()
            peeked = item.peek()
            if peeked is not None and peeked.type is TokenType.LPAREN:
                item.skip_parenthesized()
            continue
        if token.type is TokenType.LPAREN:
            item.skip_parenthesized()
            continue
        item.next()  # COMMENT 'x', COLLATE ..., ON UPDATE ..., UNIQUE, ...

    table.add_attribute(
        Attribute(
            name=name_token.value,
            data_type=data_type,
            nullable=nullable,
            default=default,
            auto_increment=auto_increment,
        )
    )
    if pk_here and not table.primary_key:
        table.primary_key = (name_token.value,)


def _parse_data_type(item: _TokenStream) -> DataType:
    """Reassemble the raw type spelling from tokens and normalise it."""
    first = item.next()
    if first is None or not first.is_name():
        raise _StatementError(
            f"expected data type, got {first.raw if first else 'EOF'!r}"
        )
    words = [first.value]
    for continuation in _TYPE_CONTINUATIONS.get(first.upper, ()):
        if item.accept_words(*continuation):
            words.extend(w.lower() for w in continuation)
            break

    raw = " ".join(words)
    token = item.peek()
    if token is not None and token.type is TokenType.LPAREN:
        inner = item.skip_parenthesized()
        raw += "(" + ", ".join(_render_param(t) for t in inner) + ")"

    while True:
        token = item.peek()
        if token is not None and token.is_word("UNSIGNED", "ZEROFILL", "SIGNED"):
            raw += " " + token.value.lower()
            item.next()
            continue
        break

    # Postgres array suffix: [ ] or [n].  The lexer reads "[...]" as a
    # bracket-quoted identifier (SQL Server style), so an array suffix
    # arrives as a QUOTED token whose payload is empty or a number.
    while True:
        token = item.peek()
        if (
            token is not None
            and token.type is TokenType.QUOTED
            and token.raw.startswith("[")
            and (token.value == "" or token.value.strip().isdigit())
        ):
            item.next()
            raw += "[]"
            continue
        if (
            token is not None
            and token.type is TokenType.OP
            and token.value == "["
        ):
            item.next()
            token = item.peek()
            if token is not None and token.type is TokenType.NUMBER:
                item.next()
            token = item.peek()
            if (
                token is not None
                and token.type is TokenType.OP
                and token.value == "]"
            ):
                item.next()
            raw += "[]"
            continue
        break
    return normalize_type(raw)


def _render_param(token: Token) -> str:
    if token.type is TokenType.STRING:
        return "'" + token.value.replace("'", "''") + "'"
    if token.type is TokenType.COMMA:
        return ","
    return token.value


def _parse_default_expr(item: _TokenStream) -> str:
    """Capture a default expression as text (best effort)."""
    token = item.peek()
    if token is None:
        return ""
    if token.type is TokenType.LPAREN:
        inner = item.skip_parenthesized()
        return "(" + " ".join(t.raw for t in inner) + ")"
    item.next()
    text = token.raw
    # function-style default: NOW(), nextval('...')
    peeked = item.peek()
    if peeked is not None and peeked.type is TokenType.LPAREN:
        inner = item.skip_parenthesized()
        text += "(" + " ".join(t.raw for t in inner) + ")"
    # Postgres cast: DEFAULT 'x'::character varying
    while True:
        peeked = item.peek()
        if (
            peeked is not None
            and peeked.type is TokenType.OP
            and peeked.value == ":"
        ):
            item.next()
            continue
        if peeked is not None and peeked.type is TokenType.WORD and text.endswith(":"):
            item.next()
            text += peeked.value
            continue
        break
    return text


def _parse_table_options(stream: _TokenStream, table: Table) -> None:
    """Parse trailing ``ENGINE=InnoDB DEFAULT CHARSET=utf8`` style options."""
    while stream:
        token = stream.next()
        assert token is not None
        if not token.is_name():
            continue
        key = token.upper
        eq = stream.peek()
        if eq is not None and eq.type is TokenType.OP and eq.value == "=":
            stream.next()
            value = stream.next()
            table.options[key] = value.value if value is not None else ""


# ----------------------------------------------------------------- ALTER


def _parse_alter(
    stream: _TokenStream, schema: Schema, result: ParseResult
) -> bool:
    stream.next()  # ALTER
    if not stream.accept_word("TABLE"):
        return False
    stream.accept_words("IF", "EXISTS")
    stream.accept_word("ONLY")
    name = _parse_qualified_name(stream)
    table = schema.get(name)
    if table is None:
        raise _StatementError(f"ALTER TABLE on unknown table {name!r}")

    applied = False
    for clause in _split_alter_clauses(stream):
        if _apply_alter_clause(_TokenStream(clause), table, schema):
            applied = True
    return applied


def _split_alter_clauses(stream: _TokenStream) -> list[list[Token]]:
    clauses: list[list[Token]] = []
    current: list[Token] = []
    depth = 0
    while stream:
        token = stream.next()
        assert token is not None
        if token.type is TokenType.LPAREN:
            depth += 1
        elif token.type is TokenType.RPAREN:
            depth -= 1
        elif token.type is TokenType.COMMA and depth == 0:
            if current:
                clauses.append(current)
            current = []
            continue
        current.append(token)
    if current:
        clauses.append(current)
    return clauses


def _apply_alter_clause(
    item: _TokenStream, table: Table, schema: Schema
) -> bool:
    if item.accept_word("ADD"):
        if item.accept_word("PRIMARY"):
            item.accept_word("KEY")
            table.primary_key = _parse_column_list(item)
            return True
        if item.accept_word("CONSTRAINT"):
            token = item.peek()
            constraint_name = None
            if token is not None and token.is_name() and not token.is_word(
                "PRIMARY", "UNIQUE", "FOREIGN", "CHECK"
            ):
                constraint_name = item.next().value
            _parse_table_constraint(item, table, constraint_name)
            return True
        if item.accept_word("FOREIGN"):
            if item.accept_word("KEY"):
                columns = _parse_column_list(item)
                if item.accept_word("REFERENCES"):
                    ref = _parse_qualified_name(item)
                    ref_columns: tuple[str, ...] = ()
                    token = item.peek()
                    if token is not None and token.type is TokenType.LPAREN:
                        ref_columns = _parse_column_list(item)
                    table.foreign_keys.append(
                        ForeignKey(columns, ref, ref_columns)
                    )
            return True
        if item.accept_word("UNIQUE"):
            item.accept_word("KEY", "INDEX")
            _parse_index_def(item, table, unique=True)
            return True
        if item.accept_word("INDEX", "KEY"):
            _parse_index_def(item, table)
            return True
        if item.accept_word("FULLTEXT", "SPATIAL"):
            item.accept_word("KEY", "INDEX")
            _parse_index_def(item, table, kind="FULLTEXT")
            return True
        if item.accept_word("CHECK"):
            return False
        item.accept_word("COLUMN")
        item.accept_words("IF", "NOT", "EXISTS")
        token = item.peek()
        if token is not None and token.type is TokenType.LPAREN:
            # MySQL: ADD (col1 type, col2 type)
            body = item.skip_parenthesized()
            _parse_table_body(_TokenStream(body), table)
            return True
        _parse_column_def(item, table)
        return True

    if item.accept_word("DROP"):
        if item.accept_word("PRIMARY"):
            item.accept_word("KEY")
            table.primary_key = ()
            return True
        if item.accept_word("INDEX", "KEY"):
            token = item.peek()
            if token is not None and token.is_name():
                victim = token.value.lower()
                before = len(table.indexes)
                table.indexes = [
                    ix for ix in table.indexes
                    if (ix.name or "").lower() != victim
                ]
                return len(table.indexes) != before
            return False
        if item.accept_word("CONSTRAINT", "FOREIGN", "CHECK"):
            return False
        item.accept_word("COLUMN")
        item.accept_words("IF", "EXISTS")
        column = item.expect_name().value
        if column in table:
            table.drop_attribute(column)
            return True
        raise _StatementError(
            f"DROP COLUMN on unknown column {column!r} of {table.name!r}"
        )

    if item.accept_word("MODIFY"):
        item.accept_word("COLUMN")
        column = item.expect_name().value
        old = table.get(column)
        if old is None:
            raise _StatementError(
                f"MODIFY on unknown column {column!r} of {table.name!r}"
            )
        scratch = Table(name="__scratch__")
        item2 = item
        _parse_column_def_into(item2, scratch, column)
        new_attr = scratch.attributes[0]
        table.replace_attribute(column, new_attr)
        return True

    if item.accept_word("CHANGE"):
        item.accept_word("COLUMN")
        old_name = item.expect_name().value
        old = table.get(old_name)
        if old is None:
            raise _StatementError(
                f"CHANGE on unknown column {old_name!r} of {table.name!r}"
            )
        scratch = Table(name="__scratch__")
        _parse_column_def(item, scratch)
        new_attr = scratch.attributes[0]
        table.replace_attribute(old_name, new_attr)
        if old.key in {c.lower() for c in table.primary_key}:
            table.primary_key = tuple(
                new_attr.name if c.lower() == old.key else c
                for c in table.primary_key
            )
        return True

    if item.accept_word("ALTER"):
        item.accept_word("COLUMN")
        column = item.expect_name().value
        old = table.get(column)
        if old is None:
            raise _StatementError(
                f"ALTER COLUMN on unknown column {column!r} of {table.name!r}"
            )
        if item.accept_word("TYPE"):
            new_type = _parse_data_type(item)
            table.replace_attribute(column, old.with_type(new_type))
            return True
        if item.accept_word("SET"):
            if item.accept_words("NOT", "NULL"):
                table.replace_attribute(
                    column,
                    Attribute(old.name, old.data_type, False, old.default,
                              old.auto_increment),
                )
                return True
            if item.accept_word("DEFAULT"):
                default = _parse_default_expr(item)
                table.replace_attribute(
                    column,
                    Attribute(old.name, old.data_type, old.nullable, default,
                              old.auto_increment),
                )
                return True
            return False
        if item.accept_word("DROP"):
            if item.accept_words("NOT", "NULL"):
                table.replace_attribute(
                    column,
                    Attribute(old.name, old.data_type, True, old.default,
                              old.auto_increment),
                )
                return True
            if item.accept_word("DEFAULT"):
                table.replace_attribute(
                    column,
                    Attribute(old.name, old.data_type, old.nullable, None,
                              old.auto_increment),
                )
                return True
        return False

    if item.accept_word("RENAME"):
        if item.accept_word("COLUMN"):
            old_name = item.expect_name().value
            if not item.accept_word("TO"):
                return False
            new_name = item.expect_name().value
            old = table.get(old_name)
            if old is None:
                raise _StatementError(
                    f"RENAME COLUMN on unknown column {old_name!r}"
                )
            renamed = Attribute(
                new_name, old.data_type, old.nullable, old.default,
                old.auto_increment,
            )
            table.replace_attribute(old_name, renamed)
            table.primary_key = tuple(
                new_name if c.lower() == old.key else c
                for c in table.primary_key
            )
            return True
        item.accept_word("TO", "AS")
        new_name = item.expect_name().value
        schema.drop_table(table.name)
        table.name = new_name
        schema.add_table(table)
        return True

    return False  # ENGINE=..., OWNER TO, ENABLE TRIGGER, ...


def _parse_column_def_into(
    item: _TokenStream, scratch: Table, name: str
) -> None:
    """Parse the remainder of a MODIFY clause as a column def for ``name``."""
    data_type = _parse_data_type(item)
    nullable = True
    default = None
    auto_increment = False
    while item:
        token = item.peek()
        assert token is not None
        if token.is_word("NOT"):
            item.next()
            if item.accept_word("NULL"):
                nullable = False
            continue
        if token.is_word("NULL"):
            item.next()
            continue
        if token.is_word("DEFAULT"):
            item.next()
            default = _parse_default_expr(item)
            continue
        if token.is_word("AUTO_INCREMENT", "AUTOINCREMENT"):
            item.next()
            auto_increment = True
            continue
        item.next()
    scratch.add_attribute(
        Attribute(name, data_type, nullable, default, auto_increment)
    )


# ------------------------------------------------------------ DROP/RENAME


def _parse_drop(
    stream: _TokenStream, schema: Schema, result: ParseResult
) -> bool:
    stream.next()  # DROP
    if not stream.accept_word("TABLE"):
        return False
    if_exists = stream.accept_words("IF", "EXISTS")
    applied = False
    while True:
        name = _parse_qualified_name(stream)
        if name in schema:
            schema.drop_table(name)
            applied = True
        elif not if_exists:
            result.issues.append(
                ParseIssue(stream.line, f"DROP TABLE on unknown {name!r}")
            )
        token = stream.peek()
        if token is not None and token.type is TokenType.COMMA:
            stream.next()
            continue
        break
    return applied


def _parse_rename(stream: _TokenStream, schema: Schema) -> bool:
    stream.next()  # RENAME
    if not stream.accept_word("TABLE"):
        return False
    applied = False
    while True:
        old_name = _parse_qualified_name(stream)
        if not stream.accept_word("TO"):
            raise _StatementError("RENAME TABLE without TO")
        new_name = _parse_qualified_name(stream)
        table = schema.get(old_name)
        if table is not None:
            schema.drop_table(old_name)
            table.name = new_name
            schema.add_table(table)
            applied = True
        token = stream.peek()
        if token is not None and token.type is TokenType.COMMA:
            stream.next()
            continue
        break
    return applied
