"""Cheap top-level statement segmentation for DDL scripts.

The incremental parse engine exploits the fact that consecutive versions
of a mined DDL file are ~99% identical *statement by statement*.  To
cache per-statement parse work it first needs statement boundaries —
but running the full lexer to find them would cost almost as much as the
parse it is trying to avoid.  This module finds top-level ``;``
boundaries with a single regex-driven scan that only inspects the
characters that can affect statement structure: quote openers, comment
openers, and semicolons.  Everything between those characters is skipped
in bulk.

The scanner mirrors the lexer's lenient consumption rules exactly
(``--``/``#`` line comments, ``/* */`` block comments, ``'`` strings and
backtick identifiers with backslash + doubling escapes, ``"`` doubling
only, ``[...]`` bracket identifiers, ``$tag$ ... $tag$`` dollar quotes,
unterminated regions consuming the rest of the file), so a ``;`` is a
segment boundary here if and only if the lexer would emit a SEMICOLON
token for it.  The one construct it cannot localise is MySQL's
executable comment hint ``/*! ... */`` — its body is re-lexed and may
contain top-level semicolons — so an input with a ``;`` anywhere inside
a hint body makes :func:`segment_statements` return ``None`` and the
caller falls back to whole-file parsing.  Semicolon-free hints (the
usual mysqldump ``SET`` headers) segment normally.

Segments are contiguous and cover the input exactly: concatenating
``segment.text`` for every segment reproduces the original string, so
per-segment lexing composes to the whole-file token stream (with line
numbers offset by ``segment.line - 1``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .lexer import _DOLLAR_TAG_RE

#: Characters (and two-character openers) that can affect statement
#: structure.  The scan jumps between matches; plain identifier/number
#: text in between is never inspected.
_SCAN_RE = re.compile(r"--|/\*|[;'\"`$#\[]")


@dataclass(frozen=True)
class Segment:
    """One top-level statement slice.

    ``text`` is the exact source slice (leading whitespace/comments and
    the trailing ``;`` included); ``line`` is the 1-based line number of
    the slice's first character in the original script.
    """

    text: str
    line: int


def _skip_quoted(text: str, start: int, quote: str, backslash: bool) -> int:
    """Return the index just past a quoted region opened at ``start``.

    Doubled quotes always escape; backslash escapes apply for ``'`` and
    backtick (matching ``lexer._read_quoted``).  An unterminated quote
    consumes the rest of the input, as in lenient lexing.
    """
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if backslash and ch == "\\" and i + 1 < n:
            i += 2
            continue
        if ch == quote:
            if i + 1 < n and text[i + 1] == quote:
                i += 2
                continue
            return i + 1
        i += 1
    return n


def _comment_prefix_end(text: str) -> int:
    """Length of the leading run of whitespace and complete comments.

    Version headers ("-- cosmetic revision N", dump timestamps) change
    every version while the statement they precede does not; splitting
    the comment run into its own segment keeps the statement's cache
    key stable.  Only *complete* comments count (a line comment without
    a trailing newline, or an unterminated block comment, would leave
    the remainder unlexable on its own), and ``/*!`` hints never do —
    they produce tokens.
    """
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if (ch == "-" and text.startswith("--", i)) or ch == "#":
            end = text.find("\n", i)
            if end == -1:
                return i
            i = end + 1
            continue
        if ch == "/" and text.startswith("/*", i) and not text.startswith("/*!", i):
            end = text.find("*/", i + 2)
            if end == -1:
                return i
            i = end + 2
            continue
        break
    return i


def segment_statements(text: str) -> list[Segment] | None:
    """Split ``text`` into top-level statement segments without lexing.

    Returns ``None`` when the input contains a MySQL executable comment
    hint (``/*!``), whose re-lexed body can hide top-level semicolons
    from a character scan — callers must fall back to whole-file
    parsing in that case.
    """
    boundaries: list[int] = []
    n = len(text)
    i = 0
    search = _SCAN_RE.search
    find = text.find
    while i < n:
        match = search(text, i)
        if match is None:
            break
        j = match.start()
        tok = match.group()
        if tok == ";":
            boundaries.append(j)
            i = j + 1
        elif tok == "--" or tok == "#":
            end = find("\n", j)
            i = n if end == -1 else end
        elif tok == "/*":
            end = find("*/", j + 2)
            if text.startswith("/*!", j):
                # Executable hint: its body is re-lexed, so a ';' in
                # there (even inside a string literal) could be a
                # top-level semicolon this scan cannot see — bail.
                # Semicolon-free hints (the overwhelmingly common
                # mysqldump headers) segment like ordinary comments.
                body = text[j + 2:] if end == -1 else text[j + 2:end]
                if ";" in body:
                    return None
            i = n if end == -1 else end + 2
        elif tok == "'":
            i = _skip_quoted(text, j, "'", backslash=True)
        elif tok == "`":
            i = _skip_quoted(text, j, "`", backslash=True)
        elif tok == '"':
            i = _skip_quoted(text, j, '"', backslash=False)
        elif tok == "[":
            end = find("]", j + 1)
            i = j + 1 if end == -1 else end + 1
        else:  # "$": dollar quote or a '$'-initial bare word
            tag_match = _DOLLAR_TAG_RE.match(text, j)
            if tag_match:
                tag = tag_match.group(0)
                end = find(tag, tag_match.end())
                i = n if end == -1 else end + len(tag)
            else:
                i = j + 1

    segments: list[Segment] = []
    prev = 0
    line = 1

    def emit(slice_text: str, at_line: int) -> None:
        cut = _comment_prefix_end(slice_text)
        if 0 < cut < len(slice_text):
            prefix = slice_text[:cut]
            segments.append(Segment(prefix, at_line))
            segments.append(Segment(slice_text[cut:], at_line + prefix.count("\n")))
        else:
            segments.append(Segment(slice_text, at_line))

    for boundary in boundaries:
        end = boundary + 1  # include the semicolon
        emit(text[prev:end], line)
        line += text.count("\n", prev, end)
        prev = end
    if prev < n:
        emit(text[prev:], line)
    return segments
