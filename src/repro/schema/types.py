"""Normalisation of SQL data types across dialects.

The diff engine decides whether an attribute "changed its data type" by
comparing *normalised* types, so that cosmetic dialect spellings
(``INT4`` vs ``INTEGER``, ``BOOL`` vs ``BOOLEAN``) do not register as
evolution activity.  A :class:`DataType` keeps both the raw spelling found
in the DDL and the canonical family + parameters used for comparison.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


#: Mapping of type spellings (lower-case, without parameters) to a canonical
#: family name.  Spellings not in the map normalise to themselves.
_TYPE_ALIASES = {
    # integers
    "int": "int",
    "integer": "int",
    "int4": "int",
    "mediumint": "int",
    "middleint": "int",
    "tinyint": "tinyint",
    "int1": "tinyint",
    "smallint": "smallint",
    "int2": "smallint",
    "bigint": "bigint",
    "int8": "bigint",
    "serial": "serial",
    "serial4": "serial",
    "bigserial": "bigserial",
    "serial8": "bigserial",
    "smallserial": "smallserial",
    "serial2": "smallserial",
    # reals
    "float": "float",
    "float4": "float",
    "real": "float",
    "double": "double",
    "float8": "double",
    "double precision": "double",
    "decimal": "decimal",
    "dec": "decimal",
    "numeric": "decimal",
    "fixed": "decimal",
    "money": "money",
    # strings
    "varchar": "varchar",
    "character varying": "varchar",
    "varying": "varchar",
    "nvarchar": "varchar",
    "varchar2": "varchar",
    "char": "char",
    "character": "char",
    "nchar": "char",
    "bpchar": "char",
    "text": "text",
    "tinytext": "text",
    "mediumtext": "text",
    "longtext": "text",
    "clob": "text",
    "citext": "text",
    # binary
    "blob": "blob",
    "tinyblob": "blob",
    "mediumblob": "blob",
    "longblob": "blob",
    "bytea": "blob",
    "binary": "binary",
    "varbinary": "varbinary",
    # temporal
    "datetime": "datetime",
    "timestamp": "timestamp",
    "timestamptz": "timestamptz",
    "timestamp with time zone": "timestamptz",
    "timestamp without time zone": "timestamp",
    "date": "date",
    "time": "time",
    "time with time zone": "timetz",
    "time without time zone": "time",
    "timetz": "timetz",
    "year": "year",
    "interval": "interval",
    # logical / misc
    "bool": "boolean",
    "boolean": "boolean",
    "bit": "bit",
    "bit varying": "varbit",
    "varbit": "varbit",
    "enum": "enum",
    "set": "set",
    "json": "json",
    "jsonb": "jsonb",
    "xml": "xml",
    "uuid": "uuid",
    "inet": "inet",
    "cidr": "cidr",
    "macaddr": "macaddr",
    "point": "point",
    "geometry": "geometry",
    "geography": "geography",
    "tsvector": "tsvector",
    "tsquery": "tsquery",
    "oid": "oid",
}

#: Families whose parameters carry no comparison weight (display widths).
_IGNORED_PARAM_FAMILIES = {"int", "tinyint", "smallint", "bigint", "boolean"}

_ARRAY_SUFFIX = re.compile(r"(\[\s*\d*\s*\])+$")


@dataclass(frozen=True)
class DataType:
    """A normalised SQL data type.

    Attributes:
        family: canonical family name, e.g. ``"varchar"`` or ``"int"``.
        params: normalised parameters, e.g. ``(255,)`` for ``VARCHAR(255)``
            or enum labels for ``ENUM('a','b')``.
        is_array: Postgres array types (``INT[]``).
        unsigned: MySQL ``UNSIGNED`` modifier.
        raw: the raw spelling as found in the DDL (for faithful re-emission).
    """

    family: str
    params: tuple = ()
    is_array: bool = False
    unsigned: bool = False
    raw: str = field(default="", compare=False)

    def __str__(self) -> str:
        text = self.family
        if self.params:
            inner = ", ".join(str(p) for p in self.params)
            text = f"{text}({inner})"
        if self.unsigned:
            text += " unsigned"
        if self.is_array:
            text += "[]"
        return text

    def render_sql(self) -> str:
        """Render a valid SQL spelling of this type (canonical form)."""
        text = self.family.upper()
        if self.params:
            rendered = []
            for param in self.params:
                if isinstance(param, str):
                    escaped = param.replace("'", "''")
                    rendered.append(f"'{escaped}'")
                else:
                    rendered.append(str(param))
            text = f"{text}({', '.join(rendered)})"
        if self.unsigned:
            text += " UNSIGNED"
        if self.is_array:
            text += "[]"
        return text


def normalize_type(raw: str) -> DataType:
    """Normalise a raw SQL type spelling into a :class:`DataType`.

    Handles parameters (``VARCHAR(255)``, ``DECIMAL(10, 2)``,
    ``ENUM('a','b')``), Postgres array suffixes (``TEXT[]``), the MySQL
    ``UNSIGNED``/``ZEROFILL`` modifiers and multi-word spellings
    (``DOUBLE PRECISION``, ``TIMESTAMP WITH TIME ZONE``).

    >>> normalize_type("INT4").family
    'int'
    >>> normalize_type("VarChar(255)").params
    (255,)
    """
    original = raw.strip()
    text = " ".join(original.split()).lower()

    is_array = False
    match = _ARRAY_SUFFIX.search(text)
    if match:
        is_array = True
        text = text[: match.start()].strip()
    if text.startswith("array of "):
        is_array = True
        text = text[len("array of "):]

    unsigned = False
    for modifier in (" unsigned", " zerofill", " signed"):
        if text.endswith(modifier):
            unsigned = unsigned or modifier == " unsigned"
            text = text[: -len(modifier)].strip()

    params: tuple = ()
    paren = text.find("(")
    if paren != -1 and text.endswith(")"):
        base = text[:paren].strip()
        params = _parse_params(text[paren + 1:-1])
    elif paren != -1:
        base = text[:paren].strip()
    else:
        base = text

    # Multi-word modifiers after the parameter list ("varchar(10) binary").
    family = _TYPE_ALIASES.get(base, base)
    if family in _IGNORED_PARAM_FAMILIES:
        params = ()
    return DataType(
        family=family,
        params=params,
        is_array=is_array,
        unsigned=unsigned,
        raw=original,
    )


def _parse_params(body: str) -> tuple:
    """Split a type parameter list into ints and strings.

    ``"10, 2"`` -> ``(10, 2)``; ``"'a','b'"`` -> ``('a', 'b')``.
    """
    params = []
    for part in _split_top_level(body):
        part = part.strip()
        if not part:
            continue
        if part.startswith("'") and part.endswith("'") and len(part) >= 2:
            params.append(part[1:-1].replace("''", "'"))
        elif part.startswith('"') and part.endswith('"') and len(part) >= 2:
            params.append(part[1:-1].replace('""', '"'))
        else:
            try:
                params.append(int(part))
            except ValueError:
                params.append(part)
    return tuple(params)


def _split_top_level(body: str) -> list[str]:
    """Split on commas that are not inside quotes."""
    parts = []
    current = []
    quote = None
    i = 0
    while i < len(body):
        ch = body[i]
        if quote:
            current.append(ch)
            if ch == quote:
                # doubled quote = escaped
                if i + 1 < len(body) and body[i + 1] == quote:
                    current.append(body[i + 1])
                    i += 1
                else:
                    quote = None
        elif ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch == ",":
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    parts.append("".join(current))
    return parts
