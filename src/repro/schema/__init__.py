"""Relational schema model: tables, attributes, normalised types."""

from .model import (
    Attribute,
    ForeignKey,
    Index,
    Schema,
    SchemaError,
    Table,
    quote_identifier,
)
from .types import DataType, normalize_type

__all__ = [
    "Attribute",
    "DataType",
    "ForeignKey",
    "Index",
    "Schema",
    "SchemaError",
    "Table",
    "normalize_type",
    "quote_identifier",
]
