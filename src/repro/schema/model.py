"""The relational schema model.

This is the common currency of the toolkit: the SQL parser produces
:class:`Schema` objects, the diff engine compares them, the SMO algebra
rewrites them and the corpus generator evolves them.

Identifiers are compared case-insensitively (the behaviour of MySQL on
case-insensitive filesystems and of unquoted identifiers in Postgres); the
original spelling is preserved for display and re-emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .types import DataType, normalize_type


class SchemaError(Exception):
    """Raised on inconsistent schema manipulation (duplicate table etc.)."""


def _key(name: str) -> str:
    """Canonical comparison key for an SQL identifier."""
    return name.lower()


@dataclass(frozen=True)
class Attribute:
    """A typed attribute (column) of a table.

    Attributes:
        name: identifier as spelled in the DDL.
        data_type: normalised type.
        nullable: False when declared NOT NULL.
        default: textual default expression, or None.
        auto_increment: MySQL AUTO_INCREMENT / Postgres serial behaviour.
        position: 0-based ordinal position in the table.
    """

    name: str
    data_type: DataType
    nullable: bool = True
    default: str | None = None
    auto_increment: bool = False
    position: int = 0

    @property
    def key(self) -> str:
        return _key(self.name)

    def with_type(self, data_type: DataType | str) -> "Attribute":
        if isinstance(data_type, str):
            data_type = normalize_type(data_type)
        return replace(self, data_type=data_type)

    def render_sql(self) -> str:
        parts = [f"  {quote_identifier(self.name)} {self.data_type.render_sql()}"]
        if not self.nullable:
            parts.append("NOT NULL")
        if self.default is not None:
            parts.append(f"DEFAULT {self.default}")
        if self.auto_increment:
            parts.append("AUTO_INCREMENT")
        return " ".join(parts)


@dataclass(frozen=True)
class Index:
    """A secondary index or unique constraint.

    Indexes live at the *physical* level: the study's Activity measure
    deliberately excludes them (it tracks the logical schema only), but
    the model keeps them so tooling built on the parser — impact
    analysis, migration planning — sees the full table definition.
    """

    columns: tuple[str, ...]
    name: str | None = None
    unique: bool = False
    kind: str = ""  # FULLTEXT / SPATIAL / access method, when declared

    def render_sql(self) -> str:
        cols = ", ".join(quote_identifier(c) for c in self.columns)
        prefix = "UNIQUE " if self.unique else ""
        label = f" {quote_identifier(self.name)}" if self.name else ""
        return f"  {prefix}KEY{label} ({cols})"


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...] = ()
    name: str | None = None

    def render_sql(self) -> str:
        cols = ", ".join(quote_identifier(c) for c in self.columns)
        ref_cols = ""
        if self.ref_columns:
            ref_cols = " (" + ", ".join(
                quote_identifier(c) for c in self.ref_columns
            ) + ")"
        prefix = ""
        if self.name:
            prefix = f"CONSTRAINT {quote_identifier(self.name)} "
        return (
            f"  {prefix}FOREIGN KEY ({cols}) REFERENCES "
            f"{quote_identifier(self.ref_table)}{ref_cols}"
        )


@dataclass
class Table:
    """A relation: ordered attributes plus constraints.

    Attribute order is preserved (it matters for DDL re-emission), but all
    lookups are by case-insensitive name.
    """

    name: str
    attributes: list[Attribute] = field(default_factory=list)
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    indexes: list[Index] = field(default_factory=list)
    options: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._index: dict[str, int] = {}
        self._reindex()

    def _reindex(self) -> None:
        self._index = {attr.key: i for i, attr in enumerate(self.attributes)}
        if len(self._index) != len(self.attributes):
            raise SchemaError(f"duplicate attribute in table {self.name!r}")

    @property
    def key(self) -> str:
        return _key(self.name)

    @property
    def key_index(self) -> dict[str, int]:
        """The maintained attribute-key → position map (do not mutate).

        Exposed so hot paths (the diff engine) can reuse the index the
        table already keeps instead of rebuilding a lookup dict per call.
        """
        return self._index

    @property
    def attribute_names(self) -> list[str]:
        return [attr.name for attr in self.attributes]

    def __contains__(self, attr_name: str) -> bool:
        return _key(attr_name) in self._index

    def __len__(self) -> int:
        return len(self.attributes)

    def get(self, attr_name: str) -> Attribute | None:
        idx = self._index.get(_key(attr_name))
        return self.attributes[idx] if idx is not None else None

    def attribute(self, attr_name: str) -> Attribute:
        attr = self.get(attr_name)
        if attr is None:
            raise SchemaError(
                f"no attribute {attr_name!r} in table {self.name!r}"
            )
        return attr

    def add_attribute(self, attr: Attribute) -> None:
        if attr.key in self._index:
            raise SchemaError(
                f"attribute {attr.name!r} already in table {self.name!r}"
            )
        attr = replace(attr, position=len(self.attributes))
        self.attributes.append(attr)
        self._index[attr.key] = attr.position

    def drop_attribute(self, attr_name: str) -> Attribute:
        idx = self._index.get(_key(attr_name))
        if idx is None:
            raise SchemaError(
                f"no attribute {attr_name!r} in table {self.name!r}"
            )
        removed = self.attributes.pop(idx)
        self.attributes = [
            replace(attr, position=i) for i, attr in enumerate(self.attributes)
        ]
        if _key(attr_name) in {_key(c) for c in self.primary_key}:
            self.primary_key = tuple(
                c for c in self.primary_key if _key(c) != _key(attr_name)
            )
        self._reindex()
        return removed

    def replace_attribute(self, attr_name: str, new_attr: Attribute) -> None:
        idx = self._index.get(_key(attr_name))
        if idx is None:
            raise SchemaError(
                f"no attribute {attr_name!r} in table {self.name!r}"
            )
        new_attr = replace(new_attr, position=idx)
        self.attributes[idx] = new_attr
        self._reindex()

    def pk_keys(self) -> frozenset[str]:
        """Primary key participation, as a set of comparison keys."""
        return frozenset(_key(c) for c in self.primary_key)

    def copy(self) -> "Table":
        return Table(
            name=self.name,
            attributes=list(self.attributes),
            primary_key=tuple(self.primary_key),
            foreign_keys=list(self.foreign_keys),
            indexes=list(self.indexes),
            options=dict(self.options),
        )

    def render_sql(self, *, if_not_exists: bool = False) -> str:
        """Emit a CREATE TABLE statement for this table."""
        lines = [attr.render_sql() for attr in self.attributes]
        if self.primary_key:
            cols = ", ".join(quote_identifier(c) for c in self.primary_key)
            lines.append(f"  PRIMARY KEY ({cols})")
        lines.extend(index.render_sql() for index in self.indexes)
        lines.extend(fk.render_sql() for fk in self.foreign_keys)
        guard = "IF NOT EXISTS " if if_not_exists else ""
        body = ",\n".join(lines)
        return (
            f"CREATE TABLE {guard}{quote_identifier(self.name)} (\n{body}\n);"
        )


@dataclass
class Schema:
    """A database schema: an ordered collection of tables."""

    tables: list[Table] = field(default_factory=list)
    dialect: str = "generic"

    def __post_init__(self) -> None:
        self._index: dict[str, int] = {}
        self._reindex()

    def _reindex(self) -> None:
        self._index = {table.key: i for i, table in enumerate(self.tables)}
        if len(self._index) != len(self.tables):
            raise SchemaError("duplicate table name in schema")

    @property
    def key_index(self) -> dict[str, int]:
        """The maintained table-key → position map (do not mutate).

        Counterpart of :attr:`Table.key_index` for schema-level lookups.
        """
        return self._index

    @property
    def table_names(self) -> list[str]:
        return [table.name for table in self.tables]

    def __contains__(self, table_name: str) -> bool:
        return _key(table_name) in self._index

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self):
        return iter(self.tables)

    def get(self, table_name: str) -> Table | None:
        idx = self._index.get(_key(table_name))
        return self.tables[idx] if idx is not None else None

    def table(self, table_name: str) -> Table:
        table = self.get(table_name)
        if table is None:
            raise SchemaError(f"no table {table_name!r} in schema")
        return table

    def add_table(self, table: Table) -> None:
        if table.key in self._index:
            raise SchemaError(f"table {table.name!r} already in schema")
        self.tables.append(table)
        self._index[table.key] = len(self.tables) - 1

    def drop_table(self, table_name: str) -> Table:
        idx = self._index.get(_key(table_name))
        if idx is None:
            raise SchemaError(f"no table {table_name!r} in schema")
        removed = self.tables.pop(idx)
        self._reindex()
        return removed

    def replace_table(self, table: Table) -> None:
        idx = self._index.get(table.key)
        if idx is None:
            raise SchemaError(f"no table {table.name!r} in schema")
        self.tables[idx] = table

    def copy(self) -> "Schema":
        return Schema(
            tables=[table.copy() for table in self.tables],
            dialect=self.dialect,
        )

    @property
    def attribute_count(self) -> int:
        return sum(len(table) for table in self.tables)

    def render_sql(self) -> str:
        """Emit the whole schema as a DDL script."""
        return "\n\n".join(table.render_sql() for table in self.tables) + "\n"


def quote_identifier(name: str) -> str:
    """Quote an identifier only when necessary (keeps DDL readable)."""
    if name and name.replace("_", "a").isalnum() and not name[0].isdigit():
        return name
    return '"' + name.replace('"', '""') + '"'
