"""Repository mining: heartbeats and schema histories."""

from .aggregates import (
    HistoryAggregates,
    SizeSnapshot,
    growth_vs_restructuring,
)
from .gitrepo import (
    GitCommandError,
    load_repository,
    mine_clone,
    read_git_log,
)
from .history import (
    SchemaHistory,
    SchemaTransition,
    SchemaVersion,
    parse_history_reference,
)
from .miner import (
    MiningError,
    ProjectHistory,
    find_ddl_path,
    mine_project,
    mine_project_activity,
    mine_schema_history,
)
from .sources import (
    HistorySource,
    SingleFileDDLSource,
    SqliteSource,
    get_source,
    register_source,
    registered_sources,
)

__all__ = [
    "GitCommandError",
    "HistoryAggregates",
    "SizeSnapshot",
    "growth_vs_restructuring",
    "HistorySource",
    "MiningError",
    "ProjectHistory",
    "SchemaHistory",
    "SchemaTransition",
    "SchemaVersion",
    "SingleFileDDLSource",
    "SqliteSource",
    "find_ddl_path",
    "get_source",
    "register_source",
    "registered_sources",
    "load_repository",
    "mine_clone",
    "read_git_log",
    "mine_project",
    "mine_project_activity",
    "mine_schema_history",
    "parse_history_reference",
]
