"""Schema histories: parsed versions of a DDL file and their transitions.

Mirrors the structure of the Schema_Evo_2019 dataset: for each project,
the list of versions of the schema file, the pairwise deltas between
subsequent versions (the *heartbeat* source), and aggregate activity
measures.  The initiating version contributes its full content as
born-with-table activity (see DESIGN.md, "Activity convention").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from ..diff import SchemaDelta, diff_schemas, initial_delta
from ..diff.engine import diff_schemas_reference
from ..obs.events import warn
from ..obs.metrics import get_metrics
from ..perf.cache import cached_parse_schema
from ..schema import Schema
from ..sqlparser import ParseIssue, parse_schema
from ..vcs import FileVersion


@dataclass
class SchemaVersion:
    """One parsed version of the DDL file."""

    sha: str
    date: datetime
    schema: Schema
    issues: list[ParseIssue] = field(default_factory=list)

    @property
    def table_count(self) -> int:
        return len(self.schema)

    @property
    def attribute_count(self) -> int:
        return self.schema.attribute_count


@dataclass
class SchemaTransition:
    """The delta between two subsequent versions (or birth, for index 0)."""

    index: int
    date: datetime
    delta: SchemaDelta

    @property
    def activity(self) -> int:
        return self.delta.total_activity

    @property
    def is_active(self) -> bool:
        """An 'active' commit actually changed the schema logically."""
        return self.activity > 0


@dataclass
class SchemaHistory:
    """A project's full schema history with per-transition activity."""

    versions: list[SchemaVersion]
    transitions: list[SchemaTransition]

    @classmethod
    def from_file_versions(
        cls,
        file_versions: list[FileVersion],
        *,
        dialect: str | None = None,
    ) -> "SchemaHistory":
        """Parse and diff a chronological sequence of DDL file versions."""
        if not file_versions:
            raise ValueError("a schema history needs at least one version")
        metrics = get_metrics()
        metrics.inc("versions.parsed", len(file_versions))
        versions: list[SchemaVersion] = []
        for fv in file_versions:
            # content-addressed: re-mining the same DDL text (within a
            # run or, with a disk store, across runs) skips the parser
            result = cached_parse_schema(fv.content, dialect=dialect)
            if result.issues:
                metrics.inc("parse.issues", len(result.issues))
                if not result.schema.tables and fv.content.strip():
                    # tolerated issues are routine (dump noise); a
                    # version that yields an *empty* schema is not
                    warn(
                        "ddl-unparseable",
                        f"version {fv.sha[:12]} produced no tables "
                        f"({len(result.issues)} parse issues)",
                        sha=fv.sha,
                        issues=len(result.issues),
                    )
            versions.append(
                SchemaVersion(
                    sha=fv.sha,
                    date=fv.date,
                    schema=result.schema,
                    issues=result.issues,
                )
            )
        transitions: list[SchemaTransition] = [
            SchemaTransition(
                index=0,
                date=versions[0].date,
                delta=initial_delta(versions[0].schema),
            )
        ]
        for i in range(1, len(versions)):
            transitions.append(
                SchemaTransition(
                    index=i,
                    date=versions[i].date,
                    delta=diff_schemas(
                        versions[i - 1].schema, versions[i].schema
                    ),
                )
            )
        return cls(versions=versions, transitions=transitions)

    @classmethod
    def parse_history_reference(
        cls,
        file_versions: list[FileVersion],
        *,
        dialect: str | None = None,
    ) -> "SchemaHistory":
        """Oracle twin of :meth:`from_file_versions`.

        Parses every version with the monolithic ``parse_schema`` (no
        caching, no fragment reuse) and diffs with the dict-building
        ``diff_schemas_reference`` — no shared objects, no identity
        fast paths, no metrics/warn side effects.  The incremental
        chain must match this version-by-version and transition-by-
        transition; the property tests in
        ``tests/test_incremental_parse.py`` enforce it.
        """
        if not file_versions:
            raise ValueError("a schema history needs at least one version")
        versions = [
            SchemaVersion(
                sha=fv.sha,
                date=fv.date,
                schema=result.schema,
                issues=result.issues,
            )
            for fv in file_versions
            for result in (parse_schema(fv.content, dialect=dialect),)
        ]
        transitions = [
            SchemaTransition(
                index=0,
                date=versions[0].date,
                delta=initial_delta(versions[0].schema),
            )
        ]
        for i in range(1, len(versions)):
            transitions.append(
                SchemaTransition(
                    index=i,
                    date=versions[i].date,
                    delta=diff_schemas_reference(
                        versions[i - 1].schema, versions[i].schema
                    ),
                )
            )
        return cls(versions=versions, transitions=transitions)

    @property
    def total_activity(self) -> int:
        return sum(t.activity for t in self.transitions)

    @property
    def commit_count(self) -> int:
        return len(self.versions)

    @property
    def active_commit_count(self) -> int:
        return sum(1 for t in self.transitions if t.is_active)

    def activity_events(self) -> list[tuple[datetime, float]]:
        """(date, activity) pairs feeding the schema heartbeat."""
        return [(t.date, float(t.activity)) for t in self.transitions]

    @property
    def final_schema(self) -> Schema:
        return self.versions[-1].schema

    @property
    def has_create_table(self) -> bool:
        """Dataset elicitation rule: some version must define a table."""
        return any(len(v.schema) > 0 for v in self.versions)


def parse_history_reference(
    file_versions: list[FileVersion], *, dialect: str | None = None
) -> SchemaHistory:
    """Module-level alias for :meth:`SchemaHistory.parse_history_reference`."""
    return SchemaHistory.parse_history_reference(file_versions, dialect=dialect)
