"""Aggregate measures of a schema history.

The Schema_Evo_2019 dataset ships "detailed and aggregate measures of
the schema history in terms of timing, schema size, numbers of tables
and attributes changed" (§3.1).  This module computes those aggregates
from a parsed :class:`~repro.mining.SchemaHistory`, including the
*change locality* measures the related work reports ([24]: 60–90% of
changes touch 20% of the tables; ~40% of tables never change).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diff import ChangeKind
from .history import SchemaHistory


@dataclass(frozen=True)
class SizeSnapshot:
    """Schema size at one version."""

    index: int
    tables: int
    attributes: int


@dataclass
class HistoryAggregates:
    """Aggregate measures of one schema history.

    Change-locality measures are computed over *post-initial* changes:
    the initiating commit births every table by definition and would
    flatten any locality signal.
    """

    sizes: list[SizeSnapshot]
    changes_per_table: dict[str, int]
    all_tables: set[str]
    total_post_initial_changes: int
    version_count: int
    active_version_count: int

    @classmethod
    def of(cls, history: SchemaHistory) -> "HistoryAggregates":
        sizes = [
            SizeSnapshot(
                index=i,
                tables=version.table_count,
                attributes=version.attribute_count,
            )
            for i, version in enumerate(history.versions)
        ]
        changes_per_table: dict[str, int] = {}
        all_tables: set[str] = set()
        for version in history.versions:
            all_tables.update(t.key for t in version.schema.tables)
        total = 0
        for transition in history.transitions[1:]:
            for change in transition.delta:
                key = change.table.lower()
                changes_per_table[key] = changes_per_table.get(key, 0) + 1
                total += 1
        return cls(
            sizes=sizes,
            changes_per_table=changes_per_table,
            all_tables=all_tables,
            total_post_initial_changes=total,
            version_count=history.commit_count,
            active_version_count=history.active_commit_count,
        )

    # ------------------------------------------------------------ sizes
    @property
    def initial_size(self) -> SizeSnapshot:
        return self.sizes[0]

    @property
    def final_size(self) -> SizeSnapshot:
        return self.sizes[-1]

    @property
    def max_attributes(self) -> int:
        return max(s.attributes for s in self.sizes)

    @property
    def net_attribute_growth(self) -> int:
        return self.final_size.attributes - self.initial_size.attributes

    def size_reaches_fraction_at(self, fraction: float) -> int:
        """First version index where attribute count ≥ fraction of max.

        [24]: "in 7 of the 10 studied projects, their schema size
        approaches 60% of their maximum value within the first 20% of
        their lifetimes" — this is the measure behind that claim.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction out of (0, 1]: {fraction}")
        target = fraction * self.max_attributes
        for snapshot in self.sizes:
            if snapshot.attributes >= target:
                return snapshot.index
        return self.sizes[-1].index

    # --------------------------------------------------------- locality
    @property
    def changed_table_count(self) -> int:
        return len(self.changes_per_table)

    @property
    def unchanged_table_fraction(self) -> float:
        """Fraction of ever-existing tables with zero post-initial change."""
        if not self.all_tables:
            raise ValueError("history defines no tables")
        unchanged = len(self.all_tables - set(self.changes_per_table))
        return unchanged / len(self.all_tables)

    def change_concentration(self, *, fraction: float = 0.2) -> float:
        """Share of post-initial changes held by the most-changed tables.

        ``fraction`` selects the top share of the *table universe*
        (ever-existing tables), mirroring [24]'s "x% of changes refer to
        20% of the tables".  Undefined (raises) with no changes.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction out of (0, 1]: {fraction}")
        if self.total_post_initial_changes == 0:
            raise ValueError("no post-initial changes")
        k = max(1, round(len(self.all_tables) * fraction))
        top = sorted(self.changes_per_table.values(), reverse=True)[:k]
        return sum(top) / self.total_post_initial_changes

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "versions": self.version_count,
            "active_versions": self.active_version_count,
            "initial_tables": self.initial_size.tables,
            "initial_attributes": self.initial_size.attributes,
            "final_tables": self.final_size.tables,
            "final_attributes": self.final_size.attributes,
            "max_attributes": self.max_attributes,
            "net_attribute_growth": self.net_attribute_growth,
            "tables_ever": len(self.all_tables),
            "tables_changed": self.changed_table_count,
            "post_initial_changes": self.total_post_initial_changes,
        }
        if self.total_post_initial_changes > 0:
            out["top20_change_share"] = self.change_concentration()
            out["unchanged_table_fraction"] = self.unchanged_table_fraction
        return out


class AggregateAccumulator:
    """Fold-style corpus aggregation: ``update(shard)`` / ``finalize()``.

    The streaming reduce unit behind the pipeline's ``aggregate`` stage:
    each ``analyze`` shard payload (``{"project", "row"}``) is folded as
    soon as the map phase releases it, so the driver never holds the
    corpus-wide payload list — only the accumulated measure rows.

    With a ``spill_dir`` even the accumulated rows stay bounded: every
    ``spill_batch`` rows are pickled to a numbered partial file and
    dropped from memory, and :meth:`finalize` merges the partials back
    *in fold order*.  The pickle round-trip preserves dataclass value
    equality, so a spilled aggregate is byte-identical to an in-memory
    one all the way through the rendered report.  Skip names are a few
    bytes each and always stay in memory.
    """

    def __init__(self, *, spill_dir: str | None = None,
                 spill_batch: int = 1024):
        self.spill_dir = spill_dir
        self.spill_batch = max(1, spill_batch)
        self.rows: list = []
        self.skipped: list[str] = []
        self.folded = 0
        self.spilled_batches = 0
        self.spilled_rows = 0

    def update(self, entry: dict) -> None:
        """Fold one ``analyze`` shard payload (corpus order required)."""
        self.folded += 1
        if entry["row"] is None:
            self.skipped.append(entry["project"])
            return
        self.rows.append(entry["row"])
        if self.spill_dir is not None and len(self.rows) >= self.spill_batch:
            self._spill()

    def _spill(self) -> None:
        import os
        import pickle

        path = os.path.join(
            self.spill_dir, f"aggregate-{self.spilled_batches:06d}.pkl"
        )
        with open(path, "wb") as handle:
            pickle.dump(self.rows, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self.spilled_batches += 1
        self.spilled_rows += len(self.rows)
        self.rows = []

    def finalize(self) -> dict:
        """The fused-engine payload shape: ``{"rows", "skipped"}``.

        Spilled partials merge back in spill order (each partial is
        itself in fold order), then the in-memory tail — the exact row
        order a non-spilling fold would have produced.
        """
        if self.spilled_batches == 0:
            return {"rows": self.rows, "skipped": self.skipped}
        import os
        import pickle

        rows: list = []
        for batch in range(self.spilled_batches):
            path = os.path.join(
                self.spill_dir, f"aggregate-{batch:06d}.pkl"
            )
            with open(path, "rb") as handle:
                rows.extend(pickle.load(handle))
            os.unlink(path)
        rows.extend(self.rows)
        return {"rows": rows, "skipped": self.skipped}

    def stats(self) -> dict:
        return {
            "folded": self.folded,
            "spilled_batches": self.spilled_batches,
            "spilled_rows": self.spilled_rows,
        }


#: Change kinds that represent structural growth (for growth/restructure
#: style analyses in the spirit of [37]).
GROWTH_KINDS = frozenset({ChangeKind.BORN_WITH_TABLE, ChangeKind.INJECTED})
SHRINK_KINDS = frozenset(
    {ChangeKind.DELETED_WITH_TABLE, ChangeKind.EJECTED}
)


def growth_vs_restructuring(history: SchemaHistory) -> tuple[int, int, int]:
    """(growth, shrinkage, mutation) counts over post-initial changes.

    [37] finds embedded-database schemata "more prone to restructuring
    rather than continuous growth"; this splits the activity that way:
    growth = births/injections, shrinkage = deletions/ejections,
    mutation = type and primary-key changes.
    """
    growth = shrink = mutate = 0
    for transition in history.transitions[1:]:
        for change in transition.delta:
            if change.kind in GROWTH_KINDS:
                growth += 1
            elif change.kind in SHRINK_KINDS:
                shrink += 1
            else:
                mutate += 1
    return growth, shrink, mutate
