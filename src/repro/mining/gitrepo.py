"""Ingestion of *real* local git clones.

The paper's own collection step: for each project, run
``git log --name-status --no-merges --date=iso`` on a local clone and
extract the content of every version of the DDL file via ``git show``.
The output is the same :class:`~repro.vcs.Repository` the synthetic
corpus produces, so everything downstream is shared.

Only read-only plumbing commands are issued; nothing in the clone is
modified.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

from ..vcs import FileVersion, Repository, parse_repository
from .miner import MiningError, ProjectHistory, find_ddl_path, mine_project

#: The exact command the paper uses (§3.1), plus --reverse-insensitive
#: stable ordering via the parser's chronological sort.
GIT_LOG_ARGS = (
    "log",
    "--name-status",
    "--no-merges",
    "--date=iso",
)


class GitCommandError(MiningError):
    """A git invocation failed."""


def _run_git(clone: Path, *args: str) -> str:
    try:
        completed = subprocess.run(
            ["git", "-C", str(clone), *args],
            capture_output=True,
            text=True,
            check=True,
        )
    except FileNotFoundError as exc:
        raise GitCommandError("git binary not found on PATH") from exc
    except subprocess.CalledProcessError as exc:
        raise GitCommandError(
            f"git {' '.join(args[:2])} failed: {exc.stderr.strip()}"
        ) from exc
    return completed.stdout


def read_git_log(clone: str | Path) -> str:
    """The raw ``git log --name-status --no-merges --date=iso`` text."""
    return _run_git(Path(clone), *GIT_LOG_ARGS)


def load_repository(
    clone: str | Path,
    *,
    ddl_path: str | None = None,
    name: str | None = None,
) -> Repository:
    """Build a :class:`Repository` from a local clone.

    The commit graph comes from one ``git log`` invocation; the DDL
    file's versions are extracted with one ``git show`` per touching
    commit (renames follow the new path).

    Args:
        clone: path to the working copy (its ``.git`` is queried).
        ddl_path: repository-relative path of the schema file; when
            omitted, the single most-touched ``.sql`` path is used.
        name: project name; defaults to the clone directory's name.
    """
    clone = Path(clone)
    if not clone.exists():
        raise MiningError(f"clone path does not exist: {clone}")
    repo = parse_repository(name or clone.name, read_git_log(clone))
    if not repo.commits:
        raise MiningError(f"{clone}: no commits found")

    path = ddl_path or find_ddl_path(repo)
    for commit in repo.commits:
        for change in commit.changes:
            if change.path != path and change.old_path != path:
                continue
            if change.kind == "D":
                continue  # the file has no content at this commit
            content = _run_git(clone, "show", f"{commit.sha}:{change.path}")
            repo.record_version(
                path,
                FileVersion(
                    sha=commit.sha, date=commit.date, content=content
                ),
            )
            break
    if not repo.versions_of(path):
        raise MiningError(f"{clone}: no versions of {path!r} extracted")
    return repo


def mine_clone(
    clone: str | Path,
    *,
    ddl_path: str | None = None,
    name: str | None = None,
) -> ProjectHistory:
    """One-call mining of a real local clone into a project history."""
    repo = load_repository(clone, ddl_path=ddl_path, name=name)
    return mine_project(repo)
