"""History sources: pluggable policies for extracting schema histories.

A :class:`HistorySource` owns the *source half* of a workload: given a
repository it locates the schema artifact (``find_schema_path`` — the
source-level policy that ``find_ddl_path`` used to hard-wire),
enumerates its version sequence, and parses it through the dialect
registry into a :class:`~repro.mining.history.SchemaHistory` (passing
its ``dialect_hint`` so affinity-typed SQLite files are not
re-detected version by version).

Two sources ship built-in:

* ``ddl`` — the reference implementation: the paper's single-file-DDL
  policy, byte-for-byte the behaviour the miner always had (auto-
  detected dialect, single recorded ``.sql`` file, most-touched
  fallback).
* ``sqlite`` — the embedded-database flavour: accepts ``.sqlite`` /
  ``.db.sql`` artifacts, prefers the PRAGMA-bearing / SQLite-voting
  candidate when several schema files are recorded (instead of
  refusing the project), and parses with the ``sqlite`` dialect hint.

New scenario families (inferred NoSQL schemas, ORM model files…)
implement the same three methods and call :func:`register_source`.
"""

from __future__ import annotations

from ..sqlparser import detect_dialect
from ..vcs import Repository
from .history import SchemaHistory
from .miner import MiningError, find_ddl_path


class HistorySource:
    """One pluggable schema-history extraction policy.

    Subclasses set ``name`` (the registry key carried in
    ``ShardTask.source`` and artifact meta) and ``dialect_hint`` (the
    parse hint forwarded to
    :meth:`~repro.mining.history.SchemaHistory.from_file_versions`;
    ``None`` detects per version), and may override any of the three
    policy methods.
    """

    name: str = "ddl"
    dialect_hint: str | None = None

    def find_schema_path(self, repo: Repository) -> str:
        """Locate the repository's schema artifact (source policy)."""
        return find_ddl_path(repo)

    def versions_of(self, repo: Repository, path: str) -> list:
        """The chronological version sequence of the schema artifact."""
        versions = repo.versions_of(path)
        if not versions:
            raise MiningError(
                f"{repo.name}: no recorded contents for {path!r} "
                "(real clones need `git show` extraction first)"
            )
        return versions

    def mine_schema_history(
        self, repo: Repository, path: str | None = None
    ) -> tuple[str, SchemaHistory]:
        """Locate, enumerate and parse: the source's full pipeline."""
        path = path or self.find_schema_path(repo)
        versions = self.versions_of(repo, path)
        return path, SchemaHistory.from_file_versions(
            versions, dialect=self.dialect_hint
        )


class SingleFileDDLSource(HistorySource):
    """The reference source: the paper's single-file-DDL policy."""

    name = "ddl"
    dialect_hint = None


class SqliteSource(HistorySource):
    """The embedded-database source: SQLite-flavoured path policy."""

    name = "sqlite"
    dialect_hint = "sqlite"

    #: Schema-artifact suffixes the embedded ecosystem actually ships.
    suffixes = (".sql", ".sqlite", ".db.sql")

    def find_schema_path(self, repo: Repository) -> str:
        recorded = sorted(
            path for path in repo.file_contents
            if path.lower().endswith(self.suffixes)
        )
        if len(recorded) == 1:
            return recorded[0]
        if len(recorded) > 1:
            # embedded projects routinely ship a schema file next to
            # fixture dumps; prefer the candidate that actually votes
            # sqlite (PRAGMA header, AUTOINCREMENT, ...) instead of
            # refusing the project like the strict DDL policy does
            flavoured = [
                path for path in recorded
                if self._votes_sqlite(repo, path)
            ]
            if len(flavoured) == 1:
                return flavoured[0]
            raise MiningError(
                f"{repo.name}: {len(recorded)} recorded schema files, "
                f"{len(flavoured)} of them sqlite-flavoured; "
                "cannot pick one"
            )
        return find_ddl_path(repo)

    @staticmethod
    def _votes_sqlite(repo: Repository, path: str) -> bool:
        versions = repo.versions_of(path)
        if not versions:
            return False
        return detect_dialect(versions[-1].content) == "sqlite"


_REGISTRY: dict[str, HistorySource] = {}


def register_source(source: HistorySource) -> HistorySource:
    """Register (or replace) a history source under its name."""
    _REGISTRY[source.name] = source
    return source


def get_source(name: str) -> HistorySource:
    """The registered source called ``name`` (KeyError if none)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown history source {name!r}; "
            f"registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def registered_sources() -> tuple[str, ...]:
    """All registered source names, in registration order."""
    return tuple(_REGISTRY)


register_source(SingleFileDDLSource())
register_source(SqliteSource())
