"""Mining a repository into the paper's two heartbeats.

Project Activity is the number of files updated per month, exactly what
``git log --name-status --no-merges`` exposes; Schema Activity is the
attribute-level diff activity of the DDL file's version sequence.  The
output is a :class:`ProjectHistory` carrying both heartbeats plus the
parsed schema history, ready for the co-evolution metrics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..coevolution import JointProgress
from ..heartbeat import Heartbeat, Month
from ..obs.events import warn
from ..vcs import Repository
from .history import SchemaHistory


class MiningError(Exception):
    """Raised when a repository cannot be mined into a project history."""


def find_ddl_path(repo: Repository) -> str:
    """Locate the project's schema-DDL file.

    Preference order: a path with recorded file contents (the corpus
    loader always records the DDL file), otherwise the most-touched
    ``.sql`` path in the commit history.

    The fallback tie-break is deterministic across platforms, commit
    orderings and dict iteration orders: among equally-touched paths the
    lexicographically greatest wins (byte-wise comparison on the exact
    path strings — no locale or filesystem-order dependence).  Taking
    that tie-break is no longer silent: a ``ddl-tie-break`` warning
    event records which path won and how many candidates tied, so the
    run manifest surfaces every project whose DDL file was ambiguous.
    """
    recorded = [
        path for path in repo.file_contents if path.lower().endswith(".sql")
    ]
    if len(recorded) == 1:
        return recorded[0]
    if len(recorded) > 1:
        raise MiningError(
            f"{repo.name}: multiple recorded .sql files {sorted(recorded)}; "
            "the study keeps single-DDL-file projects only"
        )
    # one Counter pass over a flat generator; the suffix test is cached
    # per distinct path (the same few paths repeat across thousands of
    # commits, and str.lower() on every touch dominated this loop)
    is_sql_cache: dict[str, bool] = {}

    def is_sql(path: str) -> bool:
        cached = is_sql_cache.get(path)
        if cached is None:
            cached = is_sql_cache[path] = path.lower().endswith(".sql")
        return cached

    sql_touches = Counter(
        change.path
        for commit in repo.commits
        for change in commit.changes
        if is_sql(change.path)
    )
    if not sql_touches:
        raise MiningError(f"{repo.name}: no .sql file in history")
    best = max(sql_touches, key=lambda path: (sql_touches[path], path))
    tied = sum(1 for n in sql_touches.values() if n == sql_touches[best])
    if tied > 1:
        warn(
            "ddl-tie-break",
            f"{repo.name}: {tied} .sql paths tied at "
            f"{sql_touches[best]} touches; picked {best!r}",
            project=repo.name,
            picked=best,
            tied=tied,
        )
    return best


def mine_project_activity(repo: Repository) -> Heartbeat:
    """Monthly file-update counts over the whole project life."""
    if not repo.commits:
        raise MiningError(f"{repo.name}: empty repository")
    span = (Month.of(repo.start_date), Month.of(repo.end_date))
    events = [
        (commit.date, float(commit.files_updated)) for commit in repo.commits
    ]
    return Heartbeat.from_events(events, span=span, label="project")


def mine_schema_history(
    repo: Repository,
    ddl_path: str | None = None,
    *,
    source: str = "ddl",
) -> tuple[str, SchemaHistory]:
    """Parse and diff the version sequence of the project's schema file.

    Delegates to the named :class:`~repro.mining.sources.HistorySource`
    — the path-finding policy, version enumeration and dialect hint are
    all source-level decisions now; the default ``"ddl"`` source is the
    paper's single-file-DDL behaviour, unchanged.
    """
    from .sources import get_source

    return get_source(source).mine_schema_history(repo, path=ddl_path)


@dataclass
class ProjectHistory:
    """Everything the study needs to know about one project."""

    name: str
    ddl_path: str
    project_heartbeat: Heartbeat
    schema_heartbeat: Heartbeat
    schema_history: SchemaHistory

    @property
    def duration_months(self) -> int:
        """Project duration in monthly time-points (union of heartbeats)."""
        start = min(self.project_heartbeat.start, self.schema_heartbeat.start)
        end = max(self.project_heartbeat.end, self.schema_heartbeat.end)
        return end - start + 1

    def joint_progress(self) -> JointProgress:
        """Align the heartbeats into the three cumulative progressions.

        Raises ``ZeroTotalError`` for degenerate histories with zero
        total activity on either side.
        """
        return JointProgress.from_heartbeats(
            self.project_heartbeat, self.schema_heartbeat
        )


def mine_project(
    repo: Repository,
    *,
    ddl_path: str | None = None,
    source: str = "ddl",
) -> ProjectHistory:
    """Run the full extraction pipeline on one repository.

    ``source`` names the :class:`~repro.mining.sources.HistorySource`
    policy the schema half mines through (the workload's source half);
    the project-activity heartbeat is source-independent.
    """
    project_heartbeat = mine_project_activity(repo)
    path, schema_history = mine_schema_history(repo, ddl_path, source=source)
    schema_events = schema_history.activity_events()
    first_event_month = Month.of(schema_events[0][0])
    last_event_month = Month.of(schema_events[-1][0])
    schema_heartbeat = Heartbeat.from_events(
        schema_events,
        span=(first_event_month, last_event_month),
        label="schema",
    )
    return ProjectHistory(
        name=repo.name,
        ddl_path=path,
        project_heartbeat=project_heartbeat,
        schema_heartbeat=schema_heartbeat,
        schema_history=schema_history,
    )
