"""repro — joint source and schema co-evolution study toolkit.

A from-scratch reproduction of "Joint Source and Schema Evolution:
Insights from a Study of 195 FOSS Projects" (EDBT 2023): SQL DDL
parsing, Hecate-style schema diffing, git-log mining, monthly
heartbeats, the paper's co-evolution measures (θ-synchronicity, schema
advance, α-attainment), the taxa of [33], a calibrated synthetic corpus
generator, and the statistics of §7 — plus change-impact and
co-evolution-patching extensions.

Typical entry points::

    from repro.analysis import canonical_study
    study = canonical_study()          # the 195-project study
    print(study.headline())

    from repro.diff import diff_ddl
    delta = diff_ddl(old_sql, new_sql)  # attribute-level atomic changes
"""

from .coevolution import (
    CoevolutionMeasures,
    JointProgress,
    attainment_fraction,
    theta_synchronicity,
)
from .diff import ActivityBreakdown, ChangeKind, SchemaDelta, diff_ddl
from .heartbeat import Heartbeat, Month
from .schema import Attribute, Schema, Table, normalize_type
from .sqlparser import parse_schema, parse_table
from .taxa import Taxon, classify

__version__ = "1.0.0"

__all__ = [
    "ActivityBreakdown",
    "Attribute",
    "ChangeKind",
    "CoevolutionMeasures",
    "Heartbeat",
    "JointProgress",
    "Month",
    "Schema",
    "SchemaDelta",
    "Table",
    "Taxon",
    "attainment_fraction",
    "classify",
    "diff_ddl",
    "normalize_type",
    "parse_schema",
    "parse_table",
    "theta_synchronicity",
    "__version__",
]
