"""The six schema-evolution taxa of [33].

[33] (the Schema_Evo_2019 study) manually clustered 195 schema histories
into archetypes of evolution behaviour.  This module encodes those
archetypes as an enum plus a rule-based classifier over heartbeat
features, so that synthetic (and real) histories can be labelled
automatically.  The generator records ground-truth taxa, which the test
suite uses to validate the classifier instead of trusting it blindly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..heartbeat import Heartbeat


class Taxon(Enum):
    """Evolution archetypes, ordered from most frozen to most active."""

    #: zero change at the logical level after the initiating commit
    FROZEN = "frozen"
    #: very small change, typically few intra-table attribute updates
    ALMOST_FROZEN = "almost_frozen"
    #: a single spike of change and almost nothing else
    FOCUSED_SHOT_AND_FROZEN = "focused_shot_and_frozen"
    #: small deltas spread throughout the project's life
    MODERATE = "moderate"
    #: moderate evolution plus one or two spikes of activity
    FOCUSED_SHOT_AND_LOW = "focused_shot_and_low"
    #: high volume of change, intra-table and table birth/eviction alike
    ACTIVE = "active"

    @property
    def display_name(self) -> str:
        return {
            Taxon.FROZEN: "Frozen",
            Taxon.ALMOST_FROZEN: "Almost Frozen",
            Taxon.FOCUSED_SHOT_AND_FROZEN: "FocusedShot & Frozen",
            Taxon.MODERATE: "Moderate",
            Taxon.FOCUSED_SHOT_AND_LOW: "FocusedShot & Low",
            Taxon.ACTIVE: "Active",
        }[self]

    @property
    def is_frozenish(self) -> bool:
        """The three taxa the paper groups as 'frozen' behaviours."""
        return self in (
            Taxon.FROZEN,
            Taxon.ALMOST_FROZEN,
            Taxon.FOCUSED_SHOT_AND_FROZEN,
        )


#: Canonical report ordering (as in the paper's figures).
TAXA_ORDER = (
    Taxon.FROZEN,
    Taxon.ALMOST_FROZEN,
    Taxon.FOCUSED_SHOT_AND_FROZEN,
    Taxon.MODERATE,
    Taxon.FOCUSED_SHOT_AND_LOW,
    Taxon.ACTIVE,
)


@dataclass(frozen=True)
class HeartbeatFeatures:
    """Shape features of a schema heartbeat, after the initiating month.

    The initiating month's activity (the birth of the whole schema) is a
    property of schema *size*, not of evolution behaviour, so taxon
    features are computed on the post-initial part of the heartbeat.
    """

    post_initial_total: float
    active_months: int
    peak: float
    peak_share: float
    spike_count: int
    duration_months: int
    initial_size: float

    @classmethod
    def of(
        cls,
        schema_heartbeat: Heartbeat,
        *,
        spike_floor: float = 10.0,
        spike_share: float = 0.25,
    ) -> "HeartbeatFeatures":
        initial = schema_heartbeat.values[0]
        post = schema_heartbeat.values[1:]
        total = sum(post)
        peak = max(post) if post else 0.0
        spikes = 0
        if total > 0:
            threshold = max(spike_floor, spike_share * total)
            spikes = sum(1 for v in post if v >= threshold)
        return cls(
            post_initial_total=total,
            active_months=sum(1 for v in post if v > 0),
            peak=peak,
            peak_share=(peak / total) if total > 0 else 0.0,
            spike_count=spikes,
            duration_months=schema_heartbeat.duration_months,
            initial_size=initial,
        )


@dataclass(frozen=True)
class TaxonThresholds:
    """Tunable decision thresholds of the rule-based classifier.

    The defaults mirror the qualitative descriptions in [33]; the
    ablation benchmark sweeps them to show the classification (and the
    per-taxon findings) are robust to reasonable variations.
    """

    almost_frozen_total: float = 10.0
    spike_magnitude: float = 10.0
    spike_dominance: float = 0.5
    shot_residual: float = 10.0
    active_total: float = 80.0
    active_months: int = 8


def classify(
    schema_heartbeat: Heartbeat,
    *,
    thresholds: TaxonThresholds = TaxonThresholds(),
) -> Taxon:
    """Assign a taxon to a schema heartbeat.

    Decision order (first match wins):

    1. no post-initial activity at all → FROZEN;
    2. tiny total and no spike → ALMOST FROZEN;
    3. a dominant spike: FOCUSED SHOT & FROZEN when nothing else
       happened, FOCUSED SHOT & LOW when a low level of other change
       surrounds it;
    4. large total spread over many months → ACTIVE;
    5. everything else → MODERATE.
    """
    features = HeartbeatFeatures.of(schema_heartbeat)
    if features.post_initial_total == 0:
        return Taxon.FROZEN
    small_total = features.post_initial_total <= thresholds.almost_frozen_total
    if small_total and features.peak < thresholds.spike_magnitude:
        return Taxon.ALMOST_FROZEN
    dominant_spike = (
        features.peak >= thresholds.spike_magnitude
        and features.peak_share >= thresholds.spike_dominance
    )
    if dominant_spike:
        residual = features.post_initial_total - features.peak
        if residual <= thresholds.shot_residual:
            return Taxon.FOCUSED_SHOT_AND_FROZEN
        return Taxon.FOCUSED_SHOT_AND_LOW
    if (
        features.post_initial_total >= thresholds.active_total
        and features.active_months >= thresholds.active_months
    ):
        return Taxon.ACTIVE
    return Taxon.MODERATE
