"""Schema-evolution taxa and their rule-based classifier."""

from .evaluation import ClassifierEvaluation, TaxonScore
from .model import (
    TAXA_ORDER,
    HeartbeatFeatures,
    Taxon,
    TaxonThresholds,
    classify,
)

__all__ = [
    "ClassifierEvaluation",
    "TAXA_ORDER",
    "TaxonScore",
    "HeartbeatFeatures",
    "Taxon",
    "TaxonThresholds",
    "classify",
]
