"""Evaluation of the taxon classifier against ground-truth labels.

The synthetic corpus records each project's generative taxon, so the
rule-based classifier can be *scored* rather than trusted: confusion
matrix, per-taxon precision/recall/F1, and overall accuracy.  The same
machinery evaluates any relabelling (e.g. after a threshold ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .model import TAXA_ORDER, Taxon


@dataclass(frozen=True)
class TaxonScore:
    """Precision/recall/F1 of one taxon."""

    taxon: Taxon
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


@dataclass
class ClassifierEvaluation:
    """Full evaluation of predicted vs true taxa."""

    confusion: dict[tuple[Taxon, Taxon], int]
    total: int

    @classmethod
    def of(
        cls,
        true_labels: Sequence[Taxon],
        predicted_labels: Sequence[Taxon],
    ) -> "ClassifierEvaluation":
        if len(true_labels) != len(predicted_labels):
            raise ValueError("label sequences must align")
        if not true_labels:
            raise ValueError("nothing to evaluate")
        confusion: dict[tuple[Taxon, Taxon], int] = {}
        for truth, predicted in zip(true_labels, predicted_labels):
            key = (truth, predicted)
            confusion[key] = confusion.get(key, 0) + 1
        return cls(confusion=confusion, total=len(true_labels))

    @property
    def accuracy(self) -> float:
        correct = sum(
            count
            for (truth, predicted), count in self.confusion.items()
            if truth is predicted
        )
        return correct / self.total

    def score(self, taxon: Taxon) -> TaxonScore:
        tp = self.confusion.get((taxon, taxon), 0)
        fp = sum(
            count
            for (truth, predicted), count in self.confusion.items()
            if predicted is taxon and truth is not taxon
        )
        fn = sum(
            count
            for (truth, predicted), count in self.confusion.items()
            if truth is taxon and predicted is not taxon
        )
        return TaxonScore(
            taxon=taxon,
            true_positives=tp,
            false_positives=fp,
            false_negatives=fn,
        )

    def scores(self) -> list[TaxonScore]:
        return [self.score(taxon) for taxon in TAXA_ORDER]

    def macro_f1(self) -> float:
        """Mean F1 over taxa with at least one true instance."""
        present = [
            score for score in self.scores()
            if score.true_positives + score.false_negatives > 0
        ]
        if not present:
            raise ValueError("no taxon has true instances")
        return sum(score.f1 for score in present) / len(present)

    def render(self) -> str:
        """A text confusion matrix (rows = truth, columns = predicted)."""
        from ..report.render import render_table

        headers = ["truth \\ predicted"] + [
            taxon.name[:8] for taxon in TAXA_ORDER
        ]
        rows = []
        for truth in TAXA_ORDER:
            row: list[object] = [truth.name[:18]]
            for predicted in TAXA_ORDER:
                row.append(self.confusion.get((truth, predicted), 0))
            rows.append(row)
        return render_table(headers, rows, title="Taxon confusion matrix")
