"""Core co-evolution metrics: synchronicity, advance, attainment."""

from .joint import JointProgress
from .lag import LagProfile, cross_correlation, schema_leads
from .metrics import (
    DEFAULT_ALPHAS,
    DEFAULT_THETAS,
    CoevolutionMeasures,
    advance_over_source,
    advance_over_time,
    always_in_advance,
    attainment_fraction,
    attainment_index,
    theta_synchronicity,
)

__all__ = [
    "DEFAULT_ALPHAS",
    "DEFAULT_THETAS",
    "CoevolutionMeasures",
    "JointProgress",
    "LagProfile",
    "cross_correlation",
    "schema_leads",
    "advance_over_source",
    "advance_over_time",
    "always_in_advance",
    "attainment_fraction",
    "attainment_index",
    "theta_synchronicity",
]
