"""Cross-correlation lag between the schema and project heartbeats.

The paper is explicit that θ "is not a measure of lag, but just an
acceptance band".  This module adds the lag measure proper: the discrete
cross-correlation of the two *raw* monthly activity series over a lag
window, reporting the offset at which they align best.  At lag ``k``
schema month ``m`` is paired with project month ``m + k``, so a
*positive* best lag means project activity echoes earlier schema
activity — schema leads; a triangulation of RQ2 with a method
independent of cumulative progressions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..heartbeat import Heartbeat


@dataclass(frozen=True)
class LagProfile:
    """Cross-correlation of two heartbeats across lags."""

    lags: tuple[int, ...]
    correlations: tuple[float, ...]

    @property
    def best_lag(self) -> int:
        """Lag (in months) maximising the correlation.

        Positive = the second series (project) echoes the first
        (schema) with that delay, i.e. schema leads.  Ties resolve
        toward the smallest |lag|.
        """
        best = max(self.correlations)
        candidates = [
            lag
            for lag, corr in zip(self.lags, self.correlations)
            if corr == best
        ]
        return min(candidates, key=abs)

    @property
    def best_correlation(self) -> float:
        return max(self.correlations)

    def correlation_at(self, lag: int) -> float:
        try:
            index = self.lags.index(lag)
        except ValueError:
            raise ValueError(f"lag {lag} outside the profile window")
        return self.correlations[index]


def _pearson(xs: list[float], ys: list[float]) -> float:
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def cross_correlation(
    schema: Heartbeat,
    project: Heartbeat,
    *,
    max_lag: int = 6,
) -> LagProfile:
    """Correlate the two activity series over lags in [-max_lag, max_lag].

    At lag ``k``, schema month ``m`` is paired with project month
    ``m + k``: a peak at *positive* ``k`` means the project's activity
    echoes the schema's earlier activity — schema leads.

    Both heartbeats are aligned on their union window first so the lag
    is measured on the shared calendar.
    """
    if max_lag < 0:
        raise ValueError("max_lag must be non-negative")
    start = min(schema.start, project.start)
    end = max(schema.end, project.end)
    xs = schema.aligned(start, end).values
    ys = project.aligned(start, end).values
    n = len(xs)

    lags = []
    correlations = []
    for lag in range(-max_lag, max_lag + 1):
        pairs_x: list[float] = []
        pairs_y: list[float] = []
        for m in range(n):
            j = m + lag
            if 0 <= j < n:
                pairs_x.append(xs[m])
                pairs_y.append(ys[j])
        lags.append(lag)
        correlations.append(_pearson(pairs_x, pairs_y))
    return LagProfile(lags=tuple(lags), correlations=tuple(correlations))


def schema_leads(
    schema: Heartbeat, project: Heartbeat, *, max_lag: int = 6
) -> bool:
    """True when the best cross-correlation lag has schema leading."""
    return cross_correlation(
        schema, project, max_lag=max_lag
    ).best_lag > 0
