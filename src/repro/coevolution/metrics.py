"""The co-evolution measures of the paper.

* θ-synchronicity (§4): the fraction of monthly time-points where the
  cumulative fractional schema and project activities differ by at most θ.
* life percentage of schema advance over time / source (§5.1): the
  fraction of the months *after project creation* where the schema's
  cumulative progression is not behind time / source progression.
* "always in advance" (§5.2): the above equals 1.0.
* α-attainment fractional timepoints (§6.1): the fraction of project life
  at which cumulative schema activity first reaches α.

Measures that are undefined for a project — a life of a single monthly
time-point leaves no months after creation — are ``None``, the "(blank)"
rows of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..heartbeat import fraction_of_life
from .joint import JointProgress

#: The two acceptance bands used in the paper.
DEFAULT_THETAS = (0.05, 0.10)

#: The completion levels studied in §6.2.
DEFAULT_ALPHAS = (0.50, 0.75, 0.80, 1.00)


def theta_synchronicity(joint: JointProgress, theta: float) -> float:
    """Fraction of time-points with |project − schema| ≤ θ.

    θ is an acceptance band for "hand-in-hand" co-evolution, not a lag
    measure; the returned fraction is what quantifies how often the two
    progressions were close.
    """
    if not 0 <= theta <= 1:
        raise ValueError(f"theta out of [0, 1]: {theta}")
    close = sum(
        1
        for p, s in zip(joint.project, joint.schema)
        if abs(p - s) <= theta + 1e-12
    )
    return close / joint.n_points


def advance_over_source(joint: JointProgress) -> float | None:
    """Life percentage of schema advance over source progression.

    Counts the months after the initiating one where
    ``schema − project ≥ 0`` and divides by the number of such months.
    ``None`` when the project's life has no months after creation.
    """
    return _advance(joint.schema, joint.project)


def advance_over_time(joint: JointProgress) -> float | None:
    """Life percentage of schema advance over time progression."""
    return _advance(joint.schema, joint.time)


def _advance(
    schema: tuple[float, ...], other: tuple[float, ...]
) -> float | None:
    n_after_creation = len(schema) - 1
    if n_after_creation <= 0:
        return None
    ahead = sum(
        1
        for s, o in zip(schema[1:], other[1:])
        if s - o >= -1e-12
    )
    return ahead / n_after_creation


def always_in_advance(joint: JointProgress) -> tuple[bool, bool, bool]:
    """(over time, over source, over both) — each for *all* months.

    Projects with an undefined life percentage are never "always".
    """
    over_time = advance_over_time(joint)
    over_source = advance_over_source(joint)
    time_always = over_time is not None and over_time >= 1.0
    source_always = over_source is not None and over_source >= 1.0
    return time_always, source_always, time_always and source_always


def attainment_index(joint: JointProgress, alpha: float) -> int:
    """First monthly time-point where cumulative schema activity ≥ α."""
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha out of (0, 1]: {alpha}")
    for index, value in enumerate(joint.schema):
        if value >= alpha - 1e-12:
            return index
    # cumulative fractions end at 1.0, so alpha <= 1 is always reached
    return joint.n_points - 1


def attainment_fraction(joint: JointProgress, alpha: float) -> float:
    """α-attainment fractional timepoint: fraction of life at attainment."""
    index = attainment_index(joint, alpha)
    return fraction_of_life(index, joint.n_points)


@dataclass(frozen=True)
class CoevolutionMeasures:
    """All per-project measures the study reports.

    ``sync`` maps θ to θ-synchronicity; ``attainment`` maps α to the
    α-attainment fractional timepoint.  ``advance_over_*`` are ``None``
    for "(blank)" projects (single-month lives).
    """

    duration_months: int
    sync: dict[float, float] = field(default_factory=dict)
    advance_over_source: float | None = None
    advance_over_time: float | None = None
    always_over_time: bool = False
    always_over_source: bool = False
    always_over_both: bool = False
    attainment: dict[float, float] = field(default_factory=dict)

    @classmethod
    def of(
        cls,
        joint: JointProgress,
        *,
        thetas: tuple[float, ...] = DEFAULT_THETAS,
        alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    ) -> "CoevolutionMeasures":
        over_time, over_source, over_both = always_in_advance(joint)
        return cls(
            duration_months=joint.n_points,
            sync={
                theta: theta_synchronicity(joint, theta) for theta in thetas
            },
            advance_over_source=advance_over_source(joint),
            advance_over_time=advance_over_time(joint),
            always_over_time=over_time,
            always_over_source=over_source,
            always_over_both=over_both,
            attainment={
                alpha: attainment_fraction(joint, alpha) for alpha in alphas
            },
        )
