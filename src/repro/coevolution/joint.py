"""Joint cumulative progress of a project, its schema, and time.

A :class:`JointProgress` aligns three monotone series on the project's
monthly timeline (paper §3.2 and Fig. 1): the cumulative fractional
project activity, the cumulative fractional schema activity, and the
cumulative fractional time progress.  All three end at 1.0; the schema
series is zero before the DDL file exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..heartbeat import Heartbeat, Month, ZeroTotalError, time_progress


@dataclass(frozen=True)
class JointProgress:
    """The three aligned cumulative fractional series of one project."""

    start: Month
    project: tuple[float, ...]
    schema: tuple[float, ...]
    time: tuple[float, ...]

    def __post_init__(self) -> None:
        if not (
            len(self.project) == len(self.schema) == len(self.time)
        ):
            raise ValueError("misaligned joint progress series")
        if not self.project:
            raise ValueError("empty joint progress")

    @property
    def n_points(self) -> int:
        """Monthly time-points, the project's duration in months."""
        return len(self.project)

    @property
    def months(self) -> list[Month]:
        return [self.start.shift(i) for i in range(self.n_points)]

    @classmethod
    def from_heartbeats(
        cls, project: Heartbeat, schema: Heartbeat
    ) -> "JointProgress":
        """Align the two heartbeats on their union window and normalise.

        Raises:
            ZeroTotalError: if either heartbeat has zero total activity
                (its cumulative fraction is undefined).
        """
        start = min(project.start, schema.start)
        end = max(project.end, schema.end)
        project_aligned = project.aligned(start, end)
        schema_aligned = schema.aligned(start, end)
        n_points = len(project_aligned)
        return cls(
            start=start,
            project=tuple(project_aligned.cumulative_fraction()),
            schema=tuple(schema_aligned.cumulative_fraction()),
            time=tuple(time_progress(n_points)),
        )

    @classmethod
    def from_series(
        cls,
        project: list[float],
        schema: list[float],
        *,
        start: Month = Month(2015, 1),
    ) -> "JointProgress":
        """Build directly from cumulative fractional series (for tests)."""
        return cls(
            start=start,
            project=tuple(project),
            schema=tuple(schema),
            time=tuple(time_progress(len(project))),
        )

    def gap(self, index: int) -> float:
        """Schema-minus-project gap at a time-point (signed)."""
        return self.schema[index] - self.project[index]
