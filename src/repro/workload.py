"""Workloads: the pluggable (dialect, source) pairs the study runs on.

A workload names a *scenario family*: which dialect the corpus
generator emits (:data:`vendor_mix`, drawn per project from the corpus
RNG), which :class:`~repro.mining.sources.HistorySource` mines the
generated repositories, and whether the pair participates in shard
identity.  The canonical study — the paper's MySQL/Postgres single-file
DDL histories — is itself just the default workload; ``--dialect
sqlite`` selects the embedded-database workload, and new families
register here without touching the reduce stages (their fingerprints
chain over shard keys alone, so a new workload re-keys its own shard
family and nothing else).

The default workload deliberately has ``identity=None``: canonical
shard keys predate the workload interface and must stay byte-identical,
so only non-default workloads contribute a ``dialect`` component to the
shard identity (and thereby to ``pipeline explain``'s ``params.dialect``
attribution).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    """One (dialect, source) scenario family.

    ``vendor_mix`` is the tuple the corpus RNG draws each project's
    vendor from — kept the same length as the canonical mix so every
    workload consumes the corpus RNG identically and the sampled
    per-project properties (names, seeds, durations) line up across
    workloads.  ``dialect_hint`` is passed to the schema-history parser
    (``None`` means detect from surface features, the canonical
    behaviour).  ``identity`` is the shard-identity component (``None``
    for the default workload: legacy keys stay untouched).
    """

    name: str
    vendor_mix: tuple[str, ...]
    source: str
    dialect_hint: str | None = None
    identity: str | None = None


_REGISTRY: dict[str, Workload] = {}


def register_workload(workload: Workload) -> Workload:
    """Register (or replace) a workload under its name."""
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(dialect: str | None) -> Workload:
    """Resolve a ``--dialect`` value (``None`` = canonical default)."""
    name = dialect or "default"
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload dialect {name!r}; "
            f"registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def registered_workloads() -> tuple[str, ...]:
    """All registered workload names, in registration order."""
    return tuple(_REGISTRY)


#: The paper's canonical workload: MySQL-leaning vendor mix, single-file
#: DDL source, no identity component (pre-workload shard keys).
DEFAULT_WORKLOAD = register_workload(Workload(
    name="default",
    vendor_mix=("mysql", "mysql", "postgres"),
    source="ddl",
    dialect_hint=None,
    identity=None,
))

#: The embedded-database workload: every project emits SQLite-dialect
#: histories and mines through the sqlite-flavoured source.
SQLITE_WORKLOAD = register_workload(Workload(
    name="sqlite",
    vendor_mix=("sqlite", "sqlite", "sqlite"),
    source="sqlite",
    dialect_hint="sqlite",
    identity="sqlite",
))
