"""The bounded-memory streaming path: watchdog, spill, window, identity.

Streaming changed *scheduling*, never bytes: a capped run must render
the exact report an uncapped (or fused-engine) run renders, the
aggregate accumulator must fold spilled and in-memory rows into the
same payload, and the watchdog must warn once, shrink the window, and
fail loudly on a true breach — surfacing as exit code 3 at the CLI.
"""

import dataclasses

import pytest

from repro.mining.aggregates import AggregateAccumulator
from repro.obs.events import get_recorder, reset_recorder
from repro.obs.metrics import reset_metrics
from repro.obs.resources import MemoryLimitExceeded, MemoryWatchdog
from repro.pipeline.graph import Pipeline
from repro.pipeline.store import MemoryStore


@pytest.fixture(autouse=True)
def _clean_observability():
    reset_recorder()
    reset_metrics()
    yield
    reset_recorder()
    reset_metrics()


class TestMemoryWatchdog:
    def test_ok_below_warn_line(self):
        watchdog = MemoryWatchdog(1000, probe=lambda: 500)
        assert watchdog.check() == "ok"
        assert watchdog.check() == "ok"
        assert watchdog.as_dict() == {
            "limit_bytes": 1000,
            "peak_seen_bytes": 500,
            "checks": 2,
            "pressure": False,
        }

    def test_pressure_warns_exactly_once(self):
        readings = iter([700, 850, 900, 950])
        watchdog = MemoryWatchdog(1000, probe=lambda: next(readings))
        recorder = get_recorder()
        mark = recorder.mark()
        assert watchdog.check() == "ok"
        assert watchdog.check() == "pressure"
        assert watchdog.check() == "pressure"
        assert watchdog.check() == "pressure"
        warnings = recorder.since(mark)
        assert [w["code"] for w in warnings] == ["memory-pressure"]
        assert watchdog.as_dict()["pressure"] is True
        assert watchdog.as_dict()["peak_seen_bytes"] == 950

    def test_breach_raises_with_both_figures(self):
        watchdog = MemoryWatchdog(1000, probe=lambda: 1001)
        with pytest.raises(MemoryLimitExceeded) as excinfo:
            watchdog.check()
        assert excinfo.value.rss_bytes == 1001
        assert excinfo.value.limit_bytes == 1000
        assert "exceeded" in str(excinfo.value)

    def test_unreadable_rss_never_trips(self):
        watchdog = MemoryWatchdog(1000, probe=lambda: 0)
        assert all(watchdog.check() == "ok" for _ in range(5))


@dataclasses.dataclass(frozen=True)
class Row:
    project: str
    value: int


def _entries(n, skip_every=None):
    out = []
    for i in range(n):
        name = f"p{i:03d}"
        skipped = skip_every is not None and i % skip_every == 0
        out.append({
            "project": name,
            "row": None if skipped else Row(name, i),
        })
    return out


class TestAggregateAccumulator:
    def test_fold_matches_list_shape(self):
        acc = AggregateAccumulator()
        entries = _entries(10, skip_every=4)
        for entry in entries:
            acc.update(entry)
        result = acc.finalize()
        assert result["rows"] == [
            e["row"] for e in entries if e["row"] is not None
        ]
        assert result["skipped"] == ["p000", "p004", "p008"]
        assert acc.stats() == {
            "folded": 10, "spilled_batches": 0, "spilled_rows": 0,
        }

    def test_spilled_fold_is_value_identical(self, tmp_path):
        entries = _entries(25, skip_every=7)
        plain = AggregateAccumulator()
        spilled = AggregateAccumulator(
            spill_dir=str(tmp_path), spill_batch=4,
        )
        for entry in entries:
            plain.update(entry)
            spilled.update(entry)
        stats = spilled.stats()
        assert stats["spilled_batches"] == 5
        assert stats["spilled_rows"] == 20
        assert list(tmp_path.iterdir()), "no partials hit the disk"
        assert spilled.finalize() == plain.finalize()
        # finalize consumed and removed every partial
        assert not list(tmp_path.iterdir())

    def test_no_spill_without_dir(self):
        acc = AggregateAccumulator(spill_batch=2)
        for entry in _entries(10):
            acc.update(entry)
        assert acc.stats()["spilled_rows"] == 0
        assert len(acc.finalize()["rows"]) == 10


class _PressureWatchdog:
    """A watchdog double that reports pressure from the first check."""

    instances: list = []

    def __init__(self, limit_bytes, **_kwargs):
        self.limit_bytes = limit_bytes
        self.checks = 0
        type(self).instances.append(self)

    def check(self):
        self.checks += 1
        return "pressure"

    def as_dict(self):
        return {
            "limit_bytes": self.limit_bytes,
            "peak_seen_bytes": 0,
            "checks": self.checks,
            "pressure": True,
        }


class TestStreamingPipeline:
    N = 12

    def _report(self, **kwargs):
        reset_recorder()
        reset_metrics()
        pipe = Pipeline(store=MemoryStore(), projects=self.N, **kwargs)
        return pipe, pipe.report()

    def test_capped_run_is_byte_identical_to_uncapped(self):
        _, plain = self._report()
        capped_pipe, capped = self._report(limit_memory_mb=4096, window=2)
        assert capped == plain
        streaming = capped_pipe.timings.streaming
        window = streaming["window"]
        assert window["submitted"] == self.N
        assert window["initial"] == 2
        assert 0 < window["max_in_flight"] <= 2
        assert streaming["memory_watchdog"]["checks"] == self.N

    def test_uncapped_run_records_window_but_no_watchdog(self):
        pipe, _ = self._report()
        assert "window" in pipe.timings.streaming
        assert "memory_watchdog" not in pipe.timings.streaming

    def test_pressure_shrinks_window_and_clears_cache(self, monkeypatch):
        import repro.pipeline.graph as graph_module

        _PressureWatchdog.instances = []
        monkeypatch.setattr(
            graph_module, "MemoryWatchdog", _PressureWatchdog
        )
        _, plain = self._report()
        pipe, capped = self._report(limit_memory_mb=256, window=8)
        assert capped == plain, "pressure handling changed report bytes"
        streaming = pipe.timings.streaming
        assert streaming["window"]["final"] == 1
        assert streaming["window"]["shrinks"] >= 1
        assert streaming["memory_watchdog"]["cache_clears"] >= 1

    def test_breach_propagates_from_study(self):
        reset_recorder()
        reset_metrics()
        pipe = Pipeline(
            store=MemoryStore(), projects=self.N, limit_memory_mb=1,
        )
        with pytest.raises(MemoryLimitExceeded):
            pipe.study()

    def test_breach_exits_3_at_the_cli(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "study", "--projects", str(self.N), "--limit-memory", "1",
            "--store-dir", str(tmp_path / "store"),
            "--figure", "headline",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "exceeded" in err and "--limit-memory" in err

    def test_warm_rerun_under_cap_replays_byte_identical(self, tmp_path):
        from repro.pipeline.store import DirStore

        store_dir = tmp_path / "store"

        def run():
            reset_recorder()
            reset_metrics()
            pipe = Pipeline(
                store=DirStore(store_dir),
                projects=self.N,
                limit_memory_mb=4096,
            )
            return pipe, pipe.report()

        _, cold = run()
        warm_pipe, warm = run()
        assert warm == cold
        assert warm_pipe.timings.artifact_totals.recomputes == 0


class TestShardStatusPagination:
    def _pipe(self):
        return Pipeline(store=MemoryStore(), projects=10)

    def test_page_matches_full_listing_slice(self):
        pipe = self._pipe()
        full = pipe.shard_status()
        assert len(full) == 10
        assert pipe.shard_status(limit=4, offset=3) == full[3:7]
        assert pipe.shard_status(limit=4, offset=8) == full[8:]
        assert pipe.shard_status(offset=11) == []
        assert pipe.shard_status(limit=0) == []

    def test_cli_paginates_and_reports_totals(self, capsys):
        from repro.cli import main

        code = main([
            "pipeline", "status", "--projects", "10", "--shards",
            "--limit", "3", "--offset", "2", "--json",
        ])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["shard_total"] == 10
        assert payload["shard_offset"] == 2
        assert len(payload["shards"]) == 3

    def test_cli_limit_zero_lists_all(self, capsys):
        from repro.cli import main

        code = main([
            "pipeline", "status", "--projects", "10", "--shards",
            "--limit", "0", "--json",
        ])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert len(payload["shards"]) == 10
