"""Unit tests for SQL type normalisation."""

import pytest

from repro.schema import DataType, normalize_type


class TestAliases:
    def test_integer_aliases_collapse(self):
        assert normalize_type("INTEGER") == normalize_type("int")
        assert normalize_type("INT4") == normalize_type("int")
        assert normalize_type("MEDIUMINT") == normalize_type("int")

    def test_bigint_aliases(self):
        assert normalize_type("INT8").family == "bigint"
        assert normalize_type("BIGINT").family == "bigint"

    def test_boolean_aliases(self):
        assert normalize_type("BOOL") == normalize_type("BOOLEAN")

    def test_varchar_aliases(self):
        assert normalize_type("CHARACTER VARYING(10)").family == "varchar"
        assert normalize_type("varchar2(10)").family == "varchar"

    def test_text_aliases(self):
        for spelling in ("TINYTEXT", "MEDIUMTEXT", "LONGTEXT", "CLOB"):
            assert normalize_type(spelling).family == "text"

    def test_unknown_type_passes_through(self):
        assert normalize_type("HSTORE").family == "hstore"

    def test_double_precision_multiword(self):
        assert normalize_type("DOUBLE PRECISION").family == "double"

    def test_timestamp_with_time_zone(self):
        assert normalize_type("TIMESTAMP WITH TIME ZONE").family == "timestamptz"
        assert normalize_type("timestamptz") == normalize_type(
            "TIMESTAMP WITH TIME ZONE"
        )

    def test_timestamp_without_time_zone(self):
        assert (
            normalize_type("TIMESTAMP WITHOUT TIME ZONE")
            == normalize_type("TIMESTAMP")
        )


class TestParameters:
    def test_varchar_length(self):
        assert normalize_type("VARCHAR(255)").params == (255,)

    def test_decimal_precision_scale(self):
        assert normalize_type("DECIMAL(10, 2)").params == (10, 2)

    def test_numeric_equals_decimal(self):
        assert normalize_type("NUMERIC(10,2)") == normalize_type(
            "DECIMAL(10, 2)"
        )

    def test_enum_labels(self):
        t = normalize_type("ENUM('a', 'b', 'c')")
        assert t.family == "enum"
        assert t.params == ("a", "b", "c")

    def test_enum_label_with_escaped_quote(self):
        t = normalize_type("ENUM('it''s', 'b')")
        assert t.params == ("it's", "b")

    def test_enum_label_with_comma(self):
        t = normalize_type("ENUM('a,b', 'c')")
        assert t.params == ("a,b", "c")

    def test_int_display_width_ignored(self):
        assert normalize_type("INT(11)") == normalize_type("INT")

    def test_varchar_lengths_distinguish(self):
        assert normalize_type("VARCHAR(10)") != normalize_type("VARCHAR(20)")


class TestModifiers:
    def test_unsigned(self):
        t = normalize_type("INT UNSIGNED")
        assert t.unsigned
        assert t.family == "int"

    def test_unsigned_differs_from_signed(self):
        assert normalize_type("INT UNSIGNED") != normalize_type("INT")

    def test_zerofill_is_cosmetic(self):
        assert normalize_type("INT ZEROFILL") == normalize_type("INT")

    def test_array_suffix(self):
        t = normalize_type("TEXT[]")
        assert t.is_array
        assert t.family == "text"

    def test_sized_array_suffix(self):
        assert normalize_type("INT[3]").is_array

    def test_array_differs_from_scalar(self):
        assert normalize_type("TEXT[]") != normalize_type("TEXT")


class TestRendering:
    def test_render_simple(self):
        assert normalize_type("int").render_sql() == "INT"

    def test_render_params(self):
        assert normalize_type("varchar(40)").render_sql() == "VARCHAR(40)"

    def test_render_enum_quotes_labels(self):
        assert (
            normalize_type("enum('a','b')").render_sql() == "ENUM('a', 'b')"
        )

    def test_render_roundtrips_through_normalize(self):
        for spelling in (
            "INT UNSIGNED",
            "DECIMAL(12, 4)",
            "TEXT[]",
            "ENUM('x', 'y')",
            "TIMESTAMPTZ",
        ):
            t = normalize_type(spelling)
            assert normalize_type(t.render_sql()) == t

    def test_str_is_informative(self):
        assert str(normalize_type("varchar(8)")) == "varchar(8)"

    def test_raw_preserved_but_not_compared(self):
        a = normalize_type("INT4")
        b = normalize_type("INTEGER")
        assert a.raw == "INT4"
        assert b.raw == "INTEGER"
        assert a == b


class TestDataTypeValue:
    def test_hashable(self):
        assert len({normalize_type("int"), normalize_type("integer")}) == 1

    def test_direct_construction(self):
        t = DataType(family="varchar", params=(16,))
        assert str(t) == "varchar(16)"
