"""Property-based tests for co-evolution metrics and text pipelines."""

import random
import string

from hypothesis import given, settings, strategies as st

from repro.coevolution import (
    JointProgress,
    advance_over_source,
    advance_over_time,
    always_in_advance,
    attainment_fraction,
    theta_synchronicity,
)
from repro.migrate import replace_identifiers
from repro.vcs import (
    Commit,
    FileChange,
    format_git_log,
    parse_git_log,
    synthetic_sha,
    utc,
)


@st.composite
def cumulative_series(draw, max_len=40):
    """A monotone series in (0, 1] ending at exactly 1.0."""
    n = draw(st.integers(min_value=1, max_value=max_len))
    increments = draw(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    total = sum(increments) or 1.0
    running = 0.0
    series = []
    for inc in increments:
        running += inc / total
        series.append(min(1.0, running))
    series[-1] = 1.0
    return series


@st.composite
def joint_progress(draw):
    project = draw(cumulative_series())
    n = len(project)
    schema = draw(cumulative_series(max_len=n))
    # pad/truncate the schema to the same length
    if len(schema) < n:
        schema = [0.0] * (n - len(schema)) + schema
    return JointProgress.from_series(project, schema[:n])


class TestMetricProperties:
    @settings(max_examples=60, deadline=None)
    @given(joint_progress())
    def test_synchronicity_bounds_and_monotonicity(self, jp):
        narrow = theta_synchronicity(jp, 0.05)
        wide = theta_synchronicity(jp, 0.10)
        full = theta_synchronicity(jp, 1.0)
        assert 0 <= narrow <= wide <= full <= 1
        assert full == 1.0  # |difference of two [0,1] values| <= 1

    @settings(max_examples=60, deadline=None)
    @given(joint_progress())
    def test_advance_bounds(self, jp):
        for value in (advance_over_source(jp), advance_over_time(jp)):
            if value is not None:
                assert 0 <= value <= 1

    @settings(max_examples=60, deadline=None)
    @given(joint_progress())
    def test_always_flags_consistent_with_advance(self, jp):
        over_time, over_source, over_both = always_in_advance(jp)
        assert over_both == (over_time and over_source)
        if over_time:
            assert advance_over_time(jp) == 1.0
        if over_source:
            assert advance_over_source(jp) == 1.0

    @settings(max_examples=60, deadline=None)
    @given(joint_progress())
    def test_attainment_monotone_in_alpha(self, jp):
        alphas = (0.25, 0.5, 0.75, 0.8, 1.0)
        fractions = [attainment_fraction(jp, a) for a in alphas]
        assert fractions == sorted(fractions)
        assert all(0 < f <= 1 for f in fractions)

    @settings(max_examples=60, deadline=None)
    @given(joint_progress())
    def test_last_month_everything_complete(self, jp):
        assert jp.project[-1] == 1.0
        assert jp.schema[-1] == 1.0
        assert jp.time[-1] == 1.0


_path_chars = st.text(
    alphabet=string.ascii_lowercase + string.digits + "_",
    min_size=1,
    max_size=12,
)


@st.composite
def commits(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    out = []
    minute = 0
    for i in range(n):
        minute += draw(st.integers(min_value=1, max_value=10_000))
        n_files = draw(st.integers(min_value=1, max_value=5))
        changes = [
            FileChange(
                draw(st.sampled_from(["A", "M", "D"])),
                f"dir/{draw(_path_chars)}_{i}_{j}.py",
            )
            for j in range(n_files)
        ]
        message = draw(
            st.text(
                alphabet=string.ascii_letters + " ",
                min_size=1,
                max_size=40,
            )
        ).strip() or "msg"
        out.append(
            Commit(
                sha=synthetic_sha("prop", i),
                author="Dev",
                email="dev@example.org",
                date=utc(2015, 1, 1) .replace(minute=0)
                + __import__("datetime").timedelta(minutes=minute),
                message=message,
                changes=changes,
            )
        )
    return out


class TestGitLogRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(commits())
    def test_format_parse_roundtrip(self, commit_list):
        text = format_git_log(commit_list, newest_first=True)
        reparsed = parse_git_log(text)[::-1]  # back to chronological
        assert len(reparsed) == len(commit_list)
        for original, parsed in zip(commit_list, reparsed):
            assert parsed.sha == original.sha
            assert parsed.date == original.date
            assert parsed.files_updated == original.files_updated
            assert [c.path for c in parsed.changes] == [
                c.path for c in original.changes
            ]


_identifiers = st.text(
    alphabet=string.ascii_lowercase + "_", min_size=2, max_size=10
).filter(lambda s: not s.startswith("_"))


class TestRewriteProperties:
    @settings(max_examples=60, deadline=None)
    @given(_identifiers, _identifiers)
    def test_rename_then_rename_back_is_identity(self, old, new):
        if old == new:
            return
        sql = f"SELECT {old}, other_col FROM some_table WHERE {old} > 1"
        if new in sql:
            return  # the fresh name must actually be fresh
        forward = replace_identifiers(sql, {old: new})
        back = replace_identifiers(forward, {new: old})
        assert back == sql

    @settings(max_examples=60, deadline=None)
    @given(_identifiers, _identifiers)
    def test_literals_never_rewritten(self, old, new):
        if old == new:
            return
        sql = f"SELECT x FROM t WHERE note = '{old} inside literal'"
        rewritten = replace_identifiers(sql, {old: new})
        assert f"'{old} inside literal'" in rewritten
