"""Unit tests for SVG chart rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.report import (
    PALETTE,
    svg_bar_chart,
    svg_joint_progress,
    svg_line_chart,
    svg_scatter,
    write_svg_figures,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


def count(root, tag):
    return len(root.findall(f".//{SVG_NS}{tag}"))


class TestLineChart:
    def test_well_formed_and_one_polyline_per_series(self):
        root = parse(
            svg_line_chart(
                {"a": [0.0, 0.5, 1.0], "b": [1.0, 1.0, 1.0]},
                title="demo",
            )
        )
        assert count(root, "polyline") == 2

    def test_title_and_legend_present(self):
        root = parse(
            svg_line_chart({"schema": [0.5, 1.0]}, title="T & T")
        )
        texts = [t.text for t in root.findall(f".//{SVG_NS}text")]
        assert "T & T" in texts
        assert "schema" in texts

    def test_values_clamped_to_unit_range(self):
        svg = svg_line_chart({"a": [0.0, 2.0]})  # out-of-range tolerated
        parse(svg)

    def test_unequal_series_rejected(self):
        with pytest.raises(ValueError):
            svg_line_chart({"a": [1.0], "b": [1.0, 2.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_line_chart({"a": []})


class TestScatter:
    def test_one_circle_per_point(self):
        root = parse(
            svg_scatter([(1, 0.5, "x"), (2, 0.7, "y"), (3, 0.2, "x")])
        )
        assert count(root, "circle") == 3

    def test_series_colours_differ(self):
        root = parse(svg_scatter([(1, 1, "a"), (2, 2, "b")]))
        fills = {
            c.get("fill") for c in root.findall(f".//{SVG_NS}circle")
        }
        assert len(fills) == 2
        assert fills <= set(PALETTE)

    def test_degenerate_single_point(self):
        parse(svg_scatter([(5, 5, "only")]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_scatter([])


class TestBarChart:
    def test_one_rect_per_bar_plus_background(self):
        root = parse(svg_bar_chart(["a", "b", "c"], [1, 2, 3]))
        assert count(root, "rect") == 4  # background + 3 bars

    def test_bar_heights_proportional(self):
        root = parse(svg_bar_chart(["a", "b"], [1, 2]))
        bars = root.findall(f".//{SVG_NS}rect")[1:]
        heights = [float(bar.get("height")) for bar in bars]
        assert heights[1] == pytest.approx(2 * heights[0], rel=1e-6)

    def test_zero_counts_ok(self):
        parse(svg_bar_chart(["a"], [0]))

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            svg_bar_chart(["a"], [1, 2])

    def test_no_bars_rejected(self):
        with pytest.raises(ValueError):
            svg_bar_chart([], [])


class TestStudyFigures:
    def test_write_svg_figures(self, tmp_path):
        from repro.analysis import canonical_study

        paths = write_svg_figures(canonical_study(), tmp_path)
        assert len(paths) == 5
        for path in paths:
            parse(path.read_text())  # every file is well-formed XML

    def test_joint_progress_svg(self):
        from repro.coevolution import JointProgress

        joint = JointProgress.from_series(
            [0.2, 0.6, 1.0], [0.9, 1.0, 1.0]
        )
        root = parse(svg_joint_progress(joint, title="case"))
        assert count(root, "polyline") == 3
