"""Unit + CLI tests for the perf-regression watchdog (`repro.obs.regress`).

The comparator is pure data-in/data-out, so every scenario is a small
dict fixture: self-comparisons must pass, synthetically slowed
candidates must fail, sub-noise stages must be skipped, and
cross-machine records must be refused unless explicitly allowed.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.manifest import MANIFEST_FORMAT
from repro.obs.regress import (
    DEFAULT_MAX_REGRESSION,
    VERDICT_FORMAT,
    compare_samples,
    load_sample,
    sample_from_dict,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

ENV = {"hostname": "box-a", "platform": "Linux-6.1-x86_64", "cpu_count": 8}


def _manifest(*, stages=None, env=ENV, projects=12, jobs=2,
              warning_count=0, hit_rate=0.5, store_hit_rate=None,
              store=None):
    manifest = {
        "format": MANIFEST_FORMAT,
        "projects": projects,
        "jobs": jobs,
        "warning_count": warning_count,
        "environment": dict(env) if env else None,
        "timings": {
            "jobs": jobs,
            "stages": dict(stages or {
                "generate": 1.0, "mine": 4.0, "analyze": 0.5, "total": 6.0,
            }),
            "parse_cache": {"hit_rate": hit_rate, "hits": 50, "misses": 50},
        },
    }
    if store is not None:
        manifest["timings"]["artifact_store"] = dict(store)
    elif store_hit_rate is not None:
        manifest["timings"]["artifact_store"] = {
            "hit_rate": store_hit_rate, "hits": 3, "recomputes": 0,
            "stages": {},
        }
    return manifest


#: An artifact-store block from a run that never looked up a key — an
#: empty corpus, or a code path that resolved nothing.  Its 0.0 rate is
#: vacuous, not "everything recomputed".
ZERO_LOOKUP_STORE = {"hit_rate": 0.0, "hits": 0, "recomputes": 0,
                     "stages": {}}


def _bench(*, stages=None, projects=195, jobs=1):
    return {
        "benchmark": "canonical_study",
        "projects": projects,
        "jobs": jobs,
        "stages": dict(stages or {"generate": 2.0, "mine": 8.0,
                                  "total": 11.0}),
        "parse_cache": {"hit_rate": 0.4},
    }


def _slowed(data, factor):
    slow = json.loads(json.dumps(data))
    block = slow["timings"]["stages"] if "timings" in slow else slow["stages"]
    for stage in block:
        block[stage] *= factor
    return slow


class TestSampleNormalisation:
    def test_manifest_kind(self):
        sample = sample_from_dict(_manifest(), source="m.json")
        assert sample.kind == "manifest"
        assert sample.projects == 12
        assert sample.jobs == 2
        assert sample.stages["mine"] == 4.0
        assert sample.hit_rate == 0.5
        assert sample.environment == ENV

    def test_bench_kind(self):
        sample = sample_from_dict(_bench(), source="b.json")
        assert sample.kind == "bench"
        assert sample.projects == 195
        assert sample.stages["mine"] == 8.0
        assert sample.environment is None

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="neither a run manifest"):
            sample_from_dict({"hello": "world"}, source="x.json")
        with pytest.raises(ValueError, match="not a JSON object"):
            sample_from_dict([1, 2, 3], source="x.json")

    def test_load_sample_from_disk(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(_manifest()))
        assert load_sample(path).kind == "manifest"

    def test_load_sample_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_sample(path)


class TestCompareSamples:
    def _cmp(self, baseline, candidate, **kwargs):
        return compare_samples(
            sample_from_dict(baseline, source="baseline"),
            sample_from_dict(candidate, source="candidate"),
            **kwargs,
        )

    def test_self_comparison_passes(self):
        report = self._cmp(_manifest(), _manifest())
        assert not report.failed
        assert report.verdict == "pass"
        by_name = {c.name: c for c in report.checks}
        assert by_name["environment"].status == "pass"
        assert by_name["stage:mine"].status == "pass"
        assert by_name["stage:mine"].ratio == 0.0

    def test_slowed_candidate_fails(self):
        report = self._cmp(_manifest(), _slowed(_manifest(), 2.0))
        assert report.failed
        failing = [c.name for c in report.checks if c.status == "fail"]
        assert "stage:mine" in failing
        mine = next(c for c in report.checks if c.name == "stage:mine")
        assert mine.ratio == pytest.approx(1.0)
        assert mine.threshold == DEFAULT_MAX_REGRESSION

    def test_within_threshold_passes(self):
        assert not self._cmp(_manifest(), _slowed(_manifest(), 1.2)).failed

    def test_max_regression_override(self):
        report = self._cmp(_manifest(), _slowed(_manifest(), 1.2),
                           max_regression=0.10)
        assert report.failed

    def test_per_stage_threshold_override(self):
        baseline = _manifest()
        candidate = _manifest(stages={"generate": 1.0, "mine": 6.0,
                                      "analyze": 0.5, "total": 8.0})
        strict = self._cmp(baseline, candidate)
        assert strict.failed  # mine +50% over the default 25%
        relaxed = self._cmp(baseline, candidate,
                            stage_thresholds={"mine": 0.6, "total": 0.6})
        assert not relaxed.failed

    def test_noise_floor_skips_tiny_stages(self):
        baseline = _manifest(stages={"figures": 0.001, "mine": 4.0})
        candidate = _manifest(stages={"figures": 0.04, "mine": 4.0})
        report = self._cmp(baseline, candidate)
        figures = next(c for c in report.checks if c.name == "stage:figures")
        assert figures.status == "skip"  # 40x slower, but all noise
        assert not report.failed

    def test_stage_missing_from_one_side_is_skipped(self):
        baseline = _manifest(stages={"mine": 4.0, "figures": 1.0})
        candidate = _manifest(stages={"mine": 4.0, "render": 1.0})
        report = self._cmp(baseline, candidate)
        statuses = {c.name: c.status for c in report.checks}
        assert statuses["stage:figures"] == "skip"
        assert statuses["stage:render"] == "skip"
        assert not report.failed

    def test_environment_mismatch_refuses(self):
        other = dict(ENV, hostname="box-b")
        report = self._cmp(_manifest(), _manifest(env=other))
        env = next(c for c in report.checks if c.name == "environment")
        assert env.status == "fail"
        assert "apples-to-oranges" in env.message
        assert "--allow-env-mismatch" in env.message
        assert report.failed

    def test_environment_mismatch_allowed_warns(self):
        other = dict(ENV, cpu_count=4)
        report = self._cmp(_manifest(), _manifest(env=other),
                           allow_env_mismatch=True)
        env = next(c for c in report.checks if c.name == "environment")
        assert env.status == "warn"
        assert not report.failed

    def test_missing_environment_skips_the_guard(self):
        report = self._cmp(_manifest(env=None), _manifest())
        env = next(c for c in report.checks if c.name == "environment")
        assert env.status == "skip"
        assert not report.failed

    def test_projects_mismatch_fails(self):
        report = self._cmp(_manifest(projects=12), _manifest(projects=195))
        projects = next(c for c in report.checks if c.name == "projects")
        assert projects.status == "fail"
        assert "not comparable" in projects.message

    def test_jobs_mismatch_only_warns(self):
        report = self._cmp(_manifest(jobs=1), _manifest(jobs=4))
        jobs = next(c for c in report.checks if c.name == "jobs")
        assert jobs.status == "warn"
        assert not report.failed

    def test_hit_rate_drop_fails(self):
        report = self._cmp(_manifest(hit_rate=0.9), _manifest(hit_rate=0.5))
        cache = next(c for c in report.checks if c.name == "cache_hit_rate")
        assert cache.status == "fail"
        assert report.failed

    def test_small_hit_rate_drop_tolerated(self):
        report = self._cmp(_manifest(hit_rate=0.9), _manifest(hit_rate=0.85))
        cache = next(c for c in report.checks if c.name == "cache_hit_rate")
        assert cache.status == "pass"

    def test_store_hit_rate_drop_fails(self):
        # a warm rerun that starts recomputing previously-replayed
        # stages is a regression even if each recompute is fast
        report = self._cmp(_manifest(store_hit_rate=1.0),
                           _manifest(store_hit_rate=0.4))
        store = next(c for c in report.checks if c.name == "store_hit_rate")
        assert store.status == "fail"
        assert report.failed

    def test_small_store_hit_rate_drop_tolerated(self):
        report = self._cmp(_manifest(store_hit_rate=1.0),
                           _manifest(store_hit_rate=0.97))
        store = next(c for c in report.checks if c.name == "store_hit_rate")
        assert store.status == "pass"

    def test_zero_lookup_candidate_skips_instead_of_failing(self):
        # a 0/0 store block used to read as a 100% -> 0% hit-rate crash;
        # with no lookups there is nothing to compare, so it skips
        report = self._cmp(_manifest(store_hit_rate=1.0),
                           _manifest(store=ZERO_LOOKUP_STORE))
        store = next(c for c in report.checks if c.name == "store_hit_rate")
        assert store.status == "skip"
        assert "zero lookups" in store.message
        assert not report.failed

    def test_zero_lookup_baseline_skips_too(self):
        report = self._cmp(_manifest(store=ZERO_LOOKUP_STORE),
                           _manifest(store_hit_rate=1.0))
        store = next(c for c in report.checks if c.name == "store_hit_rate")
        assert store.status == "skip"
        assert not report.failed

    def test_zero_lookups_on_both_sides_drops_the_check(self):
        report = self._cmp(_manifest(store=ZERO_LOOKUP_STORE),
                           _manifest(store=ZERO_LOOKUP_STORE))
        assert all(c.name != "store_hit_rate" for c in report.checks)
        assert not report.failed

    def test_store_stats_on_one_side_only_skips(self):
        report = self._cmp(_manifest(store_hit_rate=1.0), _manifest())
        store = next(c for c in report.checks if c.name == "store_hit_rate")
        assert store.status == "skip"
        assert not report.failed

    def test_no_store_stats_means_no_store_check(self):
        # fused-engine records never resolved the store; their check
        # list keeps its historical shape
        report = self._cmp(_manifest(), _manifest())
        assert all(c.name != "store_hit_rate" for c in report.checks)

    def test_warning_increase_fails_unless_allowed(self):
        baseline = _manifest(warning_count=2)
        candidate = _manifest(warning_count=5)
        assert self._cmp(baseline, candidate).failed
        assert not self._cmp(baseline, candidate,
                             allow_warnings=True).failed
        # fewer warnings is never a failure
        assert not self._cmp(candidate, baseline).failed

    def test_mixed_manifest_vs_bench(self):
        report = self._cmp(_bench(projects=12, jobs=2), _manifest())
        # bench carries no environment or warnings -> those skip;
        # shared stages compare normally (8.0 -> 4.0 is a speedup)
        statuses = {c.name: c.status for c in report.checks}
        assert statuses["environment"] == "skip"
        assert statuses["warnings"] == "skip"
        assert statuses["stage:mine"] == "pass"
        assert statuses["stage:analyze"] == "skip"  # bench never timed it
        assert not report.failed

    def test_stage_focus_ignores_other_stages(self):
        slow = _manifest(stages={
            "generate": 9.0, "mine": 4.0, "analyze": 0.5, "total": 14.0,
        })
        assert self._cmp(_manifest(), slow).failed
        report = self._cmp(_manifest(), slow, stage="mine")
        assert not report.failed
        stage_checks = [c.name for c in report.checks
                        if c.name.startswith("stage:")]
        assert stage_checks == ["stage:mine"]

    def test_stage_focus_missing_from_both_sides_fails(self):
        report = self._cmp(_manifest(), _manifest(), stage="figures")
        focused = next(c for c in report.checks if c.name == "stage:figures")
        assert focused.status == "fail"
        assert report.failed

    def test_stage_focus_missing_from_one_side_skips(self):
        with_extra = _manifest(stages={
            "generate": 1.0, "mine": 4.0, "figures": 0.4, "total": 6.0,
        })
        report = self._cmp(_manifest(), with_extra, stage="figures")
        focused = next(c for c in report.checks if c.name == "stage:figures")
        assert focused.status == "skip"
        assert not report.failed

    def _with_statements(self, manifest, reuse_rate, *, unit_hits=100,
                         unit_misses=10):
        manifest = json.loads(json.dumps(manifest))
        manifest["timings"]["parse_cache"]["statements"] = {
            "hits": 30, "misses": 5, "fallback_parses": 0,
            "unit_hits": unit_hits, "unit_misses": unit_misses,
            "reuse_rate": reuse_rate,
        }
        return manifest

    def test_statement_reuse_drop_fails(self):
        baseline = self._with_statements(_manifest(), 0.95)
        candidate = self._with_statements(_manifest(), 0.40)
        report = self._cmp(baseline, candidate)
        reuse = next(c for c in report.checks if c.name == "statement_reuse")
        assert reuse.status == "fail"
        assert report.failed

    def test_small_statement_reuse_drop_tolerated(self):
        baseline = self._with_statements(_manifest(), 0.95)
        candidate = self._with_statements(_manifest(), 0.90)
        report = self._cmp(baseline, candidate)
        reuse = next(c for c in report.checks if c.name == "statement_reuse")
        assert reuse.status == "pass"
        assert not report.failed

    def test_pre_incremental_baseline_skips_reuse_check(self):
        # records written before the incremental engine carry no
        # statements block — mirror the store_hit_rate None pattern
        report = self._cmp(_manifest(),
                           self._with_statements(_manifest(), 0.95))
        reuse = next(c for c in report.checks if c.name == "statement_reuse")
        assert reuse.status == "skip"
        assert not report.failed

    def test_zero_unit_lookups_skip_reuse_check(self):
        baseline = self._with_statements(_manifest(), 0.95)
        candidate = self._with_statements(_manifest(), 0.0,
                                          unit_hits=0, unit_misses=0)
        report = self._cmp(baseline, candidate)
        reuse = next(c for c in report.checks if c.name == "statement_reuse")
        assert reuse.status == "skip"
        assert not report.failed

    def test_no_statements_on_either_side_drops_the_check(self):
        report = self._cmp(_manifest(), _manifest())
        assert all(c.name != "statement_reuse" for c in report.checks)

    def test_report_shapes(self):
        report = self._cmp(_manifest(), _slowed(_manifest(), 2.0))
        verdict = report.as_dict()
        assert verdict["format"] == VERDICT_FORMAT
        assert verdict["verdict"] == "fail"
        assert verdict["baseline"] == "baseline"
        assert all(set(c) >= {"name", "status"} for c in verdict["checks"])
        assert json.loads(json.dumps(verdict)) == verdict
        rendered = report.render()
        assert rendered.splitlines()[-1] == "verdict: FAIL"
        assert "stage:mine" in rendered


class TestBenchCheckCommand:
    @pytest.fixture()
    def records(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_manifest()))
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(_slowed(_manifest(), 2.0)))
        return base, slow

    def test_self_comparison_exits_zero(self, records, capsys):
        base, _ = records
        assert main(["bench-check", str(base), str(base)]) == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_slowed_candidate_exits_one(self, records, capsys):
        base, slow = records
        assert main(["bench-check", str(base), str(slow)]) == 1
        assert "verdict: FAIL" in capsys.readouterr().out

    def test_report_only_never_fails(self, records, capsys):
        base, slow = records
        assert main(["bench-check", str(base), str(slow),
                     "--report-only"]) == 0
        assert "verdict: FAIL" in capsys.readouterr().out

    def test_json_verdict_written(self, records, tmp_path):
        base, slow = records
        out = tmp_path / "verdict.json"
        assert main(["bench-check", str(base), str(slow),
                     "--report-only", "--json", str(out)]) == 0
        verdict = json.loads(out.read_text())
        assert verdict["format"] == VERDICT_FORMAT
        assert verdict["verdict"] == "fail"

    def test_threshold_flags(self, records):
        base, slow = records
        # everything doubled: +100% — pass only with a generous limit
        assert main(["bench-check", str(base), str(slow),
                     "--max-regression", "1.5"]) == 0
        assert main(["bench-check", str(base), str(slow),
                     "--max-regression", "1.5",
                     "--threshold", "mine=0.5"]) == 1

    def test_stage_focus_flag(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_manifest()))
        slow_generate = tmp_path / "slow_generate.json"
        slow_generate.write_text(json.dumps(_manifest(stages={
            "generate": 9.0, "mine": 4.0, "analyze": 0.5, "total": 14.0,
        })))
        assert main(["bench-check", str(base), str(slow_generate)]) == 1
        capsys.readouterr()  # drain the unfocused run's output
        assert main(["bench-check", str(base), str(slow_generate),
                     "--stage", "mine"]) == 0
        out = capsys.readouterr().out
        assert "stage:mine" in out
        assert "stage:generate" not in out

    def test_bad_threshold_spec_exits_two(self, records, capsys):
        base, _ = records
        assert main(["bench-check", str(base), str(base),
                     "--threshold", "minefast"]) == 2
        assert "STAGE=FRACTION" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["bench-check", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 2
        assert "bench-check:" in capsys.readouterr().err

    def test_garbage_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{broken")
        assert main(["bench-check", str(path), str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_allow_env_mismatch_flag(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_manifest()))
        other = tmp_path / "other.json"
        other.write_text(json.dumps(
            _manifest(env=dict(ENV, hostname="box-b"))
        ))
        assert main(["bench-check", str(base), str(other)]) == 1
        assert main(["bench-check", str(base), str(other),
                     "--allow-env-mismatch"]) == 0

    def test_committed_bench_record_self_compares_clean(self, capsys):
        bench = REPO_ROOT / "BENCH_study.json"
        assert bench.exists(), "BENCH_study.json missing from the repo root"
        assert main(["bench-check", str(bench), str(bench)]) == 0
        assert "verdict: PASS" in capsys.readouterr().out


def _check_by_name(report, name):
    return next((c for c in report.checks if c.name == name), None)


class TestStreamingCounterTolerance:
    """History and bench comparisons across the streaming format bump.

    Records written before the streaming engine carry no ``streaming``
    block, no ``resources`` telemetry, and sometimes no corpus size —
    every derived check (peak RSS per project, the streaming counters
    themselves) must None-skip against them instead of failing, so an
    old baseline stays usable.
    """

    def _with_telemetry(self, *, projects=200, peak=100 * 2**20,
                        streaming=True):
        manifest = _manifest(projects=projects)
        manifest["timings"]["resources"] = {
            "peak_rss_bytes": peak,
            "scopes": {"driver": {"peak_rss_bytes": peak,
                                  "cpu_seconds": 1.0}},
        }
        if streaming:
            manifest["timings"]["streaming"] = {
                "window": {"initial": 2, "final": 2, "submitted": projects,
                           "completed": projects, "max_in_flight": 2,
                           "shrinks": 0},
            }
        return manifest

    def test_sample_normalises_streaming_from_both_shapes(self):
        manifest = sample_from_dict(self._with_telemetry())
        assert manifest.streaming is not None
        assert manifest.rss_per_project == pytest.approx(
            100 * 2**20 / 200
        )
        bench = sample_from_dict({
            "stages": {"total": 1.0},
            "projects": 100,
            "resources": {"peak_rss_bytes": 50 * 2**20},
            "streaming": {"window": {"submitted": 100}},
        })
        assert bench.kind == "bench"
        assert bench.streaming == {"window": {"submitted": 100}}
        assert bench.rss_per_project == pytest.approx(50 * 2**20 / 100)

    def test_pre_streaming_record_none_skips_rss_per_project(self):
        old = sample_from_dict(_manifest(projects=200))  # no telemetry
        new = sample_from_dict(self._with_telemetry())
        assert old.streaming is None
        assert old.rss_per_project is None
        report = compare_samples(old, new)
        check = _check_by_name(report, "rss_per_project")
        assert check is not None and check.status == "skip"
        assert "pre-streaming" in check.message
        assert not report.failed

    def test_rss_per_project_regression_fails(self):
        base = sample_from_dict(self._with_telemetry(peak=100 * 2**20))
        worse = sample_from_dict(self._with_telemetry(peak=150 * 2**20))
        report = compare_samples(base, worse)
        check = _check_by_name(report, "rss_per_project")
        assert check is not None and check.status == "fail"
        assert compare_samples(base, base).failed is False

    def test_missing_corpus_size_none_skips(self):
        sized = sample_from_dict(self._with_telemetry())
        unsized = self._with_telemetry()
        del unsized["projects"]
        unsized_sample = sample_from_dict(unsized)
        assert unsized_sample.rss_per_project is None
        report = compare_samples(sized, unsized_sample)
        check = _check_by_name(report, "rss_per_project")
        assert check is not None and check.status == "skip"
        # peak_rss itself still compares: both sides carry telemetry
        peak = _check_by_name(report, "peak_rss")
        assert peak is not None and peak.status == "pass"

    def test_history_median_tolerates_mixed_records(self):
        """A registry mixing pre- and post-streaming records folds."""
        from repro.obs.registry import history_baseline

        old_record = {
            "format": "repro-run-registry-v1",
            "run_id": "aaa", "recorded_at": 1.0, "projects": 200,
            "jobs": 2, "warning_count": 0, "environment": dict(ENV),
            "stages": {"mine": 4.0, "total": 6.0},
            "parse_cache": {"hit_rate": 0.5},
        }
        new_record = {
            **old_record,
            "run_id": "bbb", "recorded_at": 2.0,
            "resources": {"peak_rss_bytes": 100 * 2**20},
            "streaming": {
                "window": {"submitted": 200, "max_in_flight": 2},
            },
        }
        baseline = history_baseline([old_record, new_record])
        sample = sample_from_dict(baseline, source="history")
        assert sample.streaming == new_record["streaming"]
        candidate = sample_from_dict(self._with_telemetry())
        report = compare_samples(sample, candidate)
        names = {c.name: c.status for c in report.checks}
        assert names.get("rss_per_project") in ("pass", "skip")
        assert not report.failed
