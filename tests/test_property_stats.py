"""Property-based tests for the statistical substrate."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.coevolution import cross_correlation
from repro.heartbeat import Heartbeat, Month
from repro.stats import (
    Observation,
    bootstrap,
    kaplan_meier,
    median,
    rank_with_ties,
    share_interval,
)


@st.composite
def observation_sets(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    return [
        Observation(
            time=draw(st.floats(min_value=0, max_value=100,
                                allow_nan=False)),
            event=draw(st.booleans()),
        )
        for _ in range(n)
    ]


class TestKaplanMeierProperties:
    @settings(max_examples=80, deadline=None)
    @given(observation_sets())
    def test_survival_is_a_valid_step_function(self, observations):
        curve = kaplan_meier(observations)
        values = [p.survival for p in curve.points]
        assert all(0 <= v <= 1 + 1e-12 for v in values)
        assert values == sorted(values, reverse=True)

    @settings(max_examples=80, deadline=None)
    @given(observation_sets())
    def test_survival_at_is_monotone_nonincreasing(self, observations):
        curve = kaplan_meier(observations)
        probes = [0, 1, 5, 20, 50, 100, 1000]
        sampled = [curve.survival_at(t) for t in probes]
        assert sampled == sorted(sampled, reverse=True)
        assert curve.survival_at(-1) == 1.0

    @settings(max_examples=50, deadline=None)
    @given(observation_sets())
    def test_all_events_drive_survival_to_zero(self, observations):
        forced = [Observation(o.time, True) for o in observations]
        curve = kaplan_meier(forced)
        latest = max(o.time for o in forced)
        assert curve.survival_at(latest) == 0.0


class TestBootstrapProperties:
    flags = st.lists(st.booleans(), min_size=2, max_size=100)

    @settings(max_examples=50, deadline=None)
    @given(flags)
    def test_interval_brackets_estimate(self, flags):
        interval = share_interval(flags, replicates=200)
        assert interval.low <= interval.estimate <= interval.high
        assert 0 <= interval.low
        assert interval.high <= 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=60,
        )
    )
    def test_median_interval_within_sample_range(self, values):
        interval = bootstrap(values, median, replicates=200)
        assert min(values) <= interval.low
        assert interval.high <= max(values)


class TestCrossCorrelationProperties:
    series = st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        min_size=4,
        max_size=30,
    )

    @settings(max_examples=60, deadline=None)
    @given(series, series, st.integers(min_value=0, max_value=5))
    def test_correlations_bounded(self, a, b, max_lag):
        n = max(len(a), len(b))
        hb_a = Heartbeat(Month(2019, 1), a + [0.0] * (n - len(a)))
        hb_b = Heartbeat(Month(2019, 1), b + [0.0] * (n - len(b)))
        profile = cross_correlation(hb_a, hb_b, max_lag=max_lag)
        assert all(-1 - 1e-9 <= c <= 1 + 1e-9 for c in profile.correlations)
        assert len(profile.lags) == 2 * max_lag + 1

    @settings(max_examples=60, deadline=None)
    @given(series, series)
    def test_mirror_symmetry(self, a, b):
        """corr(a, b) at lag k equals corr(b, a) at lag -k."""
        n = max(len(a), len(b))
        hb_a = Heartbeat(Month(2019, 1), a + [0.0] * (n - len(a)))
        hb_b = Heartbeat(Month(2019, 1), b + [0.0] * (n - len(b)))
        forward = cross_correlation(hb_a, hb_b, max_lag=3)
        backward = cross_correlation(hb_b, hb_a, max_lag=3)
        for lag in forward.lags:
            assert math.isclose(
                forward.correlation_at(lag),
                backward.correlation_at(-lag),
                abs_tol=1e-9,
            )


class TestRankProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_rank_sum_invariant(self, values):
        """Average ranks always sum to n(n+1)/2, ties or not."""
        ranks = rank_with_ties(values)
        n = len(values)
        assert sum(ranks) == (n * (n + 1)) / 2

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_ranks_respect_order(self, values):
        ranks = rank_with_ties(values)
        for i in range(len(values)):
            for j in range(len(values)):
                if values[i] < values[j]:
                    assert ranks[i] < ranks[j]
                elif values[i] == values[j]:
                    assert ranks[i] == ranks[j]
