"""The observability HTTP server: endpoints, SSE framing, shutdown."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.obs.bus import get_bus, reset_bus
from repro.obs.export import validate_prometheus_text
from repro.obs.metrics import reset_metrics
from repro.obs.registry import RunRegistry
from repro.obs.server import ObservabilityServer
from repro.obs.top import sse_events
from repro.pipeline.store import configure_store


@pytest.fixture(autouse=True)
def _isolated_global_state():
    reset_bus()
    reset_metrics()
    yield
    configure_store(None)
    reset_bus()
    reset_metrics()


@pytest.fixture
def server():
    srv = ObservabilityServer(port=0).start()
    yield srv
    srv.stop()


def _get(server, path, timeout=10, headers=None):
    request = urllib.request.Request(server.url + path)
    for name, value in (headers or {}).items():
        request.add_header(name, value)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read().decode()


def _get_json(server, path, **kw):
    status, body = _get(server, path, **kw)
    return status, json.loads(body)


class TestHealthz:
    def test_reports_liveness(self, server):
        status, body = _get_json(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["version"]
        assert body["uptime_seconds"] >= 0
        assert body["bus"]["ring_capacity"] > 0

    def test_unknown_route_is_404_with_route_list(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404
        assert "/healthz" in json.loads(err.value.read().decode())["routes"]


class TestMetrics:
    def test_page_passes_the_exposition_grammar(self, server):
        from repro.obs.metrics import get_metrics

        get_metrics().inc("projects.mined", 3)
        get_metrics().observe("stage.seconds", 0.5)
        status, page = _get(server, "/metrics")
        assert status == 200
        assert validate_prometheus_text(page) == []
        assert "repro_projects_mined_total 3" in page

    def test_bus_drop_counter_is_exposed(self, server):
        bus = get_bus()
        sub = bus.subscribe(capacity=2)
        for n in range(6):
            bus.publish("span", {"n": n})
        _, page = _get(server, "/metrics")
        assert "repro_bus_dropped_total 4" in page
        assert "repro_bus_published_total 6" in page
        sub.close()

    def test_server_counters_never_touch_the_global_registry(self, server):
        from repro.obs.metrics import get_metrics

        _get(server, "/healthz")
        _get(server, "/metrics")
        snapshot = get_metrics().snapshot().as_dict()
        assert not any(
            name.startswith(("bus.", "server."))
            for name in snapshot["counters"]
        )


class TestEvents:
    def test_sse_framing_ids_and_kinds(self, server):
        bus = get_bus()
        for n in range(4):
            bus.publish("progress", {"done": n})
        status, body = _get(server, "/events?limit=4")
        assert status == 200
        lines = body.splitlines()
        assert lines[0] == "id: 1"
        assert lines[1] == "event: progress"
        assert lines[2].startswith("data: ")
        envelopes = list(sse_events(body.splitlines(keepends=True)))
        assert [e["id"] for e in envelopes] == [1, 2, 3, 4]
        assert all(e["kind"] == "progress" for e in envelopes)
        assert [e["data"]["done"] for e in envelopes] == [0, 1, 2, 3]

    def test_last_event_id_replays_the_same_ordered_sequence(self, server):
        bus = get_bus()
        for n in range(6):
            bus.publish("span", {"n": n})
        _, from_start = _get(server, "/events?limit=6")
        full = [e["id"] for e in sse_events(from_start.splitlines(True))]
        assert full == [1, 2, 3, 4, 5, 6]
        # a reconnect with Last-Event-ID resumes exactly after the id
        _, resumed = _get(
            server, "/events?limit=3", headers={"Last-Event-ID": "3"}
        )
        tail = [e["id"] for e in sse_events(resumed.splitlines(True))]
        assert tail == full[3:]

    def test_replay_is_bounded_by_the_ring(self):
        reset_bus()
        import repro.obs.bus as bus_mod

        bus = bus_mod.TelemetryBus(capacity=4)
        bus_mod._active = bus
        srv = ObservabilityServer(port=0).start()
        try:
            for n in range(10):
                bus.publish("span", {"n": n})
            _, body = _get(srv, "/events?limit=10")
            ids = [e["id"] for e in sse_events(body.splitlines(True))]
            # the documented horizon: only the last `capacity` replay
            assert ids == [7, 8, 9, 10]
        finally:
            srv.stop()

    def test_keepalive_comments_flow_while_idle(self, server, monkeypatch):
        import repro.obs.server as server_mod

        monkeypatch.setattr(server_mod, "SSE_KEEPALIVE_SECONDS", 0.05)
        request = urllib.request.Request(server.url + "/events")
        with urllib.request.urlopen(request, timeout=10) as response:
            line = response.readline()
            while line.strip() == b"":
                line = response.readline()
            assert line.strip() == b": keepalive"

    def test_live_publish_reaches_an_open_stream(self, server):
        bus = get_bus()
        request = urllib.request.Request(server.url + "/events?limit=1")
        with urllib.request.urlopen(request, timeout=10) as response:
            bus.publish("warning", {"code": "late"})
            body = response.read().decode()
        (envelope,) = sse_events(body.splitlines(True))
        assert envelope["kind"] == "warning"
        assert envelope["data"]["code"] == "late"
        assert server.events_served == 1


class TestRuns:
    def test_404_without_a_directory_store(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/runs")
        assert err.value.code == 404

    def test_lists_registry_records(self, tmp_path, server):
        configure_store(tmp_path / "store")
        registry = RunRegistry(tmp_path / "store")
        registry.append({"run_id": "abc123", "stages": {"total": 1.0}})
        registry.append({"run_id": "def456", "stages": {"total": 2.0}})
        _, body = _get_json(server, "/runs")
        assert body["count"] == 2
        assert [r["run_id"] for r in body["records"]] == [
            "abc123", "def456",
        ]
        _, tail = _get_json(server, "/runs?limit=1")
        assert [r["run_id"] for r in tail["records"]] == ["def456"]

    def test_fetch_one_run_by_prefix(self, tmp_path, server):
        configure_store(tmp_path / "store")
        registry = RunRegistry(tmp_path / "store")
        registry.append({"run_id": "abc123", "stages": {}})
        _, record = _get_json(server, "/runs/abc")
        assert record["run_id"] == "abc123"
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/runs/zzz")
        assert err.value.code == 404


class TestStatus:
    def test_without_a_pipeline_factory(self, server):
        _, body = _get_json(server, "/status")
        assert body["stages"] == []
        assert "error" in body

    def test_stage_states_via_provenance(self, tmp_path):
        from repro.pipeline.graph import Pipeline

        configure_store(tmp_path / "store")
        srv = ObservabilityServer(
            port=0,
            pipeline_factory=lambda: Pipeline(seed=77, scale=32),
        ).start()
        try:
            _, cold = _get_json(srv, "/status")
            states = {row["stage"]: row["state"] for row in cold["stages"]}
            assert states["generate"] == "cold"
            assert states["report"] == "cold"
            Pipeline(seed=77, scale=32).study()
            _, warm = _get_json(srv, "/status")
            states = {row["stage"]: row["state"] for row in warm["stages"]}
            # study() materialises everything but the rendered report
            assert states.pop("report") == "cold"
            assert set(states.values()) == {"warm"}
            assert warm["drift"] == []
            assert warm["store"]["kind"] == "dir"
        finally:
            srv.stop()


class TestLifecycle:
    def test_ephemeral_port_resolves_and_summary_counts(self, server):
        assert server.port > 0
        assert str(server.port) in server.url
        _get(server, "/healthz")
        _get(server, "/healthz")
        summary = server.summary()
        assert summary["requests"] == 2
        assert summary["paths"] == {"/healthz": 2}
        assert summary["url"] == server.url

    def test_clean_shutdown_refuses_new_connections(self):
        srv = ObservabilityServer(port=0).start()
        port = srv.port
        _get(srv, "/healthz")
        srv.stop()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5)

    def test_stop_is_idempotent(self):
        srv = ObservabilityServer(port=0).start()
        srv.stop()
        srv.stop()

    def test_concurrent_stop_and_linger_wait(self):
        import threading

        srv = ObservabilityServer(port=0).start()
        waiter = threading.Thread(target=srv.wait, daemon=True)
        waiter.start()
        # wait() calls stop() on wake; racing it against a direct
        # stop() must not blow up on a half-torn-down httpd
        srv.stop()
        waiter.join(timeout=10)
        assert not waiter.is_alive()

    def test_forked_worker_hygiene_closes_inherited_sockets(self):
        from repro.obs.server import close_inherited_sockets

        srv = ObservabilityServer(port=0).start()
        try:
            # in a forked pool worker this module state is a fork-time
            # copy; calling the hook there closes the inherited fd
            assert close_inherited_sockets() == 1
        finally:
            srv.stop()
        assert close_inherited_sockets() == 0
