"""Unit tests for the repository mining pipeline."""

import pytest

from repro.diff import ChangeKind
from repro.heartbeat import Month
from repro.mining import (
    MiningError,
    SchemaHistory,
    find_ddl_path,
    mine_project,
    mine_project_activity,
    mine_schema_history,
)
from repro.vcs import (
    Commit,
    FileChange,
    FileVersion,
    Repository,
    synthetic_sha,
    utc,
)

V1 = "CREATE TABLE users (id INT, name VARCHAR(40));"
V2 = (
    "CREATE TABLE users (id INT, name VARCHAR(40), email TEXT);"
    "CREATE TABLE posts (pid INT);"
)
V3 = "-- cosmetic only\n" + V2


def make_repo(*, ddl_path="schema.sql"):
    repo = Repository(name="demo/project")
    dates = [utc(2020, 1, 5), utc(2020, 2, 10), utc(2020, 4, 2)]
    contents = [V1, V2, V3]
    for i, (date, content) in enumerate(zip(dates, contents)):
        sha = synthetic_sha("demo", i)
        changes = [FileChange("M" if i else "A", ddl_path)]
        if i == 0:
            changes += [
                FileChange("A", "src/app.js"),
                FileChange("A", "src/db.js"),
            ]
        else:
            changes.append(FileChange("M", "src/db.js"))
        repo.add_commit(
            Commit(sha, "Dev", "dev@x", date, f"commit {i}", changes)
        )
        repo.record_version(ddl_path, FileVersion(sha, date, content))
    # one pure-source commit in month 3
    repo.add_commit(
        Commit(
            synthetic_sha("demo", 9),
            "Dev",
            "dev@x",
            utc(2020, 4, 20),
            "fix",
            [FileChange("M", "src/app.js")],
        )
    )
    return repo


class TestSchemaHistory:
    def test_versions_and_transitions(self):
        history = SchemaHistory.from_file_versions(
            make_repo().versions_of("schema.sql")
        )
        assert history.commit_count == 3
        assert len(history.transitions) == 3

    def test_initial_transition_counts_births(self):
        history = SchemaHistory.from_file_versions(
            make_repo().versions_of("schema.sql")
        )
        initial = history.transitions[0]
        assert initial.activity == 2  # users(id, name)
        assert all(
            c.kind is ChangeKind.BORN_WITH_TABLE for c in initial.delta
        )

    def test_second_transition_measures_change(self):
        history = SchemaHistory.from_file_versions(
            make_repo().versions_of("schema.sql")
        )
        assert history.transitions[1].activity == 2  # email + posts.pid

    def test_cosmetic_transition_is_inactive(self):
        history = SchemaHistory.from_file_versions(
            make_repo().versions_of("schema.sql")
        )
        assert not history.transitions[2].is_active
        assert history.active_commit_count == 2

    def test_total_activity(self):
        history = SchemaHistory.from_file_versions(
            make_repo().versions_of("schema.sql")
        )
        assert history.total_activity == 4

    def test_activity_events_dates(self):
        history = SchemaHistory.from_file_versions(
            make_repo().versions_of("schema.sql")
        )
        events = history.activity_events()
        assert [amount for _, amount in events] == [2.0, 2.0, 0.0]

    def test_empty_versions_rejected(self):
        with pytest.raises(ValueError):
            SchemaHistory.from_file_versions([])

    def test_has_create_table(self):
        history = SchemaHistory.from_file_versions(
            [FileVersion("a", utc(2020, 1), "-- nothing")]
        )
        assert not history.has_create_table

    def test_final_schema(self):
        history = SchemaHistory.from_file_versions(
            make_repo().versions_of("schema.sql")
        )
        assert "posts" in history.final_schema


class TestProjectActivity:
    def test_monthly_file_updates(self):
        heartbeat = mine_project_activity(make_repo())
        assert heartbeat.start == Month(2020, 1)
        # Jan: 3 files, Feb: 2, Mar: 0, Apr: 2 + 1
        assert heartbeat.values == [3.0, 2.0, 0.0, 3.0]

    def test_empty_repo_rejected(self):
        with pytest.raises(MiningError):
            mine_project_activity(Repository(name="empty"))


class TestFindDdlPath:
    def test_recorded_path_wins(self):
        assert find_ddl_path(make_repo()) == "schema.sql"

    def test_most_touched_sql_fallback(self):
        repo = Repository(name="x")
        repo.add_commit(
            Commit(
                synthetic_sha(1), "D", "d@x", utc(2020, 1),
                "c", [FileChange("A", "db/schema.sql"),
                      FileChange("A", "other.sql")],
            )
        )
        repo.add_commit(
            Commit(
                synthetic_sha(2), "D", "d@x", utc(2020, 2),
                "c", [FileChange("M", "db/schema.sql")],
            )
        )
        assert find_ddl_path(repo) == "db/schema.sql"

    def test_no_sql_file_raises(self):
        repo = Repository(name="x")
        repo.add_commit(
            Commit(
                synthetic_sha(1), "D", "d@x", utc(2020, 1),
                "c", [FileChange("A", "main.py")],
            )
        )
        with pytest.raises(MiningError):
            find_ddl_path(repo)

    def test_multiple_recorded_ddl_files_raise(self):
        repo = make_repo()
        repo.record_version(
            "other.sql", FileVersion("z", utc(2020, 5), "CREATE TABLE z(a INT);")
        )
        with pytest.raises(MiningError):
            find_ddl_path(repo)

    def test_equal_touch_tie_break_is_lexicographic(self):
        """Equally-touched .sql paths resolve to the greatest path."""

        def build(first: str, second: str) -> Repository:
            repo = Repository(name="x")
            repo.add_commit(
                Commit(
                    synthetic_sha(1), "D", "d@x", utc(2020, 1),
                    "c", [FileChange("A", first), FileChange("A", second)],
                )
            )
            return repo

        assert find_ddl_path(build("a.sql", "b.sql")) == "b.sql"
        # insertion order must not matter
        assert find_ddl_path(build("b.sql", "a.sql")) == "b.sql"

    def test_touch_count_beats_path_order(self):
        """The tie-break only applies among equally-touched paths."""
        repo = Repository(name="x")
        repo.add_commit(
            Commit(
                synthetic_sha(1), "D", "d@x", utc(2020, 1),
                "c", [FileChange("A", "a.sql"), FileChange("A", "z.sql")],
            )
        )
        repo.add_commit(
            Commit(
                synthetic_sha(2), "D", "d@x", utc(2020, 2),
                "c", [FileChange("M", "a.sql")],
            )
        )
        assert find_ddl_path(repo) == "a.sql"


class TestMineProject:
    def test_full_pipeline(self):
        history = mine_project(make_repo())
        assert history.name == "demo/project"
        assert history.ddl_path == "schema.sql"
        assert history.schema_heartbeat.total == 4
        assert history.project_heartbeat.total == 8
        assert history.duration_months == 4

    def test_schema_heartbeat_alignment(self):
        history = mine_project(make_repo())
        # schema events in Jan (2), Feb (2), Apr (0 cosmetic)
        assert history.schema_heartbeat.start == Month(2020, 1)
        assert history.schema_heartbeat.values == [2.0, 2.0, 0.0, 0.0]

    def test_joint_progress(self):
        joint = mine_project(make_repo()).joint_progress()
        assert joint.n_points == 4
        assert joint.schema[-1] == pytest.approx(1.0)
        assert joint.schema[0] == pytest.approx(0.5)

    def test_missing_contents_raise(self):
        repo = make_repo()
        repo.file_contents.clear()
        with pytest.raises(MiningError):
            mine_schema_history(repo, "schema.sql")
