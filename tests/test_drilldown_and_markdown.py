"""Unit tests for drill-down summaries and the Markdown report."""

import pytest

from repro.analysis import (
    canonical_study,
    duration_band_summaries,
    taxon_summaries,
)
from repro.report import build_study_report, md_table
from repro.taxa import TAXA_ORDER, Taxon


@pytest.fixture(scope="module")
def study():
    return canonical_study()


class TestTaxonSummaries:
    def test_counts_partition_the_corpus(self, study):
        rows = taxon_summaries(study.projects)
        assert sum(r.count for r in rows) == len(study)

    def test_rows_in_canonical_order(self, study):
        rows = taxon_summaries(study.projects)
        order = [r.taxon for r in rows]
        canonical = [t for t in TAXA_ORDER if t in order]
        assert order == canonical

    def test_frozen_attains_earlier_than_active(self, study):
        rows = {r.taxon: r for r in taxon_summaries(study.projects)}
        assert (
            rows[Taxon.FROZEN].median_attainment75
            < rows[Taxon.ACTIVE].median_attainment75
        )

    def test_active_has_most_schema_activity(self, study):
        rows = {r.taxon: r for r in taxon_summaries(study.projects)}
        assert rows[Taxon.ACTIVE].median_schema_activity == max(
            r.median_schema_activity
            for r in taxon_summaries(study.projects)
        )

    def test_always_both_rate_bounded(self, study):
        for row in taxon_summaries(study.projects):
            assert 0 <= row.always_both_rate <= 1


class TestDurationBands:
    def test_bands_cover_all_projects(self, study):
        rows = duration_band_summaries(study.projects)
        assert sum(r.count for r in rows) == len(study)

    def test_labels(self, study):
        rows = duration_band_summaries(study.projects)
        assert rows[0].label == "0-24mo"
        assert rows[-1].label == ">60mo"

    def test_long_band_is_not_high_sync_heavy(self, study):
        rows = {r.label: r for r in duration_band_summaries(study.projects)}
        long_band = rows[">60mo"]
        assert long_band.count >= 10
        assert long_band.high_sync_rate <= 0.35

    def test_custom_bands(self, study):
        rows = duration_band_summaries(
            study.projects, bands=((0, 12), (12, None))
        )
        assert len(rows) == 2
        assert rows[1].high_months is None


class TestMdTable:
    def test_structure(self):
        text = md_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | 2 |"


class TestBuildStudyReport:
    def test_contains_all_sections(self, study):
        report = build_study_report(study)
        for heading in (
            "## Headline numbers",
            "## Synchronicity histogram (Fig. 4)",
            "## Life % of schema advance (Fig. 6)",
            "## Always in advance (Fig. 7)",
            "## Attainment (Fig. 8)",
            "## Per-taxon medians",
            "## Duration bands (Fig. 5 reading)",
            "## Statistics (Sec. 7)",
        ):
            assert heading in report

    def test_custom_title(self, study):
        report = build_study_report(study, title="My Study")
        assert report.startswith("# My Study")

    def test_mentions_project_count(self, study):
        assert "195 projects analysed" in build_study_report(study)

    def test_report_subcommand(self, study, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out)]) == 0
        assert out.exists()
        assert "## Statistics" in out.read_text()
