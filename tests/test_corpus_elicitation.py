"""Unit tests for the dataset elicitation rules."""

import pytest

from repro.corpus import (
    RepoMetadata,
    choose_ddl_path,
    generate_corpus,
    path_is_excluded,
    screen,
)
from repro.vcs import (
    Commit,
    FileChange,
    FileVersion,
    Repository,
    synthetic_sha,
    utc,
)


def repo_with(paths, *, versions=None, name="org/x"):
    repo = Repository(name=name)
    changes = [FileChange("A", p) for p in paths]
    repo.add_commit(
        Commit(synthetic_sha(name), "D", "d@x", utc(2020, 1), "c", changes)
    )
    for path, contents in (versions or {}).items():
        for i, content in enumerate(contents):
            repo.record_version(
                path,
                FileVersion(
                    synthetic_sha(name, path, i), utc(2020, 1 + i), content
                ),
            )
    return repo


class TestPathExclusion:
    @pytest.mark.parametrize(
        "path",
        [
            "test/schema.sql",
            "examples/db.sql",
            "demo_schema.sql",
            "db/migrate/001.sql",
            "src/TESTS/x.sql",
        ],
    )
    def test_excluded(self, path):
        assert path_is_excluded(path)

    @pytest.mark.parametrize(
        "path",
        [
            "schema.sql",
            "db/schema.sql",
            "sql/create_tables.sql",
            "latest/attestation.sql",   # 'test' inside a word only
        ],
    )
    def test_not_excluded(self, path):
        assert not path_is_excluded(path)


class TestChooseDdlPath:
    def test_single_candidate(self):
        assert choose_ddl_path(["db/schema.sql"]) == "db/schema.sql"

    def test_excluded_dropped_first(self):
        assert choose_ddl_path(
            ["test/fixture.sql", "schema.sql"]
        ) == "schema.sql"

    def test_vendor_preference_mysql_first(self):
        assert choose_ddl_path(
            ["db/mysql.sql", "db/postgres.sql"]
        ) == "db/mysql.sql"

    def test_postgres_when_no_mysql(self):
        assert choose_ddl_path(
            ["db/postgres.sql", "db/oracle.sql"]
        ) == "db/postgres.sql"

    def test_ambiguous_returns_none(self):
        assert choose_ddl_path(["a.sql", "b.sql"]) is None

    def test_all_excluded_returns_none(self):
        assert choose_ddl_path(["test/a.sql", "demo/b.sql"]) is None


class TestScreen:
    GOOD_DDL = ["CREATE TABLE t (a INT);", "CREATE TABLE t (a INT, b INT);"]

    def test_good_candidate_accepted(self):
        repo = repo_with(
            ["schema.sql", "src/app.py"],
            versions={"schema.sql": self.GOOD_DDL},
        )
        report = screen(repo)
        assert report.accepted
        assert not report.reasons

    def test_fork_rejected(self):
        repo = repo_with(
            ["schema.sql"], versions={"schema.sql": self.GOOD_DDL}
        )
        report = screen(repo, RepoMetadata(is_fork=True))
        assert not report.accepted
        assert "not an original repository" in report.reasons

    def test_zero_stars_rejected(self):
        repo = repo_with(
            ["schema.sql"], versions={"schema.sql": self.GOOD_DDL}
        )
        assert not screen(repo, RepoMetadata(stars=0)).accepted

    def test_single_contributor_rejected(self):
        repo = repo_with(
            ["schema.sql"], versions={"schema.sql": self.GOOD_DDL}
        )
        assert not screen(repo, RepoMetadata(contributors=1)).accepted

    def test_no_sql_rejected(self):
        assert not screen(repo_with(["src/app.py"])).accepted

    def test_multi_ddl_rejected(self):
        repo = repo_with(["a.sql", "b.sql"])
        report = screen(repo)
        assert not report.accepted

    def test_single_version_rejected(self):
        repo = repo_with(
            ["schema.sql"],
            versions={"schema.sql": self.GOOD_DDL[:1]},
        )
        report = screen(repo)
        assert not report.accepted
        assert any("two versions" in r for r in report.reasons)

    def test_no_create_table_rejected(self):
        repo = repo_with(
            ["schema.sql"],
            versions={"schema.sql": ["-- empty", "-- still empty"]},
        )
        report = screen(repo)
        assert not report.accepted
        assert any("CREATE TABLE" in r for r in report.reasons)

    def test_canonical_corpus_all_pass(self):
        for project in generate_corpus(seed=99)[::17]:
            report = screen(project.repository)
            assert report.accepted, (project.name, report.reasons)
